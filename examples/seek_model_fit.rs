//! Calibrating the seek model: fit the paper's piecewise
//! `α + β·√n / γ + δ·n` curve from (noisy) seek-time measurements, the
//! way §6.1 derives its constants "by performing regressions on actual
//! seek times".
//!
//! ```text
//! cargo run --release --example seek_model_fit
//! ```

use forhdc::sim::SeekModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Pretend these came off a real drive: the Ultrastar 36Z15 curve
    // plus ±3% measurement noise.
    let truth = SeekModel::ultrastar_36z15();
    let mut rng = StdRng::seed_from_u64(2002);
    let samples: Vec<(u32, f64)> = (1..=60)
        .map(|i| {
            let n = i * 160; // 160 .. 9600 cylinders
            let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.06;
            (n, truth.seek_ms(n) * noise)
        })
        .collect();

    let fitted = SeekModel::fit(&samples);
    println!("fitted constants (truth in parentheses):");
    println!(
        "  alpha = {:.4} ms   ({:.4})",
        fitted.alpha_ms(),
        truth.alpha_ms()
    );
    println!(
        "  beta  = {:.4} ms   ({:.4})",
        fitted.beta_ms(),
        truth.beta_ms()
    );
    println!(
        "  gamma = {:.4} ms   ({:.4})",
        fitted.gamma_ms(),
        truth.gamma_ms()
    );
    println!(
        "  delta = {:.5} ms   ({:.5})",
        fitted.delta_ms(),
        truth.delta_ms()
    );
    println!("  theta = {} cyl  ({})", fitted.theta(), truth.theta());

    println!(
        "\n{:>10} {:>12} {:>12} {:>8}",
        "distance", "true (ms)", "fitted (ms)", "err"
    );
    let mut worst: f64 = 0.0;
    for n in [1u32, 50, 200, 800, 1150, 2000, 5000, 9000] {
        let t = truth.seek_ms(n);
        let f = fitted.seek_ms(n);
        let err = (f - t).abs() / t;
        worst = worst.max(err);
        println!("{n:>10} {t:>12.3} {f:>12.3} {:>7.2}%", err * 100.0);
    }
    println!(
        "\nworst relative error: {:.2}% — good enough to reproduce Table 1's 3.4 ms average seek",
        worst * 100.0
    );
    println!(
        "average seek over 10k cylinders: fitted {:.2} ms, true {:.2} ms",
        fitted.average_seek_ms(10_000),
        truth.average_seek_ms(10_000)
    );
}
