//! Quickstart: compare a conventional disk-controller cache against
//! FOR and FOR+HDC on a small-file server workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use forhdc::core::{System, SystemConfig};
use forhdc::workload::SyntheticWorkload;

fn main() {
    // A data-intensive-server-like synthetic workload: 10 000 whole-file
    // reads of 16-KByte files, Zipf-popularity, 128 concurrent streams
    // (the paper's §6.2 setup).
    let workload = SyntheticWorkload::builder()
        .requests(10_000)
        .files(20_000)
        .file_blocks(4) // 16 KB
        .streams(128)
        .zipf_alpha(0.4)
        .seed(1)
        .build();
    println!(
        "workload: {} requests, {:.1} MB footprint, {} streams\n",
        workload.trace.len(),
        workload.layout.total_blocks() as f64 * 4096.0 / 1e6,
        workload.streams
    );

    // The conventional controller: segment cache + blind 128-KB
    // read-ahead.
    let segm = System::new(SystemConfig::segm(), &workload).run();
    println!("{segm}\n");

    // File-Oriented Read-ahead: bitmap-bounded read-ahead, block cache.
    let for_ = System::new(SystemConfig::for_(), &workload).run();
    println!("{for_}\n");

    // FOR plus 2 MB of Host-guided Device Caching per disk.
    let combined = System::new(SystemConfig::for_().with_hdc(2 * 1024 * 1024), &workload).run();
    println!("{combined}\n");

    println!(
        "FOR cuts I/O time by {:.1}% vs the conventional controller;",
        100.0 * (1.0 - for_.normalized_io_time(&segm))
    );
    println!(
        "FOR+HDC cuts it by {:.1}% (throughput +{:.1}%).",
        100.0 * (1.0 - combined.normalized_io_time(&segm)),
        100.0 * combined.improvement_over(&segm)
    );
}
