//! HDC as an array-wide victim cache — §5's other example use, end to
//! end: an application stream drives a host buffer cache whose clean
//! evictions are pinned into the controller caches, and whose misses on
//! pinned blocks become controller hits instead of media operations.
//!
//! ```text
//! cargo run --release --example victim_cache
//! ```

use forhdc::core::{build_victim_workload, HdcPlan, System, SystemConfig, VictimConfig};
use forhdc::host::pipeline::FileAccess;
use forhdc::layout::{FileId, LayoutBuilder};
use forhdc::sim::{ReadWrite, SimDuration, SimTime, StripingMap};
use forhdc::workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An application whose working set overflows the host cache: the
    // regime where a victim level earns its keep.
    let files = 30_000usize;
    let layout = LayoutBuilder::new().seed(21).build(&vec![4u32; files]);
    let zipf = ZipfSampler::new(files, 0.75);
    let mut rng = StdRng::seed_from_u64(22);
    let accesses: Vec<FileAccess> = (0..60_000u64)
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 100),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect();

    const HDC: u64 = 2 * 1024 * 1024;
    let vw = build_victim_workload(
        &accesses,
        &layout,
        VictimConfig {
            buffer_blocks: 8_192, // a 32-MB host cache vs a 470-MB working set
            hdc_blocks_per_disk: (HDC / 4096) as u32,
            striping: StripingMap::new(8, 32),
            streams: 64,
        },
    );
    println!(
        "derivation: buffer hit {:.1}%, {} disk requests, {} pins / {} unpins issued\n",
        100.0 * vw.stats.buffer_hit_rate,
        vw.workload.trace.len(),
        vw.stats.pins,
        vw.stats.unpins,
    );

    let none = System::new(SystemConfig::segm(), &vw.workload).run();
    println!(
        "no HDC            : {}   ({:.2} MB/s)",
        none.io_time,
        none.throughput_mbps()
    );

    let top = System::new(SystemConfig::segm().with_hdc(HDC), &vw.workload).run();
    println!(
        "top-miss pinning  : {}   (hit {:4.1}%)  — needs an offline miss profile",
        top.io_time,
        100.0 * top.hdc_hit_rate()
    );

    let vic = System::with_plan(
        SystemConfig::segm().with_hdc(HDC),
        &vw.workload,
        HdcPlan::empty(8),
    )
    .with_hdc_commands(vw.commands)
    .run();
    println!(
        "victim cache      : {}   (hit {:4.1}%)  — fully online, no profiling",
        vic.io_time,
        100.0 * vic.hdc_hit_rate()
    );

    println!(
        "\nthe victim cache recovers {:.0}% of the oracle's improvement without any\n\
         offline knowledge — and every pin crosses the shared bus, which is the\n\
         cost the paper's static pinning avoids.",
        100.0 * (none.io_time.as_nanos() - vic.io_time.as_nanos()) as f64
            / (none.io_time.as_nanos() - top.io_time.as_nanos()) as f64
    );
}
