//! Storage tuning for a Web server: sweep the striping unit and the
//! HDC allocation for the Rutgers-calibrated Web-server clone, and
//! report the best configuration — the §6.3 methodology as a tool.
//!
//! ```text
//! cargo run --release --example web_server_tuning [scale]
//! ```

use forhdc::core::{Report, System, SystemConfig};
use forhdc::workload::ServerWorkloadSpec;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let server = ServerWorkloadSpec::web().scale(scale).generate();
    let wl = &server.workload;
    println!(
        "web-server clone: {} disk requests, {:.2} GB footprint, {} streams (scale {scale})\n",
        wl.trace.len(),
        wl.layout.total_blocks() as f64 * 4096.0 / 1e9,
        wl.streams
    );

    println!("striping-unit sweep (Segm vs FOR, seconds of I/O time):");
    let mut best: Option<(u32, Report)> = None;
    for unit_kb in [4u32, 16, 32, 64, 128, 256] {
        let segm = System::new(SystemConfig::segm().with_striping_unit(unit_kb * 1024), wl).run();
        let for_ = System::new(SystemConfig::for_().with_striping_unit(unit_kb * 1024), wl).run();
        println!(
            "  {unit_kb:3} KB: Segm {:7.2}s   FOR {:7.2}s   (FOR −{:.1}%)",
            segm.io_time.as_secs_f64(),
            for_.io_time.as_secs_f64(),
            100.0 * (1.0 - for_.normalized_io_time(&segm))
        );
        if best.as_ref().is_none_or(|(_, b)| for_.io_time < b.io_time) {
            best = Some((unit_kb, for_));
        }
    }
    let Some((unit_kb, best_for)) = best else {
        eprintln!("error: the striping-unit sweep produced no results");
        std::process::exit(1);
    };
    println!("\nbest unit for FOR: {unit_kb} KB\n");

    println!("HDC sweep at the best unit (FOR+HDC):");
    let mut best_hdc: Option<(u32, Report)> = None;
    for hdc_kb in [0u32, 512, 1024, 2048, 2560, 3072] {
        let r = System::new(
            SystemConfig::for_()
                .with_striping_unit(unit_kb * 1024)
                .with_hdc(hdc_kb as u64 * 1024),
            wl,
        )
        .run();
        println!(
            "  {hdc_kb:4} KB/disk: {:7.2}s  hit {:4.1}%",
            r.io_time.as_secs_f64(),
            100.0 * r.hdc_hit_rate()
        );
        if best_hdc.as_ref().is_none_or(|(_, b)| r.io_time < b.io_time) {
            best_hdc = Some((hdc_kb, r));
        }
    }
    let Some((hdc_kb, tuned)) = best_hdc else {
        eprintln!("error: the HDC sweep produced no results");
        std::process::exit(1);
    };
    println!(
        "\nrecommended configuration: FOR, {unit_kb}-KB striping unit, {hdc_kb} KB HDC per disk"
    );
    println!(
        "throughput {:.2} MB/s ({:+.1}% over untuned FOR)",
        tuned.throughput_mbps(),
        100.0 * tuned.improvement_over(&best_for)
    );
}
