//! All four read-ahead disciplines head to head across file sizes —
//! Figure 3 of the paper as a runnable demo, with the cache-behaviour
//! columns that explain *why* each one wins or loses.
//!
//! ```text
//! cargo run --release --example policy_faceoff
//! ```

use forhdc::core::{System, SystemConfig};
use forhdc::workload::SyntheticWorkload;

fn main() {
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}   {:>10} {:>10}",
        "file", "Segm", "Block", "No-RA", "FOR", "Segm RA", "FOR RA"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}   {:>10} {:>10}",
        "", "(norm)", "(norm)", "(norm)", "(norm)", "waste/op", "waste/op"
    );
    for file_blocks in [1u32, 4, 8, 16, 32] {
        let wl = SyntheticWorkload::builder()
            .requests(10_000)
            .files(20_000)
            .file_blocks(file_blocks)
            .streams(128)
            .seed(42)
            .build();
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let block = System::new(SystemConfig::block(), &wl).run();
        let no_ra = System::new(SystemConfig::no_ra(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        // Wasted read-ahead blocks per media op: what blind read-ahead
        // pays for small files.
        let waste = |r: &forhdc::core::Report| {
            if r.disk.media_ops == 0 {
                0.0
            } else {
                (r.disk.read_ahead_blocks as f64 * (1.0 - r.cache.ra_accuracy()))
                    / r.disk.media_ops as f64
            }
        };
        println!(
            "{:>6}KB {:>8.3} {:>8.3} {:>8.3} {:>8.3}   {:>10.1} {:>10.1}",
            file_blocks * 4,
            1.0,
            block.normalized_io_time(&segm),
            no_ra.normalized_io_time(&segm),
            for_.normalized_io_time(&segm),
            waste(&segm),
            waste(&for_),
        );
    }
    println!();
    println!("Blind read-ahead drags ~28 useless blocks per operation at 16-KB files;");
    println!("FOR reads only what the file layout justifies, so it wins exactly where");
    println!("data-intensive servers live — and never loses where they don't.");
}
