//! The HDC deployment loop end to end: derive a disk log through the
//! host cache hierarchy, profile buffer-cache misses, plan the pinned
//! set per disk, and measure the benefit — including the §5 periodic
//! (history-based) planning against §6.1's perfect knowledge.
//!
//! ```text
//! cargo run --release --example hdc_planner
//! ```

use forhdc::core::{plan_periodic, System, SystemConfig};
use forhdc::host::pipeline::{derive_disk_trace, FileAccess, PipelineConfig};
use forhdc::layout::{FileId, LayoutBuilder};
use forhdc::sim::{ReadWrite, SimDuration, SimTime, StripingMap};
use forhdc::workload::{Workload, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A file population and an application-level access stream.
    let files = 30_000usize;
    let layout = LayoutBuilder::new().seed(7).build(&vec![4u32; files]);
    let zipf = ZipfSampler::new(files, 0.7);
    let mut rng = StdRng::seed_from_u64(11);
    let accesses: Vec<FileAccess> = (0..120_000u64)
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 120),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect();

    // 2. Through the host hierarchy: prefetch + buffer cache + 2-ms
    //    coalescing. What survives is the disk-level log.
    let cfg = PipelineConfig {
        buffer_blocks: 8_192,
        ..PipelineConfig::default()
    };
    let derived = derive_disk_trace(&accesses, &layout, cfg);
    println!(
        "host pipeline: buffer-cache hit rate {:.1}%, {} disk requests (coalescing {:.0}%)",
        100.0 * derived.buffer_hit_rate,
        derived.trace.len(),
        100.0 * derived.coalescing_probability,
    );

    let workload = Workload {
        name: "pipeline-derived".into(),
        layout,
        trace: derived.trace,
        streams: 64,
    };

    // 3. Replay without and with HDC (perfect-knowledge plan).
    let base = System::new(SystemConfig::segm(), &workload).run();
    let hdc = System::new(SystemConfig::segm().with_hdc(2 * 1024 * 1024), &workload).run();
    println!("\nno HDC : {}", base.io_time);
    println!(
        "perfect: {}  (hit {:.1}%, −{:.1}%)",
        hdc.io_time,
        100.0 * hdc.hdc_hit_rate(),
        100.0 * (1.0 - hdc.normalized_io_time(&base))
    );

    // 4. The deployable version: plan each period from the previous
    //    period's miss history.
    let striping = StripingMap::new(8, 32);
    let capacity = SystemConfig::segm().with_hdc(2 * 1024 * 1024).hdc_blocks();
    for periods in [2usize, 4, 8] {
        let plans = plan_periodic(&workload.trace, &striping, capacity, periods);
        let Some(plan) = plans.last().cloned() else {
            eprintln!("error: periodic planning produced no periods");
            std::process::exit(1);
        };
        let r = System::with_plan(
            SystemConfig::segm().with_hdc(2 * 1024 * 1024),
            &workload,
            plan,
        )
        .run();
        println!(
            "history-based, {periods} periods: {}  (hit {:.1}%)",
            r.io_time,
            100.0 * r.hdc_hit_rate()
        );
    }
    println!("\nwith stable popularity, history-based planning approaches perfect knowledge.");
}
