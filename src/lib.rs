//! # forhdc — disk-controller cache management for data-intensive servers
//!
//! A full reproduction of *Improving Disk Throughput in Data-Intensive
//! Servers* (Carrera & Bianchini, HPCA 2004): the **FOR** (File-Oriented
//! Read-ahead) and **HDC** (Host-guided Device Caching) controller-cache
//! techniques, together with the complete substrate they are evaluated
//! on — a detailed discrete-event simulator of an Ultra160 SCSI disk
//! array, controller cache organizations, a file-system layout model,
//! host-side prefetching/caching, and calibrated server workloads.
//!
//! This facade crate re-exports the individual crates:
//!
//! * [`sim`] — disk mechanics, scheduling, bus, striping.
//! * [`cache`] — segment/block controller caches and the HDC region.
//! * [`layout`] — file layout, fragmentation, the FOR bitmap.
//! * [`workload`] — Zipf synthetics and server workload clones.
//! * [`host`] — buffer cache, OS prefetch, coalescing, stream driver.
//! * [`core`] — the paper's techniques and the full-system simulation.
//! * [`analytic`] — the paper's closed-form models.
//!
//! # Quickstart
//!
//! ```
//! use forhdc::core::{SystemConfig, ReadAheadKind, System};
//! use forhdc::workload::SyntheticWorkload;
//!
//! // A small synthetic workload: 200 whole-file reads of 16-KByte files.
//! let wl = SyntheticWorkload::builder()
//!     .requests(200)
//!     .file_blocks(4)
//!     .files(2_000)
//!     .seed(42)
//!     .build();
//!
//! // Conventional controller (segment cache + blind read-ahead) ...
//! let base = System::new(SystemConfig::segm(), &wl).run();
//! // ... versus FOR.
//! let for_ = System::new(SystemConfig::for_(), &wl).run();
//! assert!(for_.io_time <= base.io_time);
//! ```

pub use forhdc_analytic as analytic;
pub use forhdc_cache as cache;
pub use forhdc_core as core;
pub use forhdc_host as host;
pub use forhdc_layout as layout;
pub use forhdc_sim as sim;
pub use forhdc_workload as workload;
