//! `forhdc` — run the disk-array simulator on generated or imported
//! workloads.
//!
//! ```text
//! forhdc generate <web|proxy|file|synthetic> [--scale X] [--requests N] [--out DIR]
//!     Generate a workload clone and write trace.txt + layout.txt.
//!
//! forhdc simulate --trace FILE --layout FILE [options]
//!     Replay a trace through the array and print the report.
//!       --policy segm|block|no-ra|for|track   (default segm)
//!       --hdc KB          per-disk host-guided cache (default 0)
//!       --unit KB         striping unit (default 128)
//!       --streams N       concurrent streams (default 128)
//!       --sched look|fcfs|sstf|clook          (default look)
//!       --flush-secs S    periodic flush_hdc() interval
//!
//! forhdc inspect --trace FILE
//!     Print trace statistics (footprint, write %, popularity head).
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::ExitCode;

use forhdc::core::{System, SystemConfig};
use forhdc::sim::{SchedulerKind, SimDuration};
use forhdc::workload::io::{read_layout, read_trace, write_layout, write_trace};
use forhdc::workload::stats::summarize;
use forhdc::workload::{ServerWorkloadSpec, SyntheticWorkload, Workload};

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("run `forhdc help` for usage");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    match args.positional.first().map(String::as_str) {
        Some("generate") => generate(&args),
        Some("simulate") => simulate(&args),
        Some("inspect") => inspect(&args),
        Some("help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

const USAGE: &str = "\
forhdc — FOR/HDC disk-array simulator

  forhdc generate <web|proxy|file|synthetic> [--scale X] [--requests N] [--out DIR]
  forhdc simulate --trace FILE --layout FILE [--policy P] [--hdc KB] [--unit KB]
                  [--streams N] [--sched S] [--flush-secs T]
  forhdc inspect  --trace FILE
";

fn generate(args: &Args) -> Result<(), String> {
    let kind = args
        .positional
        .get(1)
        .ok_or("generate needs a workload kind (web|proxy|file|synthetic)")?;
    let scale: f64 = args.flag("scale", 1.0)?;
    let out = PathBuf::from(args.flag("out", String::from("."))?);
    let workload: Workload = match kind.as_str() {
        "web" => ServerWorkloadSpec::web().scale(scale).generate().workload,
        "proxy" => ServerWorkloadSpec::proxy().scale(scale).generate().workload,
        "file" => {
            ServerWorkloadSpec::file_server()
                .scale(scale)
                .generate()
                .workload
        }
        "synthetic" => {
            let requests: usize = args.flag("requests", 10_000)?;
            SyntheticWorkload::builder().requests(requests).build()
        }
        other => return Err(format!("unknown workload kind '{other}'")),
    };
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let trace_path = out.join("trace.txt");
    let layout_path = out.join("layout.txt");
    write_trace(
        &workload.trace,
        BufWriter::new(File::create(&trace_path).map_err(|e| e.to_string())?),
    )
    .map_err(|e| e.to_string())?;
    write_layout(
        &workload.layout,
        BufWriter::new(File::create(&layout_path).map_err(|e| e.to_string())?),
    )
    .map_err(|e| e.to_string())?;
    println!("{}", summarize(&workload.trace, 4096));
    println!(
        "wrote {} and {}",
        trace_path.display(),
        layout_path.display()
    );
    println!("suggested streams: {}", workload.streams);
    Ok(())
}

fn simulate(args: &Args) -> Result<(), String> {
    let trace = read_trace(BufReader::new(
        File::open(args.required("trace")?).map_err(|e| e.to_string())?,
    ))
    .map_err(|e| e.to_string())?;
    let layout = read_layout(BufReader::new(
        File::open(args.required("layout")?).map_err(|e| e.to_string())?,
    ))
    .map_err(|e| e.to_string())?;
    let streams: u32 = args.flag("streams", 128)?;
    let mut cfg = match args.flag("policy", String::from("segm"))?.as_str() {
        "segm" => SystemConfig::segm(),
        "block" => SystemConfig::block(),
        "no-ra" => SystemConfig::no_ra(),
        "for" => SystemConfig::for_(),
        "track" => SystemConfig::partial_track(),
        other => return Err(format!("unknown policy '{other}'")),
    };
    cfg = cfg
        .with_hdc(args.flag("hdc", 0u64)? * 1024)
        .with_striping_unit(args.flag("unit", 128u32)? * 1024);
    cfg = match args.flag("sched", String::from("look"))?.as_str() {
        "look" => cfg.with_scheduler(SchedulerKind::Look),
        "fcfs" => cfg.with_scheduler(SchedulerKind::Fcfs),
        "sstf" => cfg.with_scheduler(SchedulerKind::Sstf),
        "clook" => cfg.with_scheduler(SchedulerKind::Clook),
        other => return Err(format!("unknown scheduler '{other}'")),
    };
    if let Some(secs) = args.flags.get("flush-secs") {
        let secs: u64 = secs.parse().map_err(|e| format!("--flush-secs: {e}"))?;
        cfg = cfg.with_hdc_flush_period(SimDuration::from_secs(secs));
    }
    let workload = Workload {
        name: "imported".into(),
        layout,
        trace,
        streams,
    };
    let report = System::new(cfg, &workload).run();
    println!("{report}");
    Ok(())
}

fn inspect(args: &Args) -> Result<(), String> {
    let trace = read_trace(BufReader::new(
        File::open(args.required("trace")?).map_err(|e| e.to_string())?,
    ))
    .map_err(|e| e.to_string())?;
    println!("{}", summarize(&trace, 4096));
    println!("jobs: {}", trace.job_count());
    let head = trace.popularity_curve(10);
    println!("hottest blocks (accesses): {head:?}");
    Ok(())
}
