//! Integration coverage of the extensions beyond the paper's headline
//! systems: victim-cache HDC, RAID-1 mirroring, periodic flushing, the
//! partial-track baseline, zoned recording, and trace serialization —
//! all through the public facade.

use forhdc::core::{build_victim_workload, HdcPlan, System, SystemConfig, VictimConfig};
use forhdc::host::pipeline::FileAccess;
use forhdc::layout::{FileId, LayoutBuilder};
use forhdc::sim::{ReadWrite, SimDuration, SimTime, StripingMap};
use forhdc::workload::io::{read_trace, write_trace};
use forhdc::workload::{SyntheticWorkload, Workload, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn app_stream(n: u64, files: usize) -> (Vec<FileAccess>, forhdc::layout::FileMap) {
    let layout = LayoutBuilder::new().seed(31).build(&vec![4u32; files]);
    let zipf = ZipfSampler::new(files, 0.8);
    let mut rng = StdRng::seed_from_u64(32);
    let accesses = (0..n)
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 100),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect();
    (accesses, layout)
}

#[test]
fn victim_cache_beats_no_hdc_on_overflowing_working_sets() {
    let (accesses, layout) = app_stream(8_000, 4_000);
    const HDC: u64 = 2 * 1024 * 1024;
    let vw = build_victim_workload(
        &accesses,
        &layout,
        VictimConfig {
            buffer_blocks: 1_024,
            hdc_blocks_per_disk: (HDC / 4096) as u32,
            striping: StripingMap::new(8, 32),
            streams: 32,
        },
    );
    assert!(vw.stats.pins > 0, "no pins derived");
    let none = System::new(SystemConfig::segm(), &vw.workload).run();
    let vic = System::with_plan(
        SystemConfig::segm().with_hdc(HDC),
        &vw.workload,
        HdcPlan::empty(8),
    )
    .with_hdc_commands(vw.commands)
    .run();
    assert_eq!(vic.requests, vw.workload.trace.len() as u64);
    assert!(
        vic.hdc_hit_rate() > 0.02,
        "victim hit rate {}",
        vic.hdc_hit_rate()
    );
    assert!(
        vic.io_time.as_nanos() as f64 <= none.io_time.as_nanos() as f64 * 1.02,
        "victim {} should not lose to no-HDC {}",
        vic.io_time,
        none.io_time
    );
}

#[test]
fn victim_pins_never_exceed_the_region() {
    let (accesses, layout) = app_stream(4_000, 4_000);
    let vw = build_victim_workload(
        &accesses,
        &layout,
        VictimConfig {
            buffer_blocks: 512,
            hdc_blocks_per_disk: 64,
            striping: StripingMap::new(8, 32),
            streams: 16,
        },
    );
    let r = System::with_plan(
        SystemConfig::segm().with_hdc(64 * 4096),
        &vw.workload,
        HdcPlan::empty(8),
    )
    .with_hdc_commands(vw.commands)
    .run();
    // Net pinned at end <= capacity per disk * disks; lifetime pins can
    // be much larger.
    assert!(r.hdc.pins >= r.hdc.unpins);
    assert!(r.hdc.pins - r.hdc.unpins <= 8 * 64);
}

#[test]
fn mirrored_read_mostly_workload_is_nearly_free() {
    let wl = SyntheticWorkload::builder()
        .requests(800)
        .files(6_000)
        .file_blocks(4)
        .streams(64)
        .seed(33)
        .build();
    let raid0 = System::new(SystemConfig::for_(), &wl).run();
    let raid10 = System::new(SystemConfig::for_().with_mirroring(), &wl).run();
    let penalty = raid10.io_time.as_nanos() as f64 / raid0.io_time.as_nanos() as f64;
    assert!(penalty < 1.25, "read-mostly RAID-10 penalty {penalty:.2}");
}

#[test]
fn partial_track_is_a_sane_baseline() {
    let wl = SyntheticWorkload::builder()
        .requests(800)
        .files(6_000)
        .file_blocks(4)
        .streams(64)
        .seed(34)
        .build();
    let blind = System::new(SystemConfig::block(), &wl).run();
    let track = System::new(SystemConfig::partial_track(), &wl).run();
    let for_ = System::new(SystemConfig::for_(), &wl).run();
    assert_eq!(track.requests, wl.trace.len() as u64);
    // Track-bounded blind RA is cheaper than unbounded blind RA on
    // small files, but FOR still wins (it knows the file boundary).
    assert!(track.io_time <= blind.io_time);
    assert!(for_.io_time <= track.io_time);
}

#[test]
fn zoned_recording_preserves_the_comparison() {
    let wl = SyntheticWorkload::builder()
        .requests(800)
        .files(6_000)
        .file_blocks(4)
        .streams(64)
        .seed(35)
        .build();
    let segm = System::new(SystemConfig::segm().with_zoned_recording(), &wl).run();
    let for_ = System::new(SystemConfig::for_().with_zoned_recording(), &wl).run();
    assert!(for_.io_time < segm.io_time, "FOR must win under zoning too");
}

#[test]
fn periodic_flush_composes_with_everything() {
    let wl = SyntheticWorkload::builder()
        .requests(600)
        .files(4_000)
        .file_blocks(4)
        .write_fraction(0.2)
        .zipf_alpha(0.8)
        .streams(32)
        .seed(36)
        .build();
    let r = System::new(
        SystemConfig::for_()
            .with_hdc(1 << 20)
            .with_mirroring()
            .with_zoned_recording()
            .with_hdc_flush_period(SimDuration::from_secs(1)),
        &wl,
    )
    .run();
    assert_eq!(r.requests, wl.trace.len() as u64);
}

#[test]
fn serialized_traces_replay_identically() {
    let wl = SyntheticWorkload::builder()
        .requests(400)
        .files(3_000)
        .file_blocks(4)
        .streams(32)
        .seed(37)
        .build();
    let mut buf = Vec::new();
    write_trace(&wl.trace, &mut buf).unwrap();
    let reread = read_trace(buf.as_slice()).unwrap();
    let wl2 = Workload {
        name: wl.name.clone(),
        layout: wl.layout.clone(),
        trace: reread,
        streams: wl.streams,
    };
    let a = System::new(SystemConfig::for_(), &wl).run();
    let b = System::new(SystemConfig::for_(), &wl2).run();
    assert_eq!(
        a.io_time, b.io_time,
        "round-tripped trace must replay identically"
    );
    assert_eq!(a.disk.media_ops, b.disk.media_ops);
}
