//! The paper's headline claims, as executable checks.
//!
//! These are *shape* assertions: our substrate is a reconstruction of
//! the authors' simulator, so we require the qualitative result (who
//! wins, roughly by how much, where the trends point), not their exact
//! numbers.

use forhdc_analytic::{conventional_hit_rate, for_hit_rate};
use forhdc_core::{System, SystemConfig};
use forhdc_workload::{SyntheticWorkload, Workload};

fn synth(file_blocks: u32, streams: u32, alpha: f64, writes: f64, seed: u64) -> Workload {
    SyntheticWorkload::builder()
        .requests(3_000)
        .files(20_000)
        .file_blocks(file_blocks)
        .streams(streams)
        .zipf_alpha(alpha)
        .write_fraction(writes)
        .seed(seed)
        .build()
}

/// §7: "Combining the two techniques achieves disk throughput that is
/// at least as high as that of conventional controllers."
#[test]
fn combined_never_loses_to_conventional() {
    for file_blocks in [1u32, 4, 16, 32] {
        let wl = synth(file_blocks, 128, 0.4, 0.0, 11);
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let combined = System::new(SystemConfig::for_().with_hdc(2 * 1024 * 1024), &wl).run();
        assert!(
            combined.io_time.as_nanos() as f64 <= segm.io_time.as_nanos() as f64 * 1.03,
            "{file_blocks}-block files: FOR+HDC {} vs Segm {}",
            combined.io_time,
            segm.io_time
        );
    }
}

/// §6.2 / Figure 3: FOR cuts I/O time by ~40% for 16-KByte files.
#[test]
fn for_gains_roughly_forty_percent_at_16kb() {
    let wl = synth(4, 128, 0.4, 0.0, 12);
    let segm = System::new(SystemConfig::segm(), &wl).run();
    let for_ = System::new(SystemConfig::for_(), &wl).run();
    let reduction = 1.0 - for_.normalized_io_time(&segm);
    assert!(
        (0.25..=0.55).contains(&reduction),
        "FOR reduction at 16 KB: {reduction:.3} (paper ~0.40)"
    );
}

/// Figure 3: No-RA beats blind read-ahead for small files but loses
/// for large ones; FOR never loses to either.
#[test]
fn no_ra_crossover_and_for_dominance() {
    let small = synth(2, 128, 0.4, 0.0, 13);
    let large = synth(32, 128, 0.4, 0.0, 13);
    for wl in [&small, &large] {
        let segm = System::new(SystemConfig::segm(), wl).run();
        let no_ra = System::new(SystemConfig::no_ra(), wl).run();
        let for_ = System::new(SystemConfig::for_(), wl).run();
        assert!(for_.io_time.as_nanos() <= no_ra.io_time.as_nanos() * 102 / 100);
        assert!(for_.io_time.as_nanos() <= segm.io_time.as_nanos() * 102 / 100);
    }
    let segm = System::new(SystemConfig::segm(), &small).run();
    let no_ra_small = System::new(SystemConfig::no_ra(), &small).run();
    assert!(
        no_ra_small.io_time < segm.io_time,
        "No-RA should win on 8-KB files"
    );
    let segm_l = System::new(SystemConfig::segm(), &large).run();
    let no_ra_large = System::new(SystemConfig::no_ra(), &large).run();
    assert!(
        no_ra_large.io_time > segm_l.io_time,
        "No-RA should lose on 128-KB files"
    );
}

/// Figure 5: HDC's gain grows as accesses concentrate (larger α).
#[test]
fn hdc_gain_grows_with_skew() {
    let gain = |alpha: f64| {
        let wl = synth(4, 128, alpha, 0.0, 14);
        let base = System::new(SystemConfig::segm(), &wl).run();
        let hdc = System::new(SystemConfig::segm().with_hdc(2 * 1024 * 1024), &wl).run();
        1.0 - hdc.normalized_io_time(&base)
    };
    let flat = gain(0.0);
    let steep = gain(1.0);
    assert!(
        steep > flat + 0.05,
        "HDC gain should grow with skew: alpha=0 {flat:.3}, alpha=1 {steep:.3}"
    );
}

/// Figure 6: FOR's advantage shrinks as the write fraction grows
/// (FOR targets reads), but stays positive.
#[test]
fn for_gain_decays_with_writes_but_remains() {
    let reduction = |writes: f64| {
        let wl = synth(4, 128, 0.4, writes, 15);
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        1.0 - for_.normalized_io_time(&segm)
    };
    let dry = reduction(0.0);
    let wet = reduction(0.6);
    assert!(
        wet < dry,
        "gain should shrink with writes: {dry:.3} -> {wet:.3}"
    );
    assert!(
        wet > 0.05,
        "significant improvements should remain: {wet:.3}"
    );
}

/// §4's hit-rate formulas against the simulator: with more streams than
/// segments but fewer than FOR's capacity, FOR's measured hit rate
/// clearly exceeds the conventional cache's.
#[test]
fn hit_rate_formulas_predict_simulation_ordering() {
    // 16-KB files (f = 4 blocks), 128 streams, 1024-block cache, 27
    // segments: h = (p−1)/p ~ low for Segm, h_FOR = (f−1)/f = 0.75.
    let h_conv = conventional_hit_rate(4.0, 1024.0, 27.0, 1.0, 128.0);
    let h_for = for_hit_rate(4.0, 1024.0, 1.0, 128.0);
    assert!(h_for > h_conv);
    // The simulator agrees directionally under a one-shot scan (no
    // reuse): every file read exactly once, so hits come only from
    // read-ahead within the file.
    let wl = SyntheticWorkload::builder()
        .requests(3_000)
        .files(20_000)
        .file_blocks(4)
        .streams(400) // more streams than the 216 array-wide segments
        .zipf_alpha(0.0)
        .coalesce_prob(0.0) // block-sized requests: p = 1 per formula
        .seed(16)
        .build();
    let segm = System::new(SystemConfig::segm(), &wl).run();
    let for_ = System::new(SystemConfig::for_(), &wl).run();
    // The formula's lockstep assumption is pessimistic for a
    // closed-loop replay (a stream's next request usually arrives
    // before its segment is evicted), so the measured *hit rates* end
    // up comparable — but FOR must never be behind, and its I/O time
    // must reflect the §4 utilization advantage decisively.
    assert!(
        for_.cache.block_hit_rate() >= segm.cache.block_hit_rate() - 0.02,
        "FOR block hit {:.3} far behind Segm {:.3}",
        for_.cache.block_hit_rate(),
        segm.cache.block_hit_rate()
    );
    assert!(
        for_.io_time.as_nanos() as f64 <= segm.io_time.as_nanos() as f64 * 0.8,
        "FOR {} should decisively beat Segm {} at t > s",
        for_.io_time,
        segm.io_time
    );
}

/// §5: the HDC region honours the host's pin budget exactly.
#[test]
fn hdc_respects_its_memory_budget() {
    let wl = synth(4, 128, 0.8, 0.0, 17);
    let cfg = SystemConfig::segm().with_hdc(1024 * 1024); // 256 blocks/disk
    assert_eq!(cfg.hdc_blocks(), 256);
    let r = System::new(cfg, &wl).run();
    assert!(
        r.hdc.pins <= 8 * 256,
        "pinned {} blocks over budget",
        r.hdc.pins
    );
    assert!(r.hdc_hit_rate() > 0.0);
}
