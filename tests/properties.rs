//! Property-based cross-crate invariants (proptest): arbitrary
//! workloads and configurations never wedge the simulator, lose
//! requests, or violate conservation laws.

use proptest::prelude::*;

use forhdc_core::{System, SystemConfig};
use forhdc_layout::{FileId, LayoutBuilder};
use forhdc_sim::{LogicalBlock, StripingMap};
use forhdc_workload::SyntheticWorkload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any synthetic workload completes under any policy, and the
    /// payload accounting holds.
    #[test]
    fn any_workload_completes(
        requests in 1usize..120,
        file_blocks in 1u32..24,
        files in 50usize..1_000,
        streams in 1u32..64,
        writes in 0.0f64..0.6,
        frag in 0.0f64..0.3,
        policy in 0usize..4,
        hdc_mb in 0u64..3,
        seed in 0u64..1_000,
    ) {
        let wl = SyntheticWorkload::builder()
            .requests(requests)
            .file_blocks(file_blocks)
            .files(files)
            .streams(streams)
            .write_fraction(writes)
            .fragmentation(frag)
            .seed(seed)
            .build();
        let cfg = match policy {
            0 => SystemConfig::segm(),
            1 => SystemConfig::block(),
            2 => SystemConfig::no_ra(),
            _ => SystemConfig::for_(),
        }
        .with_hdc(hdc_mb * 1024 * 1024);
        let r = System::new(cfg, &wl).run();
        prop_assert_eq!(r.requests, wl.trace.len() as u64);
        prop_assert!(r.cache.ra_used <= r.cache.ra_inserted);
        prop_assert!(r.disk.read_ahead_blocks <= r.disk.blocks_read);
        prop_assert!(r.hdc.read_hits + r.hdc.read_misses + r.hdc.write_hits + r.hdc.write_misses
            >= r.hdc.read_hits);
    }

    /// Striping round-trips for arbitrary geometry.
    #[test]
    fn striping_roundtrip(
        disks in 1u16..32,
        unit in 1u32..128,
        block in 0u64..10_000_000,
    ) {
        let map = StripingMap::new(disks, unit);
        let l = LogicalBlock::new(block);
        let (d, p) = map.locate(l);
        prop_assert_eq!(map.logical_of(d, p), l);
        prop_assert!(d.index() < disks);
    }

    /// Splitting conserves blocks and never emits empty extents.
    #[test]
    fn split_conserves(
        disks in 1u16..16,
        unit in 1u32..64,
        start in 0u64..1_000_000,
        nblocks in 1u32..500,
    ) {
        let map = StripingMap::new(disks, unit);
        let parts = map.split(LogicalBlock::new(start), nblocks);
        let total: u32 = parts.iter().map(|e| e.nblocks).sum();
        prop_assert_eq!(total, nblocks);
        prop_assert!(parts.iter().all(|e| e.nblocks > 0));
    }

    /// Layouts conserve every file's size under fragmentation,
    /// alignment, and spacing; the FOR bitmap never exceeds one bit of
    /// continuation per allocated block.
    #[test]
    fn layout_conservation(
        nfiles in 1usize..120,
        size in 1u32..40,
        frag in 0.0f64..1.0,
        align in 1u32..64,
        spacing in 0u64..16,
        seed in 0u64..500,
    ) {
        let sizes = vec![size; nfiles];
        let map = LayoutBuilder::new()
            .fragmentation(frag)
            .align_blocks(align)
            .spacing_blocks(spacing)
            .seed(seed)
            .build(&sizes);
        for f in 0..nfiles {
            prop_assert_eq!(map.file_blocks(FileId::new(f as u32)), size as u64);
        }
        // Every block of every file is reachable through block_at.
        for f in 0..nfiles.min(10) {
            for off in 0..size as u64 {
                let b = map.block_at(FileId::new(f as u32), off);
                prop_assert!(b.is_some());
                let owner = map.owner(b.unwrap()).unwrap();
                prop_assert_eq!(owner.file, FileId::new(f as u32));
                prop_assert_eq!(owner.offset, off);
            }
        }
    }

    /// The trace generator conserves blocks: splitting by coalescing
    /// probability never loses or duplicates file data.
    #[test]
    fn trace_conserves_blocks(
        requests in 1usize..60,
        file_blocks in 1u32..16,
        coalesce in 0.0f64..1.0,
        seed in 0u64..300,
    ) {
        let wl = SyntheticWorkload::builder()
            .requests(requests)
            .files(500)
            .file_blocks(file_blocks)
            .coalesce_prob(coalesce)
            .seed(seed)
            .build();
        prop_assert_eq!(wl.trace.total_blocks(), requests as u64 * file_blocks as u64);
        prop_assert_eq!(wl.trace.job_count(), requests);
    }
}
