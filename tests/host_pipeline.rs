//! The full host stack end to end: application file accesses →
//! prefetch → buffer cache → coalescing → disk trace → array
//! simulation — "we consider the entire cache hierarchy" (§6.3).

use forhdc_core::{System, SystemConfig};
use forhdc_host::pipeline::{derive_disk_trace, FileAccess, PipelineConfig};
use forhdc_layout::{FileId, LayoutBuilder};
use forhdc_sim::{ReadWrite, SimDuration, SimTime};
use forhdc_workload::{Workload, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn app_stream(n: u64, files: usize, alpha: f64, seed: u64) -> Vec<FileAccess> {
    let zipf = ZipfSampler::new(files, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 150),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect()
}

#[test]
fn derived_traces_replay_cleanly() {
    let layout = LayoutBuilder::new().seed(1).build(&vec![4u32; 5_000]);
    let accesses = app_stream(20_000, 5_000, 0.6, 2);
    let derived = derive_disk_trace(
        &accesses,
        &layout,
        PipelineConfig {
            buffer_blocks: 2_048,
            ..PipelineConfig::default()
        },
    );
    // A skewed stream against a small buffer cache: some locality is
    // absorbed, the rest reaches the disk.
    assert!(derived.buffer_hit_rate > 0.05 && derived.buffer_hit_rate < 0.95);
    assert!(!derived.trace.is_empty());
    let wl = Workload {
        name: "derived".into(),
        layout,
        trace: derived.trace,
        streams: 32,
    };
    let r = System::new(SystemConfig::for_(), &wl).run();
    assert_eq!(r.requests, wl.trace.len() as u64);
}

#[test]
fn bigger_buffer_cache_means_less_disk_traffic() {
    let layout = LayoutBuilder::new().seed(3).build(&vec![4u32; 5_000]);
    let accesses = app_stream(20_000, 5_000, 0.6, 4);
    let small = derive_disk_trace(
        &accesses,
        &layout,
        PipelineConfig {
            buffer_blocks: 512,
            ..PipelineConfig::default()
        },
    );
    let large = derive_disk_trace(
        &accesses,
        &layout,
        PipelineConfig {
            buffer_blocks: 8_192,
            ..PipelineConfig::default()
        },
    );
    assert!(large.trace.total_blocks() < small.trace.total_blocks());
    assert!(large.buffer_hit_rate > small.buffer_hit_rate);
}

#[test]
fn disk_level_trace_has_little_temporal_locality() {
    // §2.1's key observation: what reaches the controller has almost no
    // temporal locality — the buffer cache absorbed it. After the
    // pipeline, per-block re-access counts must be far below the
    // application-level counts.
    let layout = LayoutBuilder::new().seed(5).build(&vec![4u32; 2_000]);
    let accesses = app_stream(30_000, 2_000, 0.9, 6);
    let derived = derive_disk_trace(
        &accesses,
        &layout,
        PipelineConfig {
            buffer_blocks: 4_096,
            ..PipelineConfig::default()
        },
    );
    // Application-level: the hottest file is accessed thousands of
    // times. Disk-level: its blocks only on buffer-cache misses.
    let disk_hottest = *derived
        .trace
        .block_access_counts()
        .iter()
        .max()
        .unwrap_or(&0);
    let app_hottest = {
        let mut counts = vec![0u32; 2_000];
        for a in &accesses {
            counts[a.file.as_usize()] += 1;
        }
        *counts.iter().max().unwrap()
    };
    assert!(
        (disk_hottest as f64) < app_hottest as f64 * 0.5,
        "disk {disk_hottest} vs app {app_hottest}: buffer cache should absorb temporal locality"
    );
}

#[test]
fn coalescing_statistic_matches_the_papers_style() {
    // The paper measured 87% across its workloads; the pipeline on a
    // sequential whole-file stream should coalesce heavily too.
    let layout = LayoutBuilder::new().seed(7).build(&vec![8u32; 3_000]);
    let accesses = app_stream(5_000, 3_000, 0.2, 8);
    let derived = derive_disk_trace(&accesses, &layout, PipelineConfig::default());
    assert!(
        derived.coalescing_probability > 0.5,
        "coalescing {:.2} too low for sequential file reads",
        derived.coalescing_probability
    );
}
