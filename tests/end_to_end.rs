//! Cross-crate integration: every policy and configuration completes
//! every workload, deterministically, with coherent accounting.

use forhdc_cache::{BlockReplacement, SegmentReplacement};
use forhdc_core::{System, SystemConfig};
use forhdc_sim::{SchedulerKind, SimDuration};
use forhdc_workload::{ServerWorkloadSpec, SyntheticWorkload, Workload};

fn small_synthetic(seed: u64) -> Workload {
    SyntheticWorkload::builder()
        .requests(500)
        .files(4_000)
        .file_blocks(4)
        .streams(64)
        .write_fraction(0.1)
        .seed(seed)
        .build()
}

fn all_configs() -> Vec<(String, SystemConfig)> {
    let mut v = Vec::new();
    for (name, cfg) in [
        ("segm", SystemConfig::segm()),
        ("block", SystemConfig::block()),
        ("no_ra", SystemConfig::no_ra()),
        ("for", SystemConfig::for_()),
    ] {
        v.push((name.to_string(), cfg.clone()));
        v.push((format!("{name}+hdc"), cfg.with_hdc(2 * 1024 * 1024)));
    }
    v
}

#[test]
fn every_policy_completes_every_request() {
    let wl = small_synthetic(1);
    for (name, cfg) in all_configs() {
        let r = System::new(cfg, &wl).run();
        assert_eq!(r.requests, wl.trace.len() as u64, "{name} lost requests");
        assert!(r.io_time > SimDuration::ZERO, "{name} zero time");
        assert!(r.mean_response <= r.max_response, "{name} response stats");
    }
}

#[test]
fn accounting_is_coherent() {
    let wl = small_synthetic(2);
    for (name, cfg) in all_configs() {
        let r = System::new(cfg, &wl).run();
        // Every block read off the media is either demanded or read-ahead.
        assert!(r.disk.read_ahead_blocks <= r.disk.blocks_read, "{name}");
        // Cache stats: hits never exceed lookups.
        assert!(r.cache.block_hits <= r.cache.block_lookups, "{name}");
        assert!(r.cache.extent_hits <= r.cache.extent_lookups, "{name}");
        assert!(r.cache.ra_used <= r.cache.ra_inserted, "{name}");
        // Busy time per disk can't exceed the run length.
        for busy in &r.per_disk_busy {
            assert!(*busy <= r.io_time, "{name}: disk busier than the clock");
        }
        // The bus moved at least the payload (hits and media payloads
        // both cross it; read-ahead doesn't).
        assert!(r.bus_busy > SimDuration::ZERO, "{name}");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let wl = small_synthetic(3);
    for (name, cfg) in all_configs() {
        let a = System::new(cfg.clone(), &wl).run();
        let b = System::new(cfg, &wl).run();
        assert_eq!(a.io_time, b.io_time, "{name}");
        assert_eq!(a.disk.media_ops, b.disk.media_ops, "{name}");
        assert_eq!(a.cache.block_hits, b.cache.block_hits, "{name}");
        assert_eq!(a.hdc.read_hits, b.hdc.read_hits, "{name}");
    }
}

#[test]
fn schedulers_and_replacements_compose() {
    let wl = small_synthetic(4);
    for sched in [
        SchedulerKind::Look,
        SchedulerKind::Fcfs,
        SchedulerKind::Sstf,
        SchedulerKind::Clook,
    ] {
        for (blk, seg) in [
            (BlockReplacement::Mru, SegmentReplacement::Lru),
            (BlockReplacement::Lru, SegmentReplacement::Fifo),
            (BlockReplacement::Mru, SegmentReplacement::Random),
            (BlockReplacement::Lru, SegmentReplacement::RoundRobin),
        ] {
            let r = System::new(
                SystemConfig::segm()
                    .with_scheduler(sched)
                    .with_replacement(blk, seg),
                &wl,
            )
            .run();
            assert_eq!(r.requests, wl.trace.len() as u64, "{sched:?}/{seg:?}");
        }
    }
}

#[test]
fn striping_units_preserve_work() {
    let wl = small_synthetic(5);
    let payload = wl.trace.total_blocks();
    for unit_kb in [4u32, 16, 64, 128, 256, 1024] {
        let r = System::new(
            SystemConfig::no_ra().with_striping_unit(unit_kb * 1024),
            &wl,
        )
        .run();
        // Without read-ahead and without HDC, the media moves exactly
        // the missed payload; with a cold cache and little reuse it is
        // within the payload bound.
        assert!(
            r.disk.blocks_read + r.disk.blocks_written <= payload,
            "unit {unit_kb}: media moved more than demanded without RA"
        );
        assert_eq!(r.requests, wl.trace.len() as u64);
    }
}

#[test]
fn tiny_server_clones_run_end_to_end() {
    for spec in [
        ServerWorkloadSpec::web(),
        ServerWorkloadSpec::proxy(),
        ServerWorkloadSpec::file_server(),
    ] {
        let wl = spec.scale(0.005).generate().workload;
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let for_hdc = System::new(SystemConfig::for_().with_hdc(1 << 20), &wl).run();
        assert_eq!(segm.requests, wl.trace.len() as u64, "{}", wl.name);
        assert_eq!(for_hdc.requests, wl.trace.len() as u64, "{}", wl.name);
    }
}

#[test]
fn single_stream_equals_serial_execution() {
    // With one stream, the sum of response times equals the total I/O
    // time (nothing overlaps).
    let wl = SyntheticWorkload::builder()
        .requests(100)
        .files(1_000)
        .streams(1)
        .seed(6)
        .build();
    let r = System::new(SystemConfig::no_ra(), &wl).run();
    let serial = r.mean_response * r.requests;
    let err = (serial.as_nanos() as f64 - r.io_time.as_nanos() as f64).abs()
        / r.io_time.as_nanos() as f64;
    assert!(err < 0.01, "serial {} vs io_time {}", serial, r.io_time);
}

#[test]
fn more_streams_never_hurt_throughput_much() {
    // Closed-loop: adding streams adds parallelism; I/O time must not
    // grow (modulo small cache-interference effects).
    let build = |streams| {
        SyntheticWorkload::builder()
            .requests(800)
            .files(8_000)
            .streams(streams)
            .seed(7)
            .build()
    };
    let t1 = System::new(SystemConfig::no_ra(), &build(1)).run().io_time;
    let t16 = System::new(SystemConfig::no_ra(), &build(16)).run().io_time;
    let t64 = System::new(SystemConfig::no_ra(), &build(64)).run().io_time;
    assert!(t16 < t1, "16 streams {} vs 1 stream {}", t16, t1);
    assert!(t64.as_nanos() as f64 <= t16.as_nanos() as f64 * 1.10);
}
