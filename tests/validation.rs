//! Simulator validation — the stand-in for §6.1's hardware validation.
//!
//! The paper validates its simulator against a real Ultrastar 36Z15
//! with read-only and write-only micro-benchmarks of "small files
//! located randomly on a disk" (within 8% for reads, 3% for writes).
//! We have no drive, so we validate against the paper's *own analytic
//! model* `T(r) = seek + rot + r·S/xfer` instead: replaying the same
//! micro-benchmarks, the measured mean service time must match the
//! closed form.

use forhdc_core::{System, SystemConfig};
use forhdc_layout::LayoutBuilder;
use forhdc_sim::{ArrayConfig, LogicalBlock, ReadWrite};
use forhdc_workload::{Trace, TraceRequest, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FILES: u32 = 40_000;

/// Random whole-file accesses to small files *spread over the whole
/// array* (sparse layout), replayed by one stream so the mean service
/// time is directly observable.
fn micro_benchmark(kind: ReadWrite, nblocks: u32, requests: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let array = ArrayConfig::default();
    // Spacing that spreads the files over ~90% of the array.
    let capacity = array.capacity_blocks();
    let spacing = capacity * 9 / 10 / FILES as u64 - nblocks as u64;
    let layout = LayoutBuilder::new()
        .spacing_blocks(spacing)
        .build(&vec![nblocks; FILES as usize]);
    let reqs: Vec<TraceRequest> = (0..requests)
        .map(|_| {
            let f = rng.gen_range(0..FILES) as u64;
            TraceRequest {
                start: LogicalBlock::new(f * (nblocks as u64 + spacing)),
                nblocks,
                kind,
            }
        })
        .collect();
    Workload {
        name: format!("micro-{kind:?}"),
        layout,
        trace: Trace::new(reqs),
        streams: 1,
    }
}

/// The closed-form per-request time for this geometry: average random
/// seek + half a revolution + media transfer + controller overhead +
/// bus transfer.
fn model_ms(nblocks: u32) -> f64 {
    let a = ArrayConfig::default();
    let seek = a.disk.seek.average_seek_ms(a.disk.geometry.cylinders());
    let rot = 2.0;
    let media = nblocks as f64 * 4096.0 / a.disk.media_rate as f64 * 1e3;
    let ctl = a.disk.controller_overhead.as_millis_f64();
    let bus = a.bus_overhead.as_millis_f64() + nblocks as f64 * 4096.0 / a.bus_rate as f64 * 1e3;
    seek + rot + media + ctl + bus
}

fn measured_ms(kind: ReadWrite, nblocks: u32) -> f64 {
    let wl = micro_benchmark(kind, nblocks, 2_000);
    let report = System::new(SystemConfig::no_ra(), &wl).run();
    report.io_time.as_millis_f64() / report.requests as f64
}

#[test]
fn read_micro_benchmark_matches_analytic_model() {
    for nblocks in [1u32, 4, 8] {
        let measured = measured_ms(ReadWrite::Read, nblocks);
        let expected = model_ms(nblocks);
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.08,
            "reads of {nblocks} blocks: measured {measured:.3} ms vs model {expected:.3} ms ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn write_micro_benchmark_matches_analytic_model() {
    for nblocks in [1u32, 4] {
        let measured = measured_ms(ReadWrite::Write, nblocks);
        let expected = model_ms(nblocks);
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.03,
            "writes of {nblocks} blocks: measured {measured:.3} ms vs model {expected:.3} ms ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn blind_read_ahead_costs_the_transfer_difference() {
    // With read-ahead enabled, each miss reads a whole 32-block segment:
    // service grows by exactly the extra transfer time (128 KB − r·4 KB
    // at 54 MB/s), since seek and rotation are unchanged — the paper's
    // central utilization argument (§4).
    let wl = micro_benchmark(ReadWrite::Read, 4, 2_000);
    let no_ra = System::new(SystemConfig::no_ra(), &wl).run();
    let blind = System::new(SystemConfig::block(), &wl).run();
    let no_ra_ms = no_ra.io_time.as_millis_f64() / no_ra.requests as f64;
    let blind_ms = blind.io_time.as_millis_f64() / blind.requests as f64;
    let extra_transfer = (32.0 - 4.0) * 4096.0 / 54e6 * 1e3;
    let delta = blind_ms - no_ra_ms;
    assert!(
        (delta - extra_transfer).abs() / extra_transfer < 0.15,
        "extra per-op cost {delta:.3} ms vs extra transfer {extra_transfer:.3} ms"
    );
}

#[test]
fn utilization_reduction_matches_paper_29_percent() {
    // §4: "FOR reduces the disk utilization by 29% in comparison to a
    // conventional 128-KByte read-ahead" for 4-KByte average files.
    let wl = micro_benchmark(ReadWrite::Read, 1, 2_000);
    let blind = System::new(SystemConfig::block(), &wl).run();
    let for_ = System::new(SystemConfig::for_(), &wl).run();
    // Single-block files: FOR's bitmap stops read-ahead at the file
    // boundary immediately.
    let reduction =
        1.0 - for_.disk.busy_time.as_nanos() as f64 / blind.disk.busy_time.as_nanos() as f64;
    assert!(
        (reduction - 0.29).abs() < 0.05,
        "utilization reduction {reduction:.3}, paper says 0.29"
    );
}
