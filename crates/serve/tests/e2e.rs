//! End-to-end: a real `serve` process on an ephemeral loopback port,
//! driven by real `loadgen` runs. Covers the CI smoke contract: the
//! sweep table carries every percentile column, a fixed seed yields an
//! identical schedule digest, and the server drains to a clean exit
//! with a complete JSON report after `--shutdown`.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use forhdc_metrics::{http::http_get, Scrape};

fn serve_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_serve"))
}

fn loadgen_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Starts a server on port 0 and waits for the port file.
fn start_server(dir: &PathBuf, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port");
    let report = dir.join("report.json");
    let child = serve_bin()
        .args(["run", "--port", "0"])
        .args(["--port-file"])
        .arg(&port_file)
        .args(["--report"])
        .arg(&report)
        .args(extra)
        .args(["--dir"])
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, format!("127.0.0.1:{port}"))
}

fn digest_of(stdout: &str) -> &str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("schedule digest: "))
        .unwrap_or_else(|| panic!("no digest line in: {stdout}"))
}

#[test]
fn smoke_sweep_verify_and_drain() {
    let dir = tmpdir("smoke");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "64",
            "--file-blocks",
            "4",
            "--seed",
            "5",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (mut server, addr) = start_server(&dir, &["--policy", "for", "--hdc", "256"]);

    // Two identical runs: same seed, same digest; payloads verified.
    let run = |seed: &str, shutdown: bool| {
        let mut c = loadgen_bin();
        c.args([
            "--addr",
            &addr,
            "--levels",
            "1,2,4,8",
            "--requests",
            "160",
            "--seed",
            seed,
            "--verify",
        ]);
        if shutdown {
            c.arg("--shutdown");
        }
        let out = c.output().expect("spawn loadgen");
        assert!(
            out.status.success(),
            "loadgen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run("11", false);
    let second = run("11", false);
    let third = run("7", true);

    // The sweep table carries every percentile column and four rows.
    for col in ["rps", "p50ms", "p95ms", "p99ms", "p99.9ms"] {
        assert!(first.contains(col), "missing column {col} in: {first}");
    }
    let rows = first
        .lines()
        .filter(|l| l.trim_start().starts_with(['1', '2', '4', '8']))
        .count();
    assert!(rows >= 4, "want 4 sweep rows in: {first}");

    // Fixed seed => identical schedule; different seed => different.
    assert_eq!(digest_of(&first), digest_of(&second));
    assert_ne!(digest_of(&first), digest_of(&third));

    // --shutdown drained the server to a clean exit...
    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");

    // ...and the final report is complete.
    let report = std::fs::read_to_string(dir.join("report.json")).expect("report written");
    for key in [
        "\"serve\"",
        "\"policy\": \"FOR\"",
        "\"totals\"",
        "\"e2e_latency\"",
        "\"p50_ns\"",
        "\"p95_ns\"",
        "\"p99_ns\"",
        "\"p999_ns\"",
        "\"media\"",
        "\"per_disk\"",
    ] {
        assert!(report.contains(key), "missing {key} in report: {report}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The live telemetry contract, end to end: a loadgen sweep against a
/// real server with `--metrics-addr` bound, scraped over HTTP before
/// and after. The second scrape must conserve work (server-side READ
/// count == loadgen completions, bytes == requests x file bytes), every
/// counter must be monotone across the two scrapes, at least eight
/// `forhdc_` families must be present with per-disk labels, the
/// `--dump-flight` JSONL must parse with the forhdc-trace parser, and
/// the loadgen JSON must embed merged server-side quantiles.
#[test]
fn metrics_scrape_conserves_work_and_flight_dump_parses() {
    let dir = tmpdir("metrics");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "32",
            "--file-blocks",
            "2",
            "--seed",
            "9",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mport_file = dir.join("mport");
    let mport_arg = mport_file.to_str().unwrap().to_string();
    let (mut server, addr) = start_server(
        &dir,
        &[
            "--policy",
            "for",
            "--hdc",
            "128",
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-port-file",
            &mport_arg,
        ],
    );
    // The data port file is written before the metrics listener binds;
    // wait for the metrics port separately.
    let deadline = Instant::now() + Duration::from_secs(20);
    let maddr = loop {
        if let Ok(s) = std::fs::read_to_string(&mport_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break format!("127.0.0.1:{s}");
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its metrics port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let scrape = || {
        let text = http_get(&maddr, "/metrics", Duration::from_secs(10)).expect("scrape");
        (Scrape::parse(&text).expect("parse scrape"), text)
    };
    let (first, _) = scrape();

    // A sweep with known totals: 60 requests/level x 2 levels.
    let json_path = dir.join("sweep.json");
    let flight_path = dir.join("flight.jsonl");
    let out = loadgen_bin()
        .args(["--addr", &addr, "--levels", "1,2", "--requests", "60"])
        .args(["--seed", "3", "--verify", "--scrape", "--json"])
        .arg(&json_path)
        .arg("--dump-flight")
        .arg(&flight_path)
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("srv_p50ms"), "{stdout}");
    assert!(stdout.contains("srv_p99ms"), "{stdout}");

    let (second, second_text) = scrape();

    // Conservation: the server's READ counter equals the loadgen
    // completions and the byte counter equals requests x file bytes.
    let total_reads = 60u64 * 2;
    assert_eq!(
        second.counter("forhdc_requests_total", &[("op", "read")]),
        Some(total_reads),
        "server READ count != loadgen completions:\n{second_text}"
    );
    assert_eq!(
        second.counter("forhdc_bytes_served_total", &[]),
        Some(total_reads * 2 * 4096),
        "served bytes != requests x file bytes:\n{second_text}"
    );
    // Work landed on both disks and every block came off the page
    // store or the media — per-disk conservation.
    let disk_sum = |name: &str| -> u64 {
        (0..2)
            .map(|d| {
                second
                    .counter(name, &[("disk", &d.to_string())])
                    .unwrap_or_else(|| panic!("{name}{{disk={d}}} missing:\n{second_text}"))
            })
            .sum()
    };
    assert_eq!(
        disk_sum("forhdc_disk_store_hits_total") + disk_sum("forhdc_disk_store_misses_total"),
        total_reads * 2,
        "store hits + misses != blocks requested:\n{second_text}"
    );

    // Monotonicity: every counter-family sample of the first scrape is
    // <= its twin in the second.
    let mut compared = 0usize;
    for s in &first.samples {
        if !["_total", "_count", "_bucket", "_sum"]
            .iter()
            .any(|suf| s.name.ends_with(suf))
        {
            continue;
        }
        let later = second
            .samples
            .iter()
            .find(|x| x.name == s.name && x.labels == s.labels)
            .unwrap_or_else(|| panic!("{} {:?} vanished from second scrape", s.name, s.labels));
        assert!(
            later.value >= s.value,
            "{} {:?} went backwards: {} -> {}",
            s.name,
            s.labels,
            s.value,
            later.value
        );
        compared += 1;
    }
    assert!(compared >= 20, "only {compared} counter samples compared");

    // The fault-tolerance families are registered and quiet on a
    // healthy run: no errors of any code, no retries, no sheds, and
    // every disk's offline gauge reads 0.
    for code in ["media", "offline", "timeout", "overload", "other"] {
        assert_eq!(
            second.counter("forhdc_errors_total", &[("code", code)]),
            Some(0),
            "errors_total{{code={code}}} on a healthy run:\n{second_text}"
        );
    }
    assert_eq!(second.counter("forhdc_retries_total", &[]), Some(0));
    assert_eq!(second.counter("forhdc_shed_total", &[]), Some(0));
    assert_eq!(second.counter("forhdc_rebuild_blocks_total", &[]), Some(0));
    for d in ["0", "1"] {
        assert_eq!(
            second.value("forhdc_disk_offline", &[("disk", d)]),
            Some(0.0),
            "disk_offline{{disk={d}}}:\n{second_text}"
        );
        assert_eq!(
            second.counter("forhdc_failover_reads_total", &[("disk", d)]),
            Some(0),
            "failover_reads_total{{disk={d}}} on an unmirrored run:\n{second_text}"
        );
        assert_eq!(
            second.value("forhdc_rebuild_progress", &[("disk", d)]),
            Some(0.0),
            "rebuild_progress{{disk={d}}} with no rebuild:\n{second_text}"
        );
    }

    // Family coverage: at least eight forhdc_ families, per-disk labels
    // present.
    let mut families: Vec<&str> = second
        .samples
        .iter()
        .filter(|s| s.name.starts_with("forhdc_"))
        .map(|s| {
            s.name
                .strip_suffix("_bucket")
                .or_else(|| s.name.strip_suffix("_sum"))
                .or_else(|| s.name.strip_suffix("_count"))
                .unwrap_or(&s.name)
        })
        .collect();
    families.sort_unstable();
    families.dedup();
    assert!(
        families.len() >= 8,
        "want >= 8 forhdc_ families, got {}: {families:?}",
        families.len()
    );
    for d in ["0", "1"] {
        assert!(
            second
                .samples
                .iter()
                .any(|s| s.labels.iter().any(|(k, v)| k == "disk" && v == d)),
            "no samples labeled disk=\"{d}\":\n{second_text}"
        );
    }

    // The flight dump is JSONL the forhdc-trace parser accepts, and it
    // recorded real request lifecycles.
    let flight = std::fs::read_to_string(&flight_path).expect("flight dump written");
    let events = forhdc_trace::parse_jsonl(&flight).expect("flight dump parses");
    assert!(!events.is_empty(), "flight recorder captured nothing");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, forhdc_trace::TraceEvent::Complete { .. })),
        "no Complete events in flight dump"
    );

    // The loadgen JSON embeds per-level and merged server-side
    // quantiles.
    let sweep = std::fs::read_to_string(&json_path).expect("sweep json written");
    assert!(sweep.contains("\"server_latency\""), "{sweep}");
    assert!(sweep.contains("\"server\": {"), "{sweep}");

    // Drain the server; the final report carries the extended totals.
    let out = loadgen_bin()
        .args(["--addr", &addr, "--levels", "1", "--requests", "2"])
        .args(["--shutdown"])
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");
    let report = std::fs::read_to_string(dir.join("report.json")).expect("report written");
    for key in ["\"uptime_secs\"", "\"inflight\"", "\"store_hits\""] {
        assert!(report.contains(key), "missing {key} in report: {report}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_over_the_wire_match_report_shape() {
    let dir = tmpdir("stats");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "16",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());
    let (mut server, addr) = start_server(&dir, &["--policy", "segm"]);

    // A short burst, then shut down.
    let out = loadgen_bin()
        .args([
            "--addr",
            &addr,
            "--levels",
            "2",
            "--requests",
            "40",
            "--verify",
            "--shutdown",
        ])
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("schedule digest: 0x"), "{stdout}");

    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");
    let report = std::fs::read_to_string(dir.join("report.json")).expect("report written");
    assert!(report.contains("\"policy\": \"Segm\""), "{report}");
    assert!(report.contains("\"requests\": "), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The media-fault contract over the wire: a planted bad block fails
/// a READ with a structured `ERR MediaError` after exactly the
/// configured number of server-side retries, and the retry/error
/// counters agree.
#[test]
fn planted_bad_block_errs_after_exact_retries() {
    use forhdc_serve::protocol::{
        parse_error, read_response, write_request, ErrorCode, Request, ST_ERR, ST_OK,
    };
    use std::io::Write;

    let dir = tmpdir("plant");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "16",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());
    let (mut server, addr) = start_server(&dir, &["--retries", "2", "--backoff-ms", "1"]);

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut r = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut w = std::io::BufWriter::new(stream);
    let mut rpc = |req: &Request| {
        write_request(&mut w, req).unwrap();
        w.flush().unwrap();
        read_response(&mut r).expect("response")
    };

    // Plant under (file 3, offset 0), then read the file cold.
    let (st, _) = rpc(&Request::FaultPlant { file: 3, offset: 0 });
    assert_eq!(st, ST_OK);
    let (st, body) = rpc(&Request::Read {
        file: 3,
        offset: 0,
        nblocks: 2,
    });
    assert_eq!(st, ST_ERR, "payload: {}", String::from_utf8_lossy(&body));
    let (code, msg) = parse_error(&body);
    assert_eq!(code, Some(ErrorCode::MediaError), "{msg}");
    assert!(msg.contains("after 2 retries"), "{msg}");

    // Exactly 2 retries and 1 media error on the counters.
    let (st, body) = rpc(&Request::Metrics);
    assert_eq!(st, ST_OK);
    let scrape = Scrape::parse(std::str::from_utf8(&body).unwrap()).expect("parse metrics");
    assert_eq!(scrape.counter("forhdc_retries_total", &[]), Some(2));
    assert_eq!(
        scrape.counter("forhdc_errors_total", &[("code", "media")]),
        Some(1)
    );
    // A healthy file still reads fine on the same connection.
    let (st, body) = rpc(&Request::Read {
        file: 4,
        offset: 0,
        nblocks: 2,
    });
    assert_eq!(st, ST_OK);
    assert_eq!(body.len(), 2 * 4096);

    let (st, _) = rpc(&Request::Shutdown);
    assert_eq!(st, ST_OK);
    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM drains to a clean exit: the server announces the drain,
/// dumps the flight recorder between parseable markers on stderr,
/// writes its final JSON report, and exits 0.
#[test]
fn sigterm_drains_dumps_flight_and_exits_clean() {
    let dir = tmpdir("sigterm");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "16",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());

    // start_server nulls stderr; spawn by hand to capture it.
    let port_file = dir.join("port");
    let report = dir.join("report.json");
    let stderr_file = std::fs::File::create(dir.join("stderr.log")).unwrap();
    let mut server = serve_bin()
        .args(["run", "--port", "0", "--port-file"])
        .arg(&port_file)
        .args(["--report"])
        .arg(&report)
        .args(["--dir"])
        .arg(&dir)
        .stdout(Stdio::null())
        .stderr(stderr_file)
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.trim().is_empty() {
                break s.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr = format!("127.0.0.1:{port}");

    // Some traffic so the flight recorder has lifecycles to dump.
    let out = loadgen_bin()
        .args(["--addr", &addr, "--levels", "2", "--requests", "20"])
        .output()
        .expect("spawn loadgen");
    assert!(out.status.success());

    let kill = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status} on SIGTERM");

    let stderr = std::fs::read_to_string(dir.join("stderr.log")).unwrap();
    assert!(
        stderr.contains("serve: termination signal received, draining"),
        "{stderr}"
    );
    assert!(
        stderr.contains("reason: termination signal) begin"),
        "{stderr}"
    );
    assert!(
        stderr.contains("serve: flight recorder dump end"),
        "{stderr}"
    );
    // The dumped JSONL between the markers parses.
    let body: String = stderr
        .lines()
        .skip_while(|l| !l.contains("reason: termination signal) begin"))
        .skip(1)
        .take_while(|l| !l.starts_with("serve: flight recorder dump end"))
        .map(|l| format!("{l}\n"))
        .collect();
    let events = forhdc_trace::parse_jsonl(&body).expect("dump parses");
    assert!(!events.is_empty(), "flight dump empty");

    let report = std::fs::read_to_string(&report).expect("report written on SIGTERM");
    assert!(report.contains("\"errors_by_code\""), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shed path under pressure: with `--max-inflight 1` and 32
/// closed-loop connections, the server must answer every request —
/// shedding with `ERR Overload`, never hanging — and the client-side
/// conservation total must balance.
#[test]
fn max_inflight_one_sheds_overload_and_never_hangs() {
    let dir = tmpdir("shed");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "32",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());
    let (mut server, addr) = start_server(&dir, &["--max-inflight", "1"]);

    let json_path = dir.join("shed.json");
    let out = loadgen_bin()
        .args(["--addr", &addr, "--levels", "32", "--requests", "640"])
        .args(["--retries", "0", "--shutdown", "--json"])
        .arg(&json_path)
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("balanced=true"), "{stdout}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    let overload: u64 = json
        .split("\"overload\": ")
        .skip(1)
        .map(|s| {
            s.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert!(overload > 0, "no request shed with Overload: {json}");

    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");
    // The server counted its sheds too.
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    let shed: u64 = report
        .split("\"shed\": ")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("shed total in report");
    assert_eq!(shed, overload, "server shed != client overload: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full chaos harness: kill -9 mid-sweep, same-port restart,
/// per-code fault probes, recovery-throughput floor, conservation.
#[test]
fn chaos_harness_passes_end_to_end() {
    let dir = tmpdir("chaos");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "4",
            "--files",
            "64",
            "--file-blocks",
            "4",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());

    let json_path = dir.join("chaos.json");
    let out = loadgen_bin()
        .arg("chaos")
        .args(["--serve-bin", env!("CARGO_BIN_EXE_serve")])
        .args(["--requests", "300", "--conc", "8", "--max-inflight", "4"])
        // At 300 requests the baseline sweep lasts ~10 ms while phase C
        // pays wall-clock retry backoff for the probe's persistent
        // planted block, so a tight throughput floor is pure timing
        // noise; conservation and the probe assertions carry the test.
        .args(["--tolerance", "0.02"])
        .args(["--json"])
        .arg(&json_path)
        .args(["--dir"])
        .arg(&dir)
        .output()
        .expect("spawn loadgen chaos");
    assert!(
        out.status.success(),
        "chaos failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for marker in [
        "chaos: probe media",
        "chaos: probe offline",
        "chaos: probe timeout",
        "chaos: probe overload",
        "chaos: PASS",
    ] {
        assert!(stdout.contains(marker), "missing {marker}: {stdout}");
    }
    let json = std::fs::read_to_string(&json_path).unwrap();
    for key in [
        "\"rps_pre\"",
        "\"rps_post\"",
        "\"probes\": {\"media\": true, \"offline\": true, \"timeout\": true, \"overload\": true}",
        "\"balanced\": true",
        "\"pass\": true",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The chaos harness on a mirrored (RAID1/0) array: a planted bad
/// block is served from the twin instead of erroring, a replica going
/// offline is invisible to clients (the degraded burst sees zero
/// DiskOffline errors and counts failovers), clearing the window
/// rebuilds the member from its mirror, and the conservation budget
/// widens to four phases and still balances.
#[test]
fn mirrored_chaos_fails_over_and_rebuilds_end_to_end() {
    let dir = tmpdir("mchaos");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "4",
            "--files",
            "64",
            "--file-blocks",
            "4",
            "--mirror",
            "1",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());

    let json_path = dir.join("chaos.json");
    let out = loadgen_bin()
        .arg("chaos")
        .args(["--serve-bin", env!("CARGO_BIN_EXE_serve")])
        .args(["--requests", "300", "--conc", "8", "--max-inflight", "4"])
        .args(["--tolerance", "0.02", "--rebuild-mbps", "64"])
        .args(["--json"])
        .arg(&json_path)
        .args(["--dir"])
        .arg(&dir)
        .output()
        .expect("spawn loadgen chaos");
    assert!(
        out.status.success(),
        "mirrored chaos failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for marker in [
        "chaos: probe media    -> OK (served from the mirror)",
        "chaos: phase M (degraded)",
        "chaos: probe mirror   -> replica 1 offline invisibly",
        "chaos: PASS",
    ] {
        assert!(stdout.contains(marker), "missing {marker}: {stdout}");
    }
    let json = std::fs::read_to_string(&json_path).unwrap();
    for key in [
        "\"mirror\": {\"failover_reads\": ",
        "\"rebuilt_blocks\": ",
        "\"rps_degraded\": ",
        "\"issued\": 1200",
        "\"balanced\": true",
        "\"pass\": true",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
