//! End-to-end: a real `serve` process on an ephemeral loopback port,
//! driven by real `loadgen` runs. Covers the CI smoke contract: the
//! sweep table carries every percentile column, a fixed seed yields an
//! identical schedule digest, and the server drains to a clean exit
//! with a complete JSON report after `--shutdown`.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn serve_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_serve"))
}

fn loadgen_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Starts a server on port 0 and waits for the port file.
fn start_server(dir: &PathBuf, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port");
    let report = dir.join("report.json");
    let child = serve_bin()
        .args(["run", "--port", "0"])
        .args(["--port-file"])
        .arg(&port_file)
        .args(["--report"])
        .arg(&report)
        .args(extra)
        .args(["--dir"])
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, format!("127.0.0.1:{port}"))
}

fn digest_of(stdout: &str) -> &str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("schedule digest: "))
        .unwrap_or_else(|| panic!("no digest line in: {stdout}"))
}

#[test]
fn smoke_sweep_verify_and_drain() {
    let dir = tmpdir("smoke");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "64",
            "--file-blocks",
            "4",
            "--seed",
            "5",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (mut server, addr) = start_server(&dir, &["--policy", "for", "--hdc", "256"]);

    // Two identical runs: same seed, same digest; payloads verified.
    let run = |seed: &str, shutdown: bool| {
        let mut c = loadgen_bin();
        c.args([
            "--addr",
            &addr,
            "--levels",
            "1,2,4,8",
            "--requests",
            "160",
            "--seed",
            seed,
            "--verify",
        ]);
        if shutdown {
            c.arg("--shutdown");
        }
        let out = c.output().expect("spawn loadgen");
        assert!(
            out.status.success(),
            "loadgen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run("11", false);
    let second = run("11", false);
    let third = run("7", true);

    // The sweep table carries every percentile column and four rows.
    for col in ["rps", "p50ms", "p95ms", "p99ms", "p99.9ms"] {
        assert!(first.contains(col), "missing column {col} in: {first}");
    }
    let rows = first
        .lines()
        .filter(|l| l.trim_start().starts_with(['1', '2', '4', '8']))
        .count();
    assert!(rows >= 4, "want 4 sweep rows in: {first}");

    // Fixed seed => identical schedule; different seed => different.
    assert_eq!(digest_of(&first), digest_of(&second));
    assert_ne!(digest_of(&first), digest_of(&third));

    // --shutdown drained the server to a clean exit...
    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");

    // ...and the final report is complete.
    let report = std::fs::read_to_string(dir.join("report.json")).expect("report written");
    for key in [
        "\"serve\"",
        "\"policy\": \"FOR\"",
        "\"totals\"",
        "\"e2e_latency\"",
        "\"p50_ns\"",
        "\"p95_ns\"",
        "\"p99_ns\"",
        "\"p999_ns\"",
        "\"media\"",
        "\"per_disk\"",
    ] {
        assert!(report.contains(key), "missing {key} in report: {report}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_over_the_wire_match_report_shape() {
    let dir = tmpdir("stats");
    let out = serve_bin()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "16",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(&dir)
        .output()
        .expect("spawn mkdisk");
    assert!(out.status.success());
    let (mut server, addr) = start_server(&dir, &["--policy", "segm"]);

    // A short burst, then shut down.
    let out = loadgen_bin()
        .args([
            "--addr",
            &addr,
            "--levels",
            "2",
            "--requests",
            "40",
            "--verify",
            "--shutdown",
        ])
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("schedule digest: 0x"), "{stdout}");

    let status = server.wait().expect("wait serve");
    assert!(status.success(), "server exited {status}");
    let report = std::fs::read_to_string(dir.join("report.json")).expect("report written");
    assert!(report.contains("\"policy\": \"Segm\""), "{report}");
    assert!(report.contains("\"requests\": "), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}
