//! CLI surface of `serve` and `loadgen`: bad flags, unbindable ports,
//! and missing or corrupt disk directories must exit 2 with a clean
//! one-line diagnostic and the usage text — never a panic.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::Command;

fn serve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_serve"))
}

fn loadgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_serve_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn mkdisk(dir: &PathBuf) {
    let out = serve()
        .args([
            "mkdisk",
            "--disks",
            "2",
            "--files",
            "16",
            "--file-blocks",
            "2",
            "--dir",
        ])
        .arg(dir)
        .output()
        .expect("spawn serve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Exit 2 + "error:" + usage for every class of bad invocation.
fn assert_usage_error(out: std::process::Output, needle: &str, ctx: &str) {
    assert_eq!(out.status.code(), Some(2), "{ctx}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error:"), "{ctx}: {stderr}");
    assert!(
        stderr.contains(needle),
        "{ctx}: wanted '{needle}' in: {stderr}"
    );
    assert!(stderr.contains("usage:"), "{ctx}: {stderr}");
}

#[test]
fn serve_bad_arguments_exit_2() {
    for (args, needle) in [
        (vec!["frobnicate"], "unknown command"),
        (vec!["run"], "--dir is required"),
        (vec!["mkdisk"], "--dir is required"),
        (vec!["run", "--dir"], "--dir needs a value"),
        (
            vec!["mkdisk", "--dir", "/tmp/x", "--disks", "zero"],
            "--disks",
        ),
    ] {
        let out = serve().args(&args).output().expect("spawn serve");
        assert_usage_error(out, needle, &format!("{args:?}"));
    }
}

#[test]
fn serve_missing_dir_exits_2() {
    let out = serve()
        .args(["run", "--dir", "/nonexistent/forhdc-disks"])
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "meta.txt", "missing dir");
}

#[test]
fn serve_corrupt_dir_exits_2() {
    // A manifest promising images that are not there.
    let dir = tmpdir("corrupt_missing");
    mkdisk(&dir);
    std::fs::remove_file(dir.join("disk001.img")).unwrap();
    let out = serve()
        .args(["run", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "disk001.img", "deleted image");

    // An image of the wrong size.
    let dir2 = tmpdir("corrupt_short");
    mkdisk(&dir2);
    let img = dir2.join("disk000.img");
    let len = std::fs::metadata(&img).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&img).unwrap();
    f.set_len(len - 1).unwrap();
    let out = serve()
        .args(["run", "--dir"])
        .arg(&dir2)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "corrupt disk directory", "truncated image");

    // A mangled manifest.
    let dir3 = tmpdir("corrupt_meta");
    mkdisk(&dir3);
    std::fs::write(dir3.join("meta.txt"), "not a manifest\n").unwrap();
    let out = serve()
        .args(["run", "--dir"])
        .arg(&dir3)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "meta", "mangled manifest");

    for d in [dir, dir2, dir3] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn serve_unbindable_port_exits_2() {
    let dir = tmpdir("bind");
    mkdisk(&dir);
    // Occupy an ephemeral port, then ask serve for exactly that port.
    let holder = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = holder.local_addr().unwrap().port().to_string();
    let out = serve()
        .args(["run", "--port", &port, "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "bind 127.0.0.1", "occupied port");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_unbindable_metrics_addr_exits_2() {
    let dir = tmpdir("mbind");
    mkdisk(&dir);
    let holder = TcpListener::bind("127.0.0.1:0").unwrap();
    let maddr = holder.local_addr().unwrap().to_string();
    let out = serve()
        .args(["run", "--metrics-addr", &maddr, "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, &format!("bind {maddr}"), "occupied metrics port");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_oversized_hdc_exits_2() {
    let dir = tmpdir("hdc");
    mkdisk(&dir);
    // The controller memory is 4 MB; ask for more than that of HDC.
    let out = serve()
        .args(["run", "--hdc", "8192", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn serve");
    assert_usage_error(out, "read-ahead cache", "oversized hdc");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_bad_arguments_exit_2() {
    for (args, needle) in [
        (vec![] as Vec<&str>, "--addr is required"),
        (vec!["--addr"], "--addr needs a value"),
        (vec!["positional"], "unexpected argument"),
        (vec!["chaos", "extra"], "unexpected argument"),
        (vec!["chaos"], "--dir is required"),
        (
            vec!["chaos", "--dir", "/tmp/x", "--tolerance", "1.5"],
            "--tolerance",
        ),
        (
            vec!["chaos", "--dir", "/tmp/x", "--conc", "0"],
            "--conc must be >= 1",
        ),
        (
            vec!["--addr", "127.0.0.1:1", "--retries", "some"],
            "--retries",
        ),
        (
            vec!["--addr", "127.0.0.1:1", "--backoff-ms", "-3"],
            "--backoff-ms",
        ),
        (vec!["--addr", "127.0.0.1:1", "--levels", "0"], "--levels"),
        (
            vec!["--addr", "127.0.0.1:1", "--requests", "lots"],
            "--requests",
        ),
        (
            vec!["--addr", "127.0.0.1:1", "--dump-flight"],
            "--dump-flight needs a value",
        ),
    ] {
        let out = loadgen().args(&args).output().expect("spawn loadgen");
        assert_usage_error(out, needle, &format!("{args:?}"));
    }
}

#[test]
fn loadgen_unreachable_server_exits_2() {
    // Bind-then-drop to get a port that refuses connections.
    let port = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let out = loadgen()
        .args(["--addr", &format!("127.0.0.1:{port}"), "--requests", "1"])
        .output()
        .expect("spawn loadgen");
    assert_usage_error(out, "connect", "refused connection");
}

#[test]
fn serve_bad_fault_flags_exit_2() {
    let dir = tmpdir("badfaults");
    mkdisk(&dir);
    for (flags, needle) in [
        (vec!["--faults", "media=2.0"], "rate outside [0, 1]"),
        (vec!["--faults", "seed"], "want key=value"),
        (vec!["--faults", "bogus=1"], "--faults key 'bogus'"),
        (vec!["--faults", "offline=0@x+1"], "--faults"),
        (vec!["--deadline-ms", "soon"], "--deadline-ms"),
        (vec!["--retries", "-1"], "--retries"),
        (vec!["--max-inflight", "many"], "--max-inflight"),
        (vec!["--max-queue", "deep"], "--max-queue"),
    ] {
        let out = serve()
            .args(["run", "--dir"])
            .arg(&dir)
            .args(&flags)
            .output()
            .expect("spawn serve");
        assert_usage_error(out, needle, &format!("{flags:?}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
