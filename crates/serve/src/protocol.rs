//! The wire protocol between `loadgen` (or any client) and `serve`.
//!
//! Frames are length-prefixed: a little-endian `u32` byte count
//! followed by that many bytes, the first of which is the opcode
//! (requests) or status (responses). All multi-byte integers are
//! little-endian. The protocol is deliberately tiny — nine opcodes,
//! fixed-size request bodies — so a client fits in a few dozen lines
//! and a malformed frame is cheap to reject.
//!
//! ```text
//! request  := len:u32  op:u8  body
//!   PING                                   (body empty)
//!   READ     file:u32  offset:u64  nblocks:u32
//!   META                                   (body empty)
//!   STATS                                  (body empty)
//!   SHUTDOWN                               (body empty)
//!   METRICS                                (body empty)
//!   DUMP                                   (body empty)
//!   FAULT    sub:u8  args       (admin chaos frame; see below)
//!   REBUILD  disk:u16            (admin: rebuild a mirror member)
//! response := len:u32  status:u8  payload
//!   READ    OK → payload = nblocks × block_bytes of file data
//!   META    OK → payload = the disk directory's meta.txt (UTF-8)
//!   STATS   OK → payload = a JSON stats snapshot (UTF-8)
//!   METRICS OK → payload = Prometheus text exposition (UTF-8)
//!   DUMP    OK → payload = the flight recorder as JSONL (UTF-8)
//!   errors     → payload = a one-line diagnostic (UTF-8)
//!   ERR        → payload = code:u8 + a one-line diagnostic (UTF-8)
//! ```
//!
//! `ERR` (status [`ST_ERR`]) is the structured failure frame: its
//! first payload byte is an [`ErrorCode`], so clients can distinguish
//! a persistent media error from an offline disk, a deadline timeout,
//! or a load-shedding rejection — and pick a retry strategy per code.
//!
//! `FAULT` is the chaos-engineering admin frame (`sub` selects the
//! action): take a disk offline for a wall-clock window, plant a
//! persistent bad block under a `(file, offset)`, or stall a disk's
//! media path. It exists so a harness (`loadgen chaos`) can inject
//! component failure into a *running* server deterministically.

use std::io::{self, Read, Write};

/// Liveness probe; empty OK response.
pub const OP_PING: u8 = 1;
/// Read `nblocks` blocks of `file` starting at block `offset`.
pub const OP_READ: u8 = 2;
/// Fetch the serialized disk-array metadata.
pub const OP_META: u8 = 3;
/// Fetch a JSON stats snapshot.
pub const OP_STATS: u8 = 4;
/// Ask the server to drain and exit.
pub const OP_SHUTDOWN: u8 = 5;
/// Fetch the live metric registry as Prometheus text exposition.
pub const OP_METRICS: u8 = 6;
/// Fetch the flight recorder's retained events as JSONL.
pub const OP_DUMP: u8 = 7;
/// Admin chaos frame: inject a fault into the running server.
pub const OP_FAULT: u8 = 8;
/// Admin frame: rebuild a mirrored disk's image from its twin.
pub const OP_REBUILD: u8 = 9;

/// `FAULT` sub-op: take a disk offline for a wall-clock window
/// (`ms = 0` brings it back).
pub const FAULT_OFFLINE: u8 = 1;
/// `FAULT` sub-op: plant a persistent bad block under `(file, offset)`.
pub const FAULT_PLANT: u8 = 2;
/// `FAULT` sub-op: stall a disk's media path for a wall-clock window
/// (ops wait it out instead of failing).
pub const FAULT_STALL: u8 = 3;

/// Request served successfully.
pub const ST_OK: u8 = 0;
/// The frame did not parse (unknown op, bad length).
pub const ST_BAD_REQUEST: u8 = 1;
/// A READ named a file or range the array does not hold.
pub const ST_RANGE: u8 = 2;
/// The server is draining; no further requests will be served.
pub const ST_SHUTTING_DOWN: u8 = 3;
/// The server failed internally (e.g. an image read error).
pub const ST_INTERNAL: u8 = 4;
/// The connection limit was reached; retry later.
pub const ST_BUSY: u8 = 5;
/// Structured failure: the first payload byte is an [`ErrorCode`],
/// the rest a UTF-8 diagnostic.
pub const ST_ERR: u8 = 6;

/// The failure taxonomy carried by `ERR` frames. Codes are stable
/// wire bytes; labels are the metric label values of
/// `forhdc_errors_total{code=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A persistent media error survived the server's retry budget.
    MediaError = 1,
    /// The target disk is inside an offline window; retry later.
    DiskOffline = 2,
    /// The request crossed its deadline (directly, or because the
    /// deadline preempted the remaining retries).
    Timeout = 3,
    /// Admission control shed the request (inflight or per-disk queue
    /// limit); retry after backoff.
    Overload = 4,
}

impl ErrorCode {
    /// Every code, in wire order.
    pub const ALL: [ErrorCode; 4] = [
        ErrorCode::MediaError,
        ErrorCode::DiskOffline,
        ErrorCode::Timeout,
        ErrorCode::Overload,
    ];

    /// The stable label (metric label value and report key).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::MediaError => "media",
            ErrorCode::DiskOffline => "offline",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Overload => "overload",
        }
    }

    /// Index into per-code instrument vectors (the [`ErrorCode::ALL`]
    /// position).
    pub fn index(self) -> usize {
        self as usize - 1
    }

    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::MediaError),
            2 => Some(ErrorCode::DiskOffline),
            3 => Some(ErrorCode::Timeout),
            4 => Some(ErrorCode::Overload),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Serializes an `ERR` response: status [`ST_ERR`], payload =
/// code byte + message.
pub fn write_error<W: Write>(w: &mut W, code: ErrorCode, msg: &str) -> io::Result<()> {
    let mut payload = Vec::with_capacity(1 + msg.len());
    payload.push(code as u8);
    payload.extend_from_slice(msg.as_bytes());
    write_response(w, ST_ERR, &payload)
}

/// Splits an `ERR` payload into its code and diagnostic. `None` code
/// means the byte was unknown (a newer server).
pub fn parse_error(payload: &[u8]) -> (Option<ErrorCode>, String) {
    match payload.split_first() {
        Some((&b, rest)) => (
            ErrorCode::from_u8(b),
            String::from_utf8_lossy(rest).into_owned(),
        ),
        None => (None, String::new()),
    }
}

/// Upper bound on a request frame (op + largest fixed body).
pub const MAX_REQUEST_FRAME: u32 = 64;
/// Upper bound a client accepts for a response frame (16 MiB covers
/// the largest permitted READ plus any stats payload).
pub const MAX_RESPONSE_FRAME: u32 = 16 * 1024 * 1024;
/// Largest single READ in blocks (4 MiB of 4-KByte blocks).
pub const MAX_READ_BLOCKS: u32 = 1024;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read a block range of one file.
    Read {
        /// File index in the layout.
        file: u32,
        /// First block, as an offset within the file.
        offset: u64,
        /// Blocks to read (1..=[`MAX_READ_BLOCKS`]).
        nblocks: u32,
    },
    /// Fetch the array metadata.
    Meta,
    /// Fetch a stats snapshot.
    Stats,
    /// Drain and exit.
    Shutdown,
    /// Fetch the Prometheus text exposition.
    Metrics,
    /// Fetch the flight recorder's retained events as JSONL.
    Dump,
    /// Admin: take `disk` offline for `ms` wall-clock milliseconds
    /// (`ms = 0` clears any admin window and brings it back).
    FaultOffline {
        /// Physical disk id.
        disk: u16,
        /// Window length from now, in milliseconds.
        ms: u64,
    },
    /// Admin: plant a persistent bad block under `(file, offset)`.
    FaultPlant {
        /// File index in the layout.
        file: u32,
        /// Block offset within the file.
        offset: u64,
    },
    /// Admin: stall `disk`'s media path for `ms` milliseconds — media
    /// operations wait the window out instead of failing.
    FaultStall {
        /// Physical disk id.
        disk: u16,
        /// Window length from now, in milliseconds.
        ms: u64,
    },
    /// Admin: start a background rebuild of `disk` from its mirror
    /// twin (mirrored arrays only; idempotent while one is running).
    Rebuild {
        /// Physical disk id of the member to reconstruct.
        disk: u16,
    },
}

/// Why an incoming request frame could not be parsed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The bytes arrived but are not a valid request.
    Malformed(String),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "{e}"),
            FrameError::Malformed(m) => write!(f, "{m}"),
        }
    }
}

/// Serializes one request onto `w` (unbuffered callers should wrap `w`
/// in a `BufWriter` and flush).
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut body = Vec::with_capacity(17);
    match req {
        Request::Ping => body.push(OP_PING),
        Request::Read {
            file,
            offset,
            nblocks,
        } => {
            body.push(OP_READ);
            body.extend_from_slice(&file.to_le_bytes());
            body.extend_from_slice(&offset.to_le_bytes());
            body.extend_from_slice(&nblocks.to_le_bytes());
        }
        Request::Meta => body.push(OP_META),
        Request::Stats => body.push(OP_STATS),
        Request::Shutdown => body.push(OP_SHUTDOWN),
        Request::Metrics => body.push(OP_METRICS),
        Request::Dump => body.push(OP_DUMP),
        Request::FaultOffline { disk, ms } => {
            body.push(OP_FAULT);
            body.push(FAULT_OFFLINE);
            body.extend_from_slice(&disk.to_le_bytes());
            body.extend_from_slice(&ms.to_le_bytes());
        }
        Request::FaultPlant { file, offset } => {
            body.push(OP_FAULT);
            body.push(FAULT_PLANT);
            body.extend_from_slice(&file.to_le_bytes());
            body.extend_from_slice(&offset.to_le_bytes());
        }
        Request::FaultStall { disk, ms } => {
            body.push(OP_FAULT);
            body.push(FAULT_STALL);
            body.extend_from_slice(&disk.to_le_bytes());
            body.extend_from_slice(&ms.to_le_bytes());
        }
        Request::Rebuild { disk } => {
            body.push(OP_REBUILD);
            body.extend_from_slice(&disk.to_le_bytes());
        }
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Reads one request frame. `Ok(None)` is a clean end of stream (the
/// peer closed between frames); a close mid-frame or a malformed body
/// is an error.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, FrameError> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len4);
    if len == 0 || len > MAX_REQUEST_FRAME {
        return Err(FrameError::Malformed(format!(
            "request frame of {len} bytes (limit {MAX_REQUEST_FRAME})"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let op = body[0];
    let args = &body[1..];
    let req = match (op, args.len()) {
        (OP_PING, 0) => Request::Ping,
        (OP_META, 0) => Request::Meta,
        (OP_STATS, 0) => Request::Stats,
        (OP_SHUTDOWN, 0) => Request::Shutdown,
        (OP_METRICS, 0) => Request::Metrics,
        (OP_DUMP, 0) => Request::Dump,
        (OP_READ, 16) => Request::Read {
            file: u32::from_le_bytes(args[0..4].try_into().expect("4-byte slice")),
            offset: u64::from_le_bytes(args[4..12].try_into().expect("8-byte slice")),
            nblocks: u32::from_le_bytes(args[12..16].try_into().expect("4-byte slice")),
        },
        (OP_READ, n) => {
            return Err(FrameError::Malformed(format!(
                "READ body of {n} bytes (want 16)"
            )))
        }
        (OP_FAULT, 11) => {
            let sub = args[0];
            let rest = &args[1..];
            match sub {
                FAULT_OFFLINE | FAULT_STALL => {
                    let disk = u16::from_le_bytes(rest[0..2].try_into().expect("2-byte slice"));
                    let ms = u64::from_le_bytes(rest[2..10].try_into().expect("8-byte slice"));
                    if sub == FAULT_OFFLINE {
                        Request::FaultOffline { disk, ms }
                    } else {
                        Request::FaultStall { disk, ms }
                    }
                }
                other => {
                    return Err(FrameError::Malformed(format!(
                        "unknown FAULT sub-op {other}"
                    )))
                }
            }
        }
        (OP_FAULT, 13) if args[0] == FAULT_PLANT => Request::FaultPlant {
            file: u32::from_le_bytes(args[1..5].try_into().expect("4-byte slice")),
            offset: u64::from_le_bytes(args[5..13].try_into().expect("8-byte slice")),
        },
        (OP_FAULT, n) => {
            return Err(FrameError::Malformed(format!(
                "FAULT body of {n} bytes (want 11 or 13)"
            )))
        }
        (OP_REBUILD, 2) => Request::Rebuild {
            disk: u16::from_le_bytes(args[0..2].try_into().expect("2-byte slice")),
        },
        (OP_REBUILD, n) => {
            return Err(FrameError::Malformed(format!(
                "REBUILD body of {n} bytes (want 2)"
            )))
        }
        (op, _) => return Err(FrameError::Malformed(format!("unknown opcode {op}"))),
    };
    Ok(Some(req))
}

/// Serializes one response (status byte + payload) onto `w`.
pub fn write_response<W: Write>(w: &mut W, status: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(1 + payload.len() as u32).to_le_bytes())?;
    w.write_all(&[status])?;
    w.write_all(payload)
}

/// Reads one response frame as `(status, payload)`.
pub fn read_response<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), FrameError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 || len > MAX_RESPONSE_FRAME {
        return Err(FrameError::Malformed(format!(
            "response frame of {len} bytes (limit {MAX_RESPONSE_FRAME})"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let status = body[0];
    body.remove(0);
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Meta,
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::Dump,
            Request::Read {
                file: 7,
                offset: 123_456_789_012,
                nblocks: 32,
            },
            Request::FaultOffline { disk: 3, ms: 250 },
            Request::FaultPlant {
                file: 11,
                offset: 2,
            },
            Request::FaultStall { disk: 1, ms: 500 },
            Request::Rebuild { disk: 2 },
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_request(&mut buf, r).unwrap();
        }
        let mut c = Cursor::new(buf);
        for r in &reqs {
            assert_eq!(read_request(&mut c).unwrap(), Some(*r));
        }
        assert_eq!(read_request(&mut c).unwrap(), None); // clean EOF
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, ST_OK, b"hello").unwrap();
        write_response(&mut buf, ST_RANGE, b"").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_response(&mut c).unwrap(), (ST_OK, b"hello".to_vec()));
        assert_eq!(read_response(&mut c).unwrap(), (ST_RANGE, Vec::new()));
    }

    #[test]
    fn oversized_request_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_REQUEST_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 80]);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("frame"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(99);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("opcode"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_read_body_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.push(OP_READ);
        buf.extend_from_slice(&[0u8; 4]);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("READ body"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_frame_roundtrips_codes() {
        let mut buf = Vec::new();
        for code in ErrorCode::ALL {
            write_error(&mut buf, code, "disk 1: boom").unwrap();
        }
        let mut c = Cursor::new(buf);
        for code in ErrorCode::ALL {
            let (st, payload) = read_response(&mut c).unwrap();
            assert_eq!(st, ST_ERR);
            let (parsed, msg) = parse_error(&payload);
            assert_eq!(parsed, Some(code));
            assert_eq!(msg, "disk 1: boom");
        }
        // Unknown code bytes degrade to None, keeping the diagnostic.
        let (parsed, msg) = parse_error(&[200, b'x']);
        assert_eq!(parsed, None);
        assert_eq!(msg, "x");
        assert_eq!(parse_error(&[]), (None, String::new()));
        // Labels are distinct and stable; indices follow ALL order.
        let mut seen = std::collections::HashSet::new();
        for (i, code) in ErrorCode::ALL.into_iter().enumerate() {
            assert!(seen.insert(code.label()));
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
            assert_eq!(code.index(), i);
        }
    }

    #[test]
    fn bad_fault_frames_rejected() {
        // Unknown sub-op.
        let mut buf = Vec::new();
        buf.extend_from_slice(&12u32.to_le_bytes());
        buf.push(OP_FAULT);
        buf.push(99);
        buf.extend_from_slice(&[0u8; 10]);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("sub-op"), "{m}"),
            other => panic!("{other:?}"),
        }
        // Wrong body size.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.push(OP_FAULT);
        buf.push(FAULT_OFFLINE);
        buf.push(0);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("FAULT body"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&17u32.to_le_bytes());
        buf.push(OP_READ); // body cut short
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }
}
