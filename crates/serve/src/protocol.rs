//! The wire protocol between `loadgen` (or any client) and `serve`.
//!
//! Frames are length-prefixed: a little-endian `u32` byte count
//! followed by that many bytes, the first of which is the opcode
//! (requests) or status (responses). All multi-byte integers are
//! little-endian. The protocol is deliberately tiny — seven opcodes,
//! fixed-size request bodies — so a client fits in a few dozen lines
//! and a malformed frame is cheap to reject.
//!
//! ```text
//! request  := len:u32  op:u8  body
//!   PING                                   (body empty)
//!   READ     file:u32  offset:u64  nblocks:u32
//!   META                                   (body empty)
//!   STATS                                  (body empty)
//!   SHUTDOWN                               (body empty)
//!   METRICS                                (body empty)
//!   DUMP                                   (body empty)
//! response := len:u32  status:u8  payload
//!   READ    OK → payload = nblocks × block_bytes of file data
//!   META    OK → payload = the disk directory's meta.txt (UTF-8)
//!   STATS   OK → payload = a JSON stats snapshot (UTF-8)
//!   METRICS OK → payload = Prometheus text exposition (UTF-8)
//!   DUMP    OK → payload = the flight recorder as JSONL (UTF-8)
//!   errors     → payload = a one-line diagnostic (UTF-8)
//! ```

use std::io::{self, Read, Write};

/// Liveness probe; empty OK response.
pub const OP_PING: u8 = 1;
/// Read `nblocks` blocks of `file` starting at block `offset`.
pub const OP_READ: u8 = 2;
/// Fetch the serialized disk-array metadata.
pub const OP_META: u8 = 3;
/// Fetch a JSON stats snapshot.
pub const OP_STATS: u8 = 4;
/// Ask the server to drain and exit.
pub const OP_SHUTDOWN: u8 = 5;
/// Fetch the live metric registry as Prometheus text exposition.
pub const OP_METRICS: u8 = 6;
/// Fetch the flight recorder's retained events as JSONL.
pub const OP_DUMP: u8 = 7;

/// Request served successfully.
pub const ST_OK: u8 = 0;
/// The frame did not parse (unknown op, bad length).
pub const ST_BAD_REQUEST: u8 = 1;
/// A READ named a file or range the array does not hold.
pub const ST_RANGE: u8 = 2;
/// The server is draining; no further requests will be served.
pub const ST_SHUTTING_DOWN: u8 = 3;
/// The server failed internally (e.g. an image read error).
pub const ST_INTERNAL: u8 = 4;
/// The connection limit was reached; retry later.
pub const ST_BUSY: u8 = 5;

/// Upper bound on a request frame (op + largest fixed body).
pub const MAX_REQUEST_FRAME: u32 = 64;
/// Upper bound a client accepts for a response frame (16 MiB covers
/// the largest permitted READ plus any stats payload).
pub const MAX_RESPONSE_FRAME: u32 = 16 * 1024 * 1024;
/// Largest single READ in blocks (4 MiB of 4-KByte blocks).
pub const MAX_READ_BLOCKS: u32 = 1024;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read a block range of one file.
    Read {
        /// File index in the layout.
        file: u32,
        /// First block, as an offset within the file.
        offset: u64,
        /// Blocks to read (1..=[`MAX_READ_BLOCKS`]).
        nblocks: u32,
    },
    /// Fetch the array metadata.
    Meta,
    /// Fetch a stats snapshot.
    Stats,
    /// Drain and exit.
    Shutdown,
    /// Fetch the Prometheus text exposition.
    Metrics,
    /// Fetch the flight recorder's retained events as JSONL.
    Dump,
}

/// Why an incoming request frame could not be parsed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The bytes arrived but are not a valid request.
    Malformed(String),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "{e}"),
            FrameError::Malformed(m) => write!(f, "{m}"),
        }
    }
}

/// Serializes one request onto `w` (unbuffered callers should wrap `w`
/// in a `BufWriter` and flush).
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut body = Vec::with_capacity(17);
    match req {
        Request::Ping => body.push(OP_PING),
        Request::Read {
            file,
            offset,
            nblocks,
        } => {
            body.push(OP_READ);
            body.extend_from_slice(&file.to_le_bytes());
            body.extend_from_slice(&offset.to_le_bytes());
            body.extend_from_slice(&nblocks.to_le_bytes());
        }
        Request::Meta => body.push(OP_META),
        Request::Stats => body.push(OP_STATS),
        Request::Shutdown => body.push(OP_SHUTDOWN),
        Request::Metrics => body.push(OP_METRICS),
        Request::Dump => body.push(OP_DUMP),
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Reads one request frame. `Ok(None)` is a clean end of stream (the
/// peer closed between frames); a close mid-frame or a malformed body
/// is an error.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, FrameError> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len4);
    if len == 0 || len > MAX_REQUEST_FRAME {
        return Err(FrameError::Malformed(format!(
            "request frame of {len} bytes (limit {MAX_REQUEST_FRAME})"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let op = body[0];
    let args = &body[1..];
    let req = match (op, args.len()) {
        (OP_PING, 0) => Request::Ping,
        (OP_META, 0) => Request::Meta,
        (OP_STATS, 0) => Request::Stats,
        (OP_SHUTDOWN, 0) => Request::Shutdown,
        (OP_METRICS, 0) => Request::Metrics,
        (OP_DUMP, 0) => Request::Dump,
        (OP_READ, 16) => Request::Read {
            file: u32::from_le_bytes(args[0..4].try_into().expect("4-byte slice")),
            offset: u64::from_le_bytes(args[4..12].try_into().expect("8-byte slice")),
            nblocks: u32::from_le_bytes(args[12..16].try_into().expect("4-byte slice")),
        },
        (OP_READ, n) => {
            return Err(FrameError::Malformed(format!(
                "READ body of {n} bytes (want 16)"
            )))
        }
        (op, _) => return Err(FrameError::Malformed(format!("unknown opcode {op}"))),
    };
    Ok(Some(req))
}

/// Serializes one response (status byte + payload) onto `w`.
pub fn write_response<W: Write>(w: &mut W, status: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(1 + payload.len() as u32).to_le_bytes())?;
    w.write_all(&[status])?;
    w.write_all(payload)
}

/// Reads one response frame as `(status, payload)`.
pub fn read_response<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), FrameError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 || len > MAX_RESPONSE_FRAME {
        return Err(FrameError::Malformed(format!(
            "response frame of {len} bytes (limit {MAX_RESPONSE_FRAME})"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let status = body[0];
    body.remove(0);
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Meta,
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::Dump,
            Request::Read {
                file: 7,
                offset: 123_456_789_012,
                nblocks: 32,
            },
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_request(&mut buf, r).unwrap();
        }
        let mut c = Cursor::new(buf);
        for r in &reqs {
            assert_eq!(read_request(&mut c).unwrap(), Some(*r));
        }
        assert_eq!(read_request(&mut c).unwrap(), None); // clean EOF
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, ST_OK, b"hello").unwrap();
        write_response(&mut buf, ST_RANGE, b"").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_response(&mut c).unwrap(), (ST_OK, b"hello".to_vec()));
        assert_eq!(read_response(&mut c).unwrap(), (ST_RANGE, Vec::new()));
    }

    #[test]
    fn oversized_request_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_REQUEST_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 80]);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("frame"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(99);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("opcode"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_read_body_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.push(OP_READ);
        buf.extend_from_slice(&[0u8; 4]);
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("READ body"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&17u32.to_le_bytes());
        buf.push(OP_READ); // body cut short
        match read_request(&mut Cursor::new(buf)) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }
}
