//! forhdc-serve — a live TCP serving front-end for the FOR/HDC stack.
//!
//! The simulator (crates/sim, crates/core) evaluates File-Oriented
//! Read-ahead and Host-guided Device Caching against modeled disks.
//! This crate puts the *same controller stack* in front of real
//! file-backed disk images and serves file reads over TCP, so the
//! policies can be exercised by live concurrent clients:
//!
//! - [`image`] — deterministic disk-image directories (`serve mkdisk`):
//!   one image file per array disk, laid out by the reproduction's own
//!   [`forhdc_layout::LayoutBuilder`], every block's payload a pure
//!   function of `(file, offset)` so any client can verify any byte.
//! - [`protocol`] — the tiny length-prefixed request/response framing.
//! - [`engine`] — per-disk [`forhdc_core::DiskController`]s plus a
//!   page store of resident bytes; cache hits copy from memory, misses
//!   become real (timed) image reads extended by the policy's
//!   read-ahead.
//! - [`metrics`] — the live telemetry surface: the Prometheus-style
//!   family set every layer records into, the crash flight recorder,
//!   and the wall-clock origin (see `forhdc-metrics` and DESIGN.md
//!   §6.8).
//! - [`server`] — thread-per-connection TCP runtime with a small
//!   accept pool, periodic stats, a side HTTP metrics listener, and
//!   drain-clean shutdown.
//! - [`report`] — hand-rolled JSON reporting shared by the final
//!   report, `OP_STATS`, and the periodic stderr lines.
//!
//! The `loadgen` binary is the closed-loop client: a deterministic,
//! seeded Zipf request schedule swept across concurrency levels,
//! reporting RPS and latency percentiles per level.

pub mod engine;
pub mod faults;
pub mod image;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod server;

pub use engine::{DiskSnapshot, Engine, EngineSnapshot, LiveOpts, ReadError};
pub use faults::LiveFaults;
pub use image::{block_payload, create_images, open_dir, rank_to_file, DiskMeta};
pub use metrics::{OpKind, ServeMetrics};
pub use protocol::{ErrorCode, Request, MAX_READ_BLOCKS};
pub use report::{server_report, stats_line, ServeTotals};
pub use server::{run, ServerOpts};
