//! The serving front-end's live telemetry surface (DESIGN.md §6.8).
//!
//! One [`ServeMetrics`] per [`Engine`](crate::engine::Engine) holds
//! every metric family the server exposes — request/connection
//! counters, per-disk media and cache-hit counters, queue-depth and
//! inflight gauges, per-op and per-disk latency histograms — plus the
//! crash [`FlightRecorder`] and the wall-clock origin every flight
//! timestamp and the uptime gauge are measured from.
//!
//! Families split into two disciplines, and each instrument uses
//! exactly one:
//!
//! - *event-sourced*: incremented on the hot path by the code that
//!   observes the event (`add`/`inc`/`record`);
//! - *collector-style*: owned by a structure behind the disk locks
//!   (the controller's extent/HDC counters, the page-store size) and
//!   copied out with `set_total`/`set` whenever the engine snapshots.
//!
//! The registry renders Prometheus text exposition; the histograms
//! share [`forhdc_trace::PowerHistogram`]'s bucket geometry, so a
//! scraped distribution merges losslessly with `loadgen`'s own.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use forhdc_metrics::{AtomicHistogram, Counter, FlightRecorder, Gauge, Registry};

use crate::protocol::ErrorCode;

/// The `code` label value of `forhdc_errors_total` for failures that
/// carry no [`ErrorCode`] (bad frames, range errors, internal errors,
/// busy rejections); the structured codes use [`ErrorCode::label`].
pub const ERROR_OTHER: &str = "other";
/// Index of [`ERROR_OTHER`] in the `errors_total` vector (the
/// structured codes occupy their [`ErrorCode::index`] slots).
pub const ERROR_OTHER_INDEX: usize = ErrorCode::ALL.len();

/// Flight-recorder rings: shards bound lock contention across worker
/// threads, capacity bounds memory per shard.
const FLIGHT_SHARDS: usize = 8;
/// Events retained per shard; total retention is
/// `FLIGHT_SHARDS * FLIGHT_CAPACITY` events, forever.
const FLIGHT_CAPACITY: usize = 512;

/// The protocol operations, as stable metric label values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `PING` liveness probes.
    Ping,
    /// `READ` file reads (the workload).
    Read,
    /// `META` manifest fetches.
    Meta,
    /// `STATS` JSON snapshots.
    Stats,
    /// `METRICS` Prometheus-text scrapes.
    Metrics,
    /// `DUMP` flight-recorder dumps.
    Dump,
    /// `SHUTDOWN` drain requests.
    Shutdown,
    /// `FAULT` admin chaos frames.
    Fault,
}

impl OpKind {
    /// Every operation, in label order.
    pub const ALL: [OpKind; 8] = [
        OpKind::Ping,
        OpKind::Read,
        OpKind::Meta,
        OpKind::Stats,
        OpKind::Metrics,
        OpKind::Dump,
        OpKind::Shutdown,
        OpKind::Fault,
    ];

    /// The `op` label value.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Ping => "ping",
            OpKind::Read => "read",
            OpKind::Meta => "meta",
            OpKind::Stats => "stats",
            OpKind::Metrics => "metrics",
            OpKind::Dump => "dump",
            OpKind::Shutdown => "shutdown",
            OpKind::Fault => "fault",
        }
    }

    /// Index into per-op instrument vectors (the [`OpKind::ALL`]
    /// position).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Every instrument the serving stack records into, the flight
/// recorder, and the request-id/timestamp allocators.
///
/// Fields are instrument handles cloned out of [`ServeMetrics::registry`];
/// per-op vectors index by [`OpKind::index`], per-disk vectors by disk
/// number.
#[derive(Debug)]
pub struct ServeMetrics {
    /// The family registry (renders the exposition text).
    pub registry: Registry,
    /// Recent request-lifecycle events for post-mortems.
    pub flight: FlightRecorder,
    started: Instant,
    next_req: AtomicU64,

    /// Seconds since the server process started serving.
    pub uptime_seconds: Arc<Gauge>,
    /// Connections accepted over the server's lifetime.
    pub connections_total: Arc<Counter>,
    /// Connections currently open.
    pub connections_active: Arc<Gauge>,
    /// Connections refused at the connection limit.
    pub connections_rejected_total: Arc<Counter>,
    /// Operations currently being served.
    pub inflight_ops: Arc<Gauge>,
    /// OK responses, by operation (`op` label).
    pub requests_total: Vec<Arc<Counter>>,
    /// Non-OK responses, by failure code (`code` label): the four
    /// structured [`ErrorCode`]s at their [`ErrorCode::index`] slots,
    /// then [`ERROR_OTHER`] for unstructured failures.
    pub errors_total: Vec<Arc<Counter>>,
    /// Media-read retries issued by the recovery policy.
    pub retries_total: Arc<Counter>,
    /// Requests shed by admission control (inflight or queue limit).
    pub shed_total: Arc<Counter>,
    /// Payload bytes of successful READs.
    pub bytes_served_total: Arc<Counter>,
    /// Wall-clock operation latency, by operation (`op` label).
    pub op_latency_ns: Vec<Arc<AtomicHistogram>>,

    /// Media read operations issued to each disk's image.
    pub disk_media_reads_total: Vec<Arc<Counter>>,
    /// Blocks moved by media reads (demanded + read-ahead).
    pub disk_media_blocks_total: Vec<Arc<Counter>>,
    /// Bytes moved by media reads.
    pub disk_media_bytes_total: Vec<Arc<Counter>>,
    /// Of the media blocks, speculative read-ahead blocks.
    pub disk_read_ahead_blocks_total: Vec<Arc<Counter>>,
    /// Demanded blocks served from the in-memory page store.
    pub disk_store_hits_total: Vec<Arc<Counter>>,
    /// Demanded blocks that had to go to the media.
    pub disk_store_misses_total: Vec<Arc<Counter>>,
    /// Cache hits whose bytes were pruned and re-read (should stay 0).
    pub disk_store_fallbacks_total: Vec<Arc<Counter>>,
    /// Reads served by pinned HDC blocks (collector-style).
    pub disk_hdc_hits_total: Vec<Arc<Counter>>,
    /// Extent-level cache lookups (collector-style).
    pub disk_extent_lookups_total: Vec<Arc<Counter>>,
    /// Extent-level cache hits (collector-style).
    pub disk_extent_hits_total: Vec<Arc<Counter>>,
    /// Blocks pinned in the HDC region (collector-style).
    pub disk_pinned_blocks: Vec<Arc<Gauge>>,
    /// Blocks the page store holds (collector-style).
    pub disk_store_resident_blocks: Vec<Arc<Gauge>>,
    /// Requests waiting on or holding each disk's lock.
    pub disk_queue_depth: Vec<Arc<Gauge>>,
    /// Whether each disk is inside an offline window (1) or serving (0).
    pub disk_offline: Vec<Arc<Gauge>>,
    /// Media service time per disk (wall-clock nanoseconds).
    pub disk_service_ns: Vec<Arc<AtomicHistogram>>,
    /// Mirrored read extents that failed over to the twin after this
    /// member failed (labelled by the *failed* member).
    pub disk_failover_reads_total: Vec<Arc<Counter>>,
    /// Blocks copied twin→target by rebuild streams (all disks).
    pub rebuild_blocks_total: Arc<Counter>,
    /// Rebuild progress per disk in percent (0 idle/complete never run,
    /// 100 = last rebuild finished).
    pub disk_rebuild_progress: Vec<Arc<Gauge>>,
}

impl ServeMetrics {
    /// Registers the full family set for a `disks`-disk array.
    pub fn new(disks: u16) -> ServeMetrics {
        let r = Registry::new();
        let disk_labels: Vec<String> = (0..disks).map(|d| d.to_string()).collect();
        let op_labels: Vec<String> = OpKind::ALL.iter().map(|o| o.label().to_string()).collect();
        let uptime_seconds = r.gauge(
            "forhdc_uptime_seconds",
            "Seconds since the server started serving",
        );
        let connections_total = r.counter(
            "forhdc_connections_total",
            "Connections accepted over the server's lifetime",
        );
        let connections_active = r.gauge("forhdc_connections_active", "Connections currently open");
        let connections_rejected_total = r.counter(
            "forhdc_connections_rejected_total",
            "Connections refused at the connection limit",
        );
        let inflight_ops = r.gauge("forhdc_inflight_ops", "Operations currently being served");
        let requests_total = r.counter_vec(
            "forhdc_requests_total",
            "OK responses by operation",
            "op",
            &op_labels,
        );
        let code_labels: Vec<String> = ErrorCode::ALL
            .iter()
            .map(|c| c.label().to_string())
            .chain(std::iter::once(ERROR_OTHER.to_string()))
            .collect();
        let errors_total = r.counter_vec(
            "forhdc_errors_total",
            "Non-OK responses by failure code",
            "code",
            &code_labels,
        );
        let retries_total = r.counter(
            "forhdc_retries_total",
            "Media-read retries issued by the recovery policy",
        );
        let shed_total = r.counter(
            "forhdc_shed_total",
            "Requests shed by admission control (inflight or queue limit)",
        );
        let bytes_served_total = r.counter(
            "forhdc_bytes_served_total",
            "Payload bytes of successful READs",
        );
        let op_latency_ns = r.histogram_vec(
            "forhdc_op_latency_ns",
            "Wall-clock operation latency in nanoseconds by operation",
            "op",
            &op_labels,
        );
        let disk_media_reads_total = r.counter_vec(
            "forhdc_disk_media_reads_total",
            "Media read operations issued to the disk image",
            "disk",
            &disk_labels,
        );
        let disk_media_blocks_total = r.counter_vec(
            "forhdc_disk_media_blocks_total",
            "Blocks moved by media reads (demanded plus read-ahead)",
            "disk",
            &disk_labels,
        );
        let disk_media_bytes_total = r.counter_vec(
            "forhdc_disk_media_bytes_total",
            "Bytes moved by media reads",
            "disk",
            &disk_labels,
        );
        let disk_read_ahead_blocks_total = r.counter_vec(
            "forhdc_disk_read_ahead_blocks_total",
            "Speculative read-ahead blocks among the media blocks",
            "disk",
            &disk_labels,
        );
        let disk_store_hits_total = r.counter_vec(
            "forhdc_disk_store_hits_total",
            "Demanded blocks served from the in-memory page store",
            "disk",
            &disk_labels,
        );
        let disk_store_misses_total = r.counter_vec(
            "forhdc_disk_store_misses_total",
            "Demanded blocks that went to the media",
            "disk",
            &disk_labels,
        );
        let disk_store_fallbacks_total = r.counter_vec(
            "forhdc_disk_store_fallbacks_total",
            "Cache hits whose bytes were pruned and re-read from the image",
            "disk",
            &disk_labels,
        );
        let disk_hdc_hits_total = r.counter_vec(
            "forhdc_disk_hdc_hits_total",
            "Reads served by pinned HDC blocks",
            "disk",
            &disk_labels,
        );
        let disk_extent_lookups_total = r.counter_vec(
            "forhdc_disk_extent_lookups_total",
            "Extent-level cache lookups",
            "disk",
            &disk_labels,
        );
        let disk_extent_hits_total = r.counter_vec(
            "forhdc_disk_extent_hits_total",
            "Extent-level cache hits (every block resident)",
            "disk",
            &disk_labels,
        );
        let disk_pinned_blocks = r.gauge_vec(
            "forhdc_disk_pinned_blocks",
            "Blocks pinned in the HDC region",
            "disk",
            &disk_labels,
        );
        let disk_store_resident_blocks = r.gauge_vec(
            "forhdc_disk_store_resident_blocks",
            "Blocks the page store currently holds",
            "disk",
            &disk_labels,
        );
        let disk_queue_depth = r.gauge_vec(
            "forhdc_disk_queue_depth",
            "Requests waiting on or holding the disk lock",
            "disk",
            &disk_labels,
        );
        let disk_offline = r.gauge_vec(
            "forhdc_disk_offline",
            "Whether the disk is inside an offline window (1) or serving (0)",
            "disk",
            &disk_labels,
        );
        let disk_service_ns = r.histogram_vec(
            "forhdc_disk_service_ns",
            "Media service time in wall-clock nanoseconds",
            "disk",
            &disk_labels,
        );
        let disk_failover_reads_total = r.counter_vec(
            "forhdc_failover_reads_total",
            "Mirrored reads failed over to the twin after this member failed",
            "disk",
            &disk_labels,
        );
        let rebuild_blocks_total = r.counter(
            "forhdc_rebuild_blocks_total",
            "Blocks copied from the surviving twin by rebuild streams",
        );
        let disk_rebuild_progress = r.gauge_vec(
            "forhdc_rebuild_progress",
            "Rebuild progress in percent (100 = last rebuild finished)",
            "disk",
            &disk_labels,
        );
        ServeMetrics {
            registry: r,
            flight: FlightRecorder::new(FLIGHT_SHARDS, FLIGHT_CAPACITY),
            started: Instant::now(),
            next_req: AtomicU64::new(0),
            uptime_seconds,
            connections_total,
            connections_active,
            connections_rejected_total,
            inflight_ops,
            requests_total,
            errors_total,
            retries_total,
            shed_total,
            bytes_served_total,
            op_latency_ns,
            disk_media_reads_total,
            disk_media_blocks_total,
            disk_media_bytes_total,
            disk_read_ahead_blocks_total,
            disk_store_hits_total,
            disk_store_misses_total,
            disk_store_fallbacks_total,
            disk_hdc_hits_total,
            disk_extent_lookups_total,
            disk_extent_hits_total,
            disk_pinned_blocks,
            disk_store_resident_blocks,
            disk_queue_depth,
            disk_offline,
            disk_service_ns,
            disk_failover_reads_total,
            rebuild_blocks_total,
            disk_rebuild_progress,
        }
    }

    /// The `errors_total` counter for a failure code (`None` =
    /// unstructured, the [`ERROR_OTHER`] slot).
    pub fn error_counter(&self, code: Option<ErrorCode>) -> &Counter {
        let i = code.map_or(ERROR_OTHER_INDEX, ErrorCode::index);
        &self.errors_total[i]
    }

    /// Total non-OK responses across all failure codes.
    pub fn errors_sum(&self) -> u64 {
        self.errors_total.iter().map(|c| c.get()).sum()
    }

    /// Nanoseconds since the server started — the flight recorder's
    /// timestamp origin.
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Allocates the next request id for flight-recorder correlation.
    pub fn next_req_id(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed)
    }

    /// Total OK responses across all operations.
    pub fn requests_ok(&self) -> u64 {
        self.requests_total.iter().map(|c| c.get()).sum()
    }

    /// Refreshes the uptime gauge and renders the exposition text.
    /// Collector-style per-disk families are only as fresh as the last
    /// engine snapshot; callers wanting exact totals snapshot first.
    pub fn render(&self) -> String {
        self.uptime_seconds
            .set(self.started.elapsed().as_secs() as i64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_set_renders_with_labels() {
        let m = ServeMetrics::new(2);
        m.connections_total.inc();
        m.requests_total[OpKind::Read.index()].add(3);
        m.disk_media_reads_total[1].inc();
        m.disk_queue_depth[0].set(4);
        m.op_latency_ns[OpKind::Read.index()].record(1000);
        m.error_counter(Some(ErrorCode::MediaError)).add(2);
        m.error_counter(None).inc();
        m.retries_total.add(5);
        m.shed_total.inc();
        m.disk_offline[1].set(1);
        m.disk_failover_reads_total[0].add(4);
        m.rebuild_blocks_total.add(9);
        m.disk_rebuild_progress[1].set(50);
        let text = m.render();
        for needle in [
            "forhdc_failover_reads_total{disk=\"0\"} 4",
            "forhdc_failover_reads_total{disk=\"1\"} 0",
            "forhdc_rebuild_blocks_total 9",
            "forhdc_rebuild_progress{disk=\"1\"} 50",
            "# TYPE forhdc_uptime_seconds gauge",
            "forhdc_connections_total 1",
            "forhdc_requests_total{op=\"read\"} 3",
            "forhdc_requests_total{op=\"shutdown\"} 0",
            "forhdc_errors_total{code=\"media\"} 2",
            "forhdc_errors_total{code=\"timeout\"} 0",
            "forhdc_errors_total{code=\"other\"} 1",
            "forhdc_retries_total 5",
            "forhdc_shed_total 1",
            "forhdc_disk_offline{disk=\"0\"} 0",
            "forhdc_disk_offline{disk=\"1\"} 1",
            "forhdc_disk_media_reads_total{disk=\"0\"} 0",
            "forhdc_disk_media_reads_total{disk=\"1\"} 1",
            "forhdc_disk_queue_depth{disk=\"0\"} 4",
            "forhdc_op_latency_ns_count{op=\"read\"} 1",
            "forhdc_disk_service_ns_bucket{disk=\"0\",le=\"+Inf\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn op_labels_are_distinct_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, op) in OpKind::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(seen.insert(op.label()));
        }
    }

    #[test]
    fn request_ids_are_unique_and_requests_sum() {
        let m = ServeMetrics::new(1);
        assert_ne!(m.next_req_id(), m.next_req_id());
        m.requests_total[OpKind::Ping.index()].inc();
        m.requests_total[OpKind::Read.index()].add(2);
        assert_eq!(m.requests_ok(), 3);
    }

    #[test]
    fn error_codes_map_to_distinct_counters() {
        let m = ServeMetrics::new(1);
        for code in ErrorCode::ALL {
            m.error_counter(Some(code)).inc();
        }
        m.error_counter(None).add(2);
        for code in ErrorCode::ALL {
            assert_eq!(m.error_counter(Some(code)).get(), 1, "{code}");
        }
        assert_eq!(m.errors_total[ERROR_OTHER_INDEX].get(), 2);
        assert_eq!(m.errors_sum(), 6);
    }
}
