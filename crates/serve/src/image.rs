//! The file-backed virtual disk array: creation (`mkdisk`), metadata,
//! and the deterministic block contents clients can verify.
//!
//! A disk directory holds one image file per physical disk
//! (`disk000.img`, `disk001.img`, …) plus a `meta.txt` manifest. The
//! file layout is a pure function of the manifest (the same
//! [`LayoutBuilder`] construction the simulator uses), so `serve`,
//! `loadgen`, and `mkdisk` all reconstruct an identical
//! [`FileMap`]/striping view from the manifest alone — no layout
//! tables are stored. Every data block's bytes are likewise a pure
//! function of `(file, file offset)`, which lets `loadgen --verify`
//! check payloads end to end without touching the images.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use forhdc_layout::{FileMap, LayoutBuilder};
use forhdc_sim::{DiskId, LogicalBlock, StripingMap};

/// Blocks of zero padding appended past each disk's last allocated
/// block, so a read-ahead run launched from the final file block never
/// reaches past the image (one full segment covers the largest run).
pub const IMAGE_PAD_BLOCKS: u64 = 32;

/// The manifest describing a disk-image directory. Everything the
/// server and the load generator need to agree on lives here.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskMeta {
    /// Block size in bytes (4096, matching the simulator).
    pub block_bytes: u32,
    /// Number of physical disks (image files).
    pub disks: u16,
    /// Striping unit in blocks.
    pub unit_blocks: u32,
    /// Number of files in the layout.
    pub files: u32,
    /// Size of every file, in blocks.
    pub file_blocks: u32,
    /// Layout / popularity seed.
    pub seed: u64,
    /// Per-boundary fragmentation probability of the layout.
    pub fragmentation: f64,
    /// Per-disk image size in blocks (allocated space + padding).
    pub disk_blocks: u64,
    /// RAID1/0 mirroring: adjacent image pairs (`2v`, `2v+1`) hold
    /// identical data and back virtual disk `v`. Absent from
    /// pre-mirror manifests, which parse as unmirrored.
    pub mirrored: bool,
}

impl DiskMeta {
    /// Serializes the manifest as `meta.txt` content. The `mirror` key
    /// is only emitted when set, so unmirrored manifests stay
    /// byte-identical to pre-mirror ones.
    pub fn to_text(&self) -> String {
        let mut text = format!(
            "forhdc-disk-meta v1\n\
             block_bytes {}\n\
             disks {}\n\
             unit_blocks {}\n\
             files {}\n\
             file_blocks {}\n\
             seed {}\n\
             fragmentation {}\n\
             disk_blocks {}\n",
            self.block_bytes,
            self.disks,
            self.unit_blocks,
            self.files,
            self.file_blocks,
            self.seed,
            self.fragmentation,
            self.disk_blocks
        );
        if self.mirrored {
            text.push_str("mirror 1\n");
        }
        text
    }

    /// Parses `meta.txt` content, validating the header and every
    /// field.
    pub fn from_text(text: &str) -> Result<DiskMeta, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("forhdc-disk-meta v1") => {}
            other => return Err(format!("not a forhdc disk manifest (first line {other:?})")),
        }
        let mut fields = std::collections::HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed manifest line '{line}'"))?;
            fields.insert(key.to_string(), value.to_string());
        }
        fn get<T: std::str::FromStr>(
            fields: &std::collections::HashMap<String, String>,
            key: &str,
        ) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            fields
                .get(key)
                .ok_or_else(|| format!("manifest is missing '{key}'"))?
                .parse()
                .map_err(|e| format!("manifest field '{key}': {e}"))
        }
        let meta = DiskMeta {
            block_bytes: get(&fields, "block_bytes")?,
            disks: get(&fields, "disks")?,
            unit_blocks: get(&fields, "unit_blocks")?,
            files: get(&fields, "files")?,
            file_blocks: get(&fields, "file_blocks")?,
            seed: get(&fields, "seed")?,
            fragmentation: get(&fields, "fragmentation")?,
            disk_blocks: get(&fields, "disk_blocks")?,
            mirrored: match fields.get("mirror").map(String::as_str) {
                None | Some("0") => false,
                Some("1") => true,
                Some(other) => return Err(format!("manifest field 'mirror': bad value '{other}'")),
            },
        };
        if meta.block_bytes == 0
            || meta.disks == 0
            || meta.unit_blocks == 0
            || meta.files == 0
            || meta.file_blocks == 0
        {
            return Err("manifest has a zero-sized dimension".into());
        }
        if meta.mirrored && !meta.disks.is_multiple_of(2) {
            return Err(format!(
                "mirroring needs disk pairs, got {} disks",
                meta.disks
            ));
        }
        if !(0.0..=1.0).contains(&meta.fragmentation) {
            return Err(format!(
                "manifest fragmentation {} outside [0, 1]",
                meta.fragmentation
            ));
        }
        Ok(meta)
    }

    /// Rebuilds the (deterministic) file layout the manifest describes.
    pub fn layout(&self) -> FileMap {
        let sizes = vec![self.file_blocks; self.files as usize];
        LayoutBuilder::new()
            .fragmentation(self.fragmentation)
            .align_blocks(self.unit_blocks)
            .seed(self.seed)
            .build(&sizes)
    }

    /// Virtual disks the striping addresses: mirrored pairs count once.
    pub fn virtual_disks(&self) -> u16 {
        if self.mirrored {
            self.disks / 2
        } else {
            self.disks
        }
    }

    /// The physical members backing virtual disk `vd` (one, or the
    /// mirror pair).
    pub fn members(&self, vd: u16) -> std::ops::Range<u16> {
        if self.mirrored {
            2 * vd..2 * vd + 2
        } else {
            vd..vd + 1
        }
    }

    /// The striping map over the manifest's array (virtual disks).
    pub fn striping(&self) -> StripingMap {
        StripingMap::new(self.virtual_disks(), self.unit_blocks)
    }

    /// Path of disk `d`'s image file under `dir`.
    pub fn image_path(dir: &Path, d: u16) -> PathBuf {
        dir.join(format!("disk{d:03}.img"))
    }
}

/// The popularity permutation: rank `r` (0 = hottest) maps to file
/// `rank_to_file(...)[r]`. A pure function of `(files, seed)`, shared
/// by the load generator (to aim its Zipf sampler) and the server's
/// HDC bootstrap (to pin the hottest files) — the live-system analogue
/// of the paper's host-side trace knowledge.
pub fn rank_to_file(files: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..files).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    perm.shuffle(&mut rng);
    perm
}

/// Deterministic contents of one data block: a xorshift64* stream
/// seeded from `(file, file offset)`. Any party holding the manifest
/// can regenerate and verify any block.
pub fn block_payload(file: u32, file_offset: u64, block_bytes: u32) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64
        ^ ((file as u64) << 40)
        ^ file_offset.wrapping_mul(0x2545_F491_4F6C_DD1D);
    if state == 0 {
        state = 1;
    }
    let mut out = Vec::with_capacity(block_bytes as usize);
    while out.len() < block_bytes as usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let bytes = word.to_le_bytes();
        let take = (block_bytes as usize - out.len()).min(8);
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

/// Computes the per-disk image size for a layout: the largest physical
/// block any disk uses, plus [`IMAGE_PAD_BLOCKS`] of padding (every
/// image gets the same size, so the manifest stays one number).
pub fn disk_blocks_for(map: &FileMap, striping: &StripingMap) -> u64 {
    let mut max_phys = 0u64;
    for l in 0..map.total_blocks() {
        let (_, phys) = striping.locate(LogicalBlock::new(l));
        max_phys = max_phys.max(phys.index() + 1);
    }
    max_phys + IMAGE_PAD_BLOCKS
}

/// Creates a disk-image directory: `meta.txt` plus one image per disk,
/// each block filled with its deterministic payload (unallocated and
/// padding blocks are zero). Returns the finished manifest.
pub fn create_images(dir: &Path, meta: &DiskMeta) -> Result<DiskMeta, String> {
    let map = meta.layout();
    let striping = meta.striping();
    let mut meta = meta.clone();
    meta.disk_blocks = disk_blocks_for(&map, &striping);
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let zero = vec![0u8; meta.block_bytes as usize];
    for d in 0..meta.disks {
        // Under mirroring both members of a pair carry the same
        // virtual disk's blocks, so their images come out identical.
        let vd = if meta.mirrored { d / 2 } else { d };
        let path = DiskMeta::image_path(dir, d);
        let file = File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let mut w = BufWriter::new(file);
        for p in 0..meta.disk_blocks {
            let logical = striping.logical_of(DiskId::new(vd), forhdc_sim::PhysBlock::new(p));
            let block = match map.owner(logical) {
                Some(owner) => block_payload(owner.file.index(), owner.offset, meta.block_bytes),
                None => zero.clone(),
            };
            w.write_all(&block)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        w.flush()
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    std::fs::write(dir.join("meta.txt"), meta.to_text())
        .map_err(|e| format!("write {}: {e}", dir.join("meta.txt").display()))?;
    Ok(meta)
}

/// Loads and validates a disk-image directory: the manifest must
/// parse and every image must exist with exactly the manifest's size.
pub fn open_dir(dir: &Path) -> Result<DiskMeta, String> {
    let meta_path = dir.join("meta.txt");
    let mut text = String::new();
    File::open(&meta_path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("open {}: {e}", meta_path.display()))?;
    let meta = DiskMeta::from_text(&text).map_err(|e| format!("{}: {e}", meta_path.display()))?;
    let want = meta.disk_blocks * meta.block_bytes as u64;
    for d in 0..meta.disks {
        let path = DiskMeta::image_path(dir, d);
        let len = std::fs::metadata(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?
            .len();
        if len != want {
            return Err(format!(
                "{}: image is {len} bytes, manifest says {want} — corrupt disk directory",
                path.display()
            ));
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_meta() -> DiskMeta {
        DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 32,
            file_blocks: 4,
            seed: 9,
            fragmentation: 0.0,
            disk_blocks: 0, // filled by create_images
            mirrored: false,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("forhdc_image_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn meta_text_roundtrip() {
        let mut m = small_meta();
        m.disk_blocks = 100;
        assert_eq!(DiskMeta::from_text(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(DiskMeta::from_text("not a manifest").is_err());
        assert!(DiskMeta::from_text("forhdc-disk-meta v1\nblock_bytes x\n").is_err());
        assert!(DiskMeta::from_text("forhdc-disk-meta v1\nblock_bytes 4096\n").is_err());
    }

    #[test]
    fn mirrored_meta_roundtrips_and_old_manifests_parse_unmirrored() {
        let mut m = small_meta();
        m.mirrored = true;
        m.disk_blocks = 64;
        let text = m.to_text();
        assert!(text.contains("mirror 1"));
        assert_eq!(DiskMeta::from_text(&text).unwrap(), m);
        // A pre-mirror manifest (no `mirror` key) parses as unmirrored,
        // and an unmirrored manifest never emits the key.
        m.mirrored = false;
        assert!(!m.to_text().contains("mirror"));
        assert_eq!(DiskMeta::from_text(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn mirrored_meta_rejects_odd_disks() {
        let mut m = small_meta();
        m.mirrored = true;
        m.disks = 3;
        let err = DiskMeta::from_text(&m.to_text()).unwrap_err();
        assert!(err.contains("pairs"), "{err}");
    }

    #[test]
    fn mirrored_images_are_identical_pairs() {
        let dir = tmpdir("mirror");
        let mut m = small_meta();
        m.mirrored = true;
        m.disks = 4;
        let meta = create_images(&dir, &m).unwrap();
        assert_eq!(open_dir(&dir).unwrap(), meta);
        for vd in 0..meta.virtual_disks() {
            let a = std::fs::read(DiskMeta::image_path(&dir, 2 * vd)).unwrap();
            let b = std::fs::read(DiskMeta::image_path(&dir, 2 * vd + 1)).unwrap();
            assert_eq!(a, b, "pair {vd} differs");
            assert!(a.iter().any(|&x| x != 0), "pair {vd} all zero");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        let a = block_payload(1, 2, 4096);
        assert_eq!(a.len(), 4096);
        assert_eq!(a, block_payload(1, 2, 4096));
        assert_ne!(a, block_payload(1, 3, 4096));
        assert_ne!(a, block_payload(2, 2, 4096));
    }

    #[test]
    fn rank_permutation_is_seeded() {
        let p = rank_to_file(100, 5);
        assert_eq!(p, rank_to_file(100, 5));
        assert_ne!(p, rank_to_file(100, 6));
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn create_open_roundtrip_and_contents() {
        let dir = tmpdir("roundtrip");
        let meta = create_images(&dir, &small_meta()).unwrap();
        assert_eq!(open_dir(&dir).unwrap(), meta);

        // Spot-check: block 1 of file 3 is where the layout says, with
        // the deterministic payload.
        let map = meta.layout();
        let striping = meta.striping();
        let logical = map.block_at(forhdc_layout::FileId::new(3), 1).unwrap();
        let (disk, phys) = striping.locate(logical);
        let mut img = File::open(DiskMeta::image_path(&dir, disk.index())).unwrap();
        use std::io::{Seek, SeekFrom};
        img.seek(SeekFrom::Start(phys.index() * meta.block_bytes as u64))
            .unwrap();
        let mut got = vec![0u8; meta.block_bytes as usize];
        img.read_exact(&mut got).unwrap();
        assert_eq!(got, block_payload(3, 1, meta.block_bytes));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_image_is_rejected() {
        let dir = tmpdir("truncated");
        let meta = create_images(&dir, &small_meta()).unwrap();
        let img = DiskMeta::image_path(&dir, 0);
        let f = std::fs::OpenOptions::new().write(true).open(&img).unwrap();
        f.set_len(meta.block_bytes as u64).unwrap();
        let err = open_dir(&dir).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
