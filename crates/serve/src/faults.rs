//! Live fault state for the serving engine: the wall-clock analogue
//! of the simulator's `SeededFaults` (DESIGN.md §6.4), plus the
//! admin-injected faults the `FAULT` protocol frame plants at runtime.
//!
//! Three fault sources compose, all answered against the server's
//! monotonic clock (`ServeMetrics::now_ns`, nanoseconds since start):
//!
//! - **Seeded media errors** — `--faults media=R` reuses the exact
//!   `forhdc_fault::SeededFaults` purity law: whether a block is bad
//!   is a pure function of `(seed, disk, block)`, never of visit
//!   order, so a schedule replays identically across runs and any
//!   client holding the seed can predict the bad set.
//! - **Scheduled offline windows** — `--faults offline=SPEC` windows,
//!   wall-clock twins of the simulator's sim-time windows.
//! - **Admin faults** — planted bad blocks, offline windows, and
//!   media stalls injected into the *running* server by `FAULT`
//!   frames (the chaos harness's scalpel: each probe produces exactly
//!   one failure mode, deterministically).
//!
//! The recovery decisions (retry, back off, give up, time out) live in
//! [`forhdc_fault::WallPolicy`]; this module only answers "is this
//! operation faulted right now?".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use forhdc_fault::{FaultConfig, FaultModel, SeededFaults, WallPolicy};

/// Everything the engine consults on the media path. One per engine;
/// inert (three relaxed loads, no locks) when nothing is configured
/// or planted.
#[derive(Debug)]
pub struct LiveFaults {
    seeded: Option<SeededFaults>,
    policy: WallPolicy,
    seed: u64,
    /// Planted `(disk, block)` bad sectors; consulted only while
    /// `has_planted` is set.
    planted: Mutex<Vec<(u16, u64)>>,
    has_planted: AtomicBool,
    /// Per-disk admin offline deadline (ns since start; 0 = none).
    admin_offline_ns: Vec<AtomicU64>,
    /// Per-disk media stall deadline (ns since start; 0 = none).
    stall_ns: Vec<AtomicU64>,
}

impl LiveFaults {
    /// Builds the state for a `disks`-disk array. `config` carries the
    /// seeded schedule (media rate + offline windows); `None` starts
    /// fault-free (admin frames can still plant faults later).
    pub fn new(disks: u16, config: Option<FaultConfig>, policy: WallPolicy) -> LiveFaults {
        let seed = config.as_ref().map(|c| c.seed).unwrap_or(0);
        LiveFaults {
            seeded: config.map(SeededFaults::new),
            policy,
            seed,
            planted: Mutex::new(Vec::new()),
            has_planted: AtomicBool::new(false),
            admin_offline_ns: (0..disks).map(|_| AtomicU64::new(0)).collect(),
            stall_ns: (0..disks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The recovery policy the engine retries under.
    pub fn policy(&self) -> &WallPolicy {
        &self.policy
    }

    /// The schedule seed (jitter derivation).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any media-error source is live (cheap gate for the
    /// per-block scan on the media path).
    pub fn media_armed(&self) -> bool {
        self.seeded.is_some() || self.has_planted.load(Ordering::Relaxed)
    }

    /// Whether `block` on `disk` is a bad sector (seeded or planted).
    pub fn media_error(&self, disk: u16, block: u64) -> bool {
        if let Some(s) = &self.seeded {
            if s.media_error(disk, block, false) {
                return true;
            }
        }
        self.has_planted.load(Ordering::Relaxed)
            && self
                .planted
                .lock()
                .expect("planted lock poisoned")
                .contains(&(disk, block))
    }

    /// Whether `(disk, block)` was admin-planted specifically. Unlike
    /// seeded schedule errors (bad sectors the cache legitimately
    /// masks), a planted block is bad *by decree from now on* — the
    /// engine fails it even on the cache-hit path so probes stay
    /// deterministic against a warm cache. Inert (one relaxed load)
    /// until the first plant.
    pub fn planted(&self, disk: u16, block: u64) -> bool {
        self.has_planted.load(Ordering::Relaxed)
            && self
                .planted
                .lock()
                .expect("planted lock poisoned")
                .contains(&(disk, block))
    }

    /// Plants a persistent bad block (admin `FAULT` frame).
    pub fn plant(&self, disk: u16, block: u64) {
        let mut p = self.planted.lock().expect("planted lock poisoned");
        if !p.contains(&(disk, block)) {
            p.push((disk, block));
        }
        self.has_planted.store(true, Ordering::Relaxed);
    }

    /// Removes planted bad blocks on `disk` inside `blocks` — the
    /// sector-remap model: a mirrored engine that reconstructed the
    /// range from the twin (failover repair or a rebuild stream) has
    /// mapped the decree-bad sectors to healthy spares. Returns how
    /// many entries were repaired. Seeded schedule errors are a pure
    /// function of `(seed, disk, block)` and stay, by the purity law.
    pub fn unplant_range(&self, disk: u16, blocks: std::ops::Range<u64>) -> u64 {
        if !self.has_planted.load(Ordering::Relaxed) {
            return 0;
        }
        let mut p = self.planted.lock().expect("planted lock poisoned");
        let before = p.len();
        p.retain(|&(d, b)| d != disk || !blocks.contains(&b));
        if p.is_empty() {
            self.has_planted.store(false, Ordering::Relaxed);
        }
        (before - p.len()) as u64
    }

    /// If `disk` is offline at `now_ns` (scheduled window or admin
    /// frame), the instant it comes back.
    pub fn offline_until(&self, disk: u16, now_ns: u64) -> Option<u64> {
        let admin = self
            .admin_offline_ns
            .get(disk as usize)
            .map(|a| a.load(Ordering::Relaxed))
            .filter(|&until| until > now_ns);
        let scheduled = self
            .seeded
            .as_ref()
            .and_then(|s| s.offline_until(disk, now_ns));
        match (admin, scheduled) {
            (Some(a), Some(s)) => Some(a.max(s)),
            (a, s) => a.or(s),
        }
    }

    /// Admin: takes `disk` offline until `until_ns` (0 clears).
    pub fn set_offline(&self, disk: u16, until_ns: u64) {
        if let Some(a) = self.admin_offline_ns.get(disk as usize) {
            a.store(until_ns, Ordering::Relaxed);
        }
    }

    /// If `disk`'s media path is stalled at `now_ns`, the instant the
    /// stall ends.
    pub fn stalled_until(&self, disk: u16, now_ns: u64) -> Option<u64> {
        self.stall_ns
            .get(disk as usize)
            .map(|a| a.load(Ordering::Relaxed))
            .filter(|&until| until > now_ns)
    }

    /// Admin: stalls `disk`'s media path until `until_ns` (0 clears).
    pub fn set_stall(&self, disk: u16, until_ns: u64) {
        if let Some(a) = self.stall_ns.get(disk as usize) {
            a.store(until_ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_fault::OfflineWindow;

    #[test]
    fn inert_without_config() {
        let f = LiveFaults::new(2, None, WallPolicy::default());
        assert!(!f.media_armed());
        assert!(!f.media_error(0, 0));
        assert_eq!(f.offline_until(0, 0), None);
        assert_eq!(f.stalled_until(1, 0), None);
    }

    #[test]
    fn planting_arms_and_persists() {
        let f = LiveFaults::new(2, None, WallPolicy::default());
        f.plant(1, 77);
        f.plant(1, 77); // idempotent
        assert!(f.media_armed());
        assert!(f.media_error(1, 77));
        assert!(!f.media_error(1, 78));
        assert!(!f.media_error(0, 77));
    }

    #[test]
    fn unplanting_repairs_only_the_range_on_the_disk() {
        let f = LiveFaults::new(2, None, WallPolicy::default());
        f.plant(0, 5);
        f.plant(0, 9);
        f.plant(1, 5);
        assert_eq!(f.unplant_range(0, 0..8), 1);
        assert!(!f.media_error(0, 5));
        assert!(f.media_error(0, 9));
        assert!(f.media_error(1, 5));
        assert_eq!(f.unplant_range(0, 0..8), 0);
        assert_eq!(f.unplant_range(0, 8..10), 1);
        assert_eq!(f.unplant_range(1, 0..10), 1);
        assert!(!f.media_armed());
    }

    #[test]
    fn seeded_blocks_match_the_pure_function() {
        let cfg = FaultConfig::new(13).with_media_rates(0.05, 0.0);
        let f = LiveFaults::new(1, Some(cfg.clone()), WallPolicy::default());
        let oracle = SeededFaults::new(cfg);
        assert!(f.media_armed());
        assert!((0..2000).all(|b| f.media_error(0, b) == oracle.media_error(0, b, false)));
    }

    #[test]
    fn offline_merges_admin_and_scheduled() {
        let cfg = FaultConfig::new(1).with_offline(OfflineWindow {
            disk: 0,
            start_ns: 100,
            end_ns: 200,
        });
        let f = LiveFaults::new(2, Some(cfg), WallPolicy::default());
        assert_eq!(f.offline_until(0, 150), Some(200));
        assert_eq!(f.offline_until(0, 250), None);
        f.set_offline(0, 500);
        assert_eq!(f.offline_until(0, 150), Some(500));
        assert_eq!(f.offline_until(0, 499), Some(500));
        f.set_offline(0, 0);
        assert_eq!(f.offline_until(0, 250), None);
        // Out-of-range disks never fault.
        assert_eq!(f.offline_until(9, 0), None);
    }

    #[test]
    fn stalls_expire() {
        let f = LiveFaults::new(1, None, WallPolicy::default());
        f.set_stall(0, 1000);
        assert_eq!(f.stalled_until(0, 999), Some(1000));
        assert_eq!(f.stalled_until(0, 1000), None);
    }
}
