//! JSON reporting for the serving front-end.
//!
//! The server prints one JSON document when it exits (and serves the
//! same shape over `OP_STATS` while running). JSON is hand-rolled —
//! the repo carries no serialization dependency — from flat key/value
//! pieces, matching the style of the simulator's report writers.

use forhdc_trace::Quantiles;

use crate::engine::{Engine, EngineSnapshot};
use crate::metrics::ERROR_OTHER;
use crate::protocol::ErrorCode;

/// Running totals the connection handlers maintain; the report
/// combines them with an engine snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeTotals {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered with `ST_OK`.
    pub requests: u64,
    /// Requests refused (any non-OK response).
    pub errors: u64,
    /// Connections turned away at the connection limit.
    pub rejected: u64,
    /// Operations being served at snapshot time.
    pub inflight: u64,
    /// Requests shed by admission control (inflight or queue limit).
    pub shed: u64,
    /// Media-read retries issued by the recovery policy.
    pub retries: u64,
    /// Non-OK responses by failure code: the four [`ErrorCode`]s in
    /// [`ErrorCode::ALL`] order, then unstructured (`other`).
    pub errors_by_code: [u64; 5],
}

impl ServeTotals {
    /// Renders the `"errors_by_code"` JSON object.
    fn errors_by_code_json(&self) -> String {
        let mut s = String::from("{");
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            s.push_str(&format!(
                "\"{}\": {}, ",
                code.label(),
                self.errors_by_code[i]
            ));
        }
        s.push_str(&format!("\"{ERROR_OTHER}\": {}}}", self.errors_by_code[4]));
        s
    }
}

/// Renders the full server report.
///
/// Top-level keys: `"serve"` (configuration), `"totals"`,
/// `"e2e_latency"` (request wall-clock quantiles), `"media"`
/// (merged media-service quantiles + cache totals), `"per_disk"`.
pub fn server_report(
    engine: &Engine,
    snap: &EngineSnapshot,
    totals: &ServeTotals,
    e2e: &Quantiles,
    elapsed_secs: f64,
) -> String {
    let meta = engine.meta();
    let mut s = String::with_capacity(2048);
    s.push_str("{\n  \"serve\": {");
    s.push_str(&format!(
        "\"policy\": \"{}\", \"hdc_blocks\": {}, \"disks\": {}, \"files\": {}, \
         \"file_blocks\": {}, \"block_bytes\": {}, \"unit_blocks\": {}, \"seed\": {}, \
         \"mirrored\": {}",
        engine.policy().label(),
        engine.hdc_blocks(),
        meta.disks,
        meta.files,
        meta.file_blocks,
        meta.block_bytes,
        meta.unit_blocks,
        meta.seed,
        meta.mirrored,
    ));
    s.push_str("},\n  \"totals\": {");
    s.push_str(&format!(
        "\"connections\": {}, \"requests\": {}, \"errors\": {}, \"rejected\": {}, \
         \"inflight\": {}, \"shed\": {}, \"retries\": {}, \"errors_by_code\": {}, \
         \"elapsed_secs\": {:.3}, \"uptime_secs\": {:.3}, \"rps\": {:.1}",
        totals.connections,
        totals.requests,
        totals.errors,
        totals.rejected,
        totals.inflight,
        totals.shed,
        totals.retries,
        totals.errors_by_code_json(),
        elapsed_secs,
        elapsed_secs,
        if elapsed_secs > 0.0 {
            totals.requests as f64 / elapsed_secs
        } else {
            0.0
        },
    ));
    s.push_str("},\n  \"e2e_latency\": ");
    s.push_str(&e2e.to_json());
    s.push_str(",\n  \"media\": {");
    s.push_str(&format!(
        "\"extent_lookups\": {}, \"extent_hits\": {}, \"hit_rate\": {:.4}, \
         \"hdc_read_hits\": {}, \"media_ops\": {}, \"service\": {}",
        snap.extent_lookups(),
        snap.extent_hits(),
        snap.hit_rate(),
        snap.hdc_read_hits(),
        snap.media_ops(),
        snap.service_all.to_json(),
    ));
    s.push_str("},\n  \"per_disk\": [\n");
    for (i, d) in snap.disks.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"disk\": {}, \"extent_lookups\": {}, \"extent_hits\": {}, \
             \"hdc_read_hits\": {}, \"pinned\": {}, \"media_ops\": {}, \
             \"media_blocks\": {}, \"read_ahead_blocks\": {}, \
             \"store_resident\": {}, \"store_fallbacks\": {}, \
             \"store_hits\": {}, \"store_misses\": {}, \
             \"failover_reads\": {}, \"offline\": {}, \"rebuilding\": {}, \
             \"service\": {}}}{}\n",
            d.disk,
            d.extent_lookups,
            d.extent_hits,
            d.hdc_read_hits,
            d.pinned,
            d.media_ops,
            d.media_blocks,
            d.read_ahead_blocks,
            d.store_resident,
            d.store_fallbacks,
            d.store_hits,
            d.store_misses,
            d.failover_reads,
            d.offline,
            d.rebuilding,
            d.service.to_json(),
            if i + 1 < snap.disks.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One periodic stats line for stderr while the server runs, ending
/// with per-disk `store hits/misses` columns.
pub fn stats_line(
    snap: &EngineSnapshot,
    totals: &ServeTotals,
    e2e: &Quantiles,
    elapsed_secs: f64,
) -> String {
    let mut line = format!(
        "serve: {:>8.1}s  conns={} reqs={} errs={} shed={} inflight={} rps={:.0}  hit={:.1}%  \
         p50={:.2}ms p99={:.2}ms  disks=[",
        elapsed_secs,
        totals.connections,
        totals.requests,
        totals.errors,
        totals.shed,
        totals.inflight,
        if elapsed_secs > 0.0 {
            totals.requests as f64 / elapsed_secs
        } else {
            0.0
        },
        snap.hit_rate() * 100.0,
        e2e.p50_ns as f64 / 1e6,
        e2e.p99_ns as f64 / 1e6,
    );
    for (i, d) in snap.disks.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&format!("{}:{}/{}", d.disk, d.store_hits, d.store_misses));
        // Degraded-state markers, appended only when live so healthy
        // lines keep their historical shape.
        if d.failover_reads > 0 {
            line.push_str(&format!("+fo{}", d.failover_reads));
        }
        if d.offline {
            line.push_str("!off");
        }
        if d.rebuilding {
            line.push_str("!rb");
        }
    }
    line.push(']');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{create_images, DiskMeta};
    use forhdc_core::ReadAheadKind;

    #[test]
    fn report_has_all_sections() {
        let dir = std::env::temp_dir().join(format!("forhdc_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 8,
            file_blocks: 4,
            seed: 3,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: false,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open(&dir, meta, ReadAheadKind::For, 16).unwrap();
        let mut out = Vec::new();
        engine.read(0, 0, 4, &mut out).unwrap();
        let snap = engine.snapshot();
        let totals = ServeTotals {
            connections: 1,
            requests: 1,
            errors: 3,
            rejected: 0,
            inflight: 2,
            shed: 1,
            retries: 4,
            errors_by_code: [1, 0, 1, 1, 0],
        };
        let e2e = Quantiles::default();
        let json = server_report(&engine, &snap, &totals, &e2e, 1.5);
        for key in [
            "\"serve\"",
            "\"policy\"",
            "\"totals\"",
            "\"e2e_latency\"",
            "\"media\"",
            "\"per_disk\"",
            "\"p99_ns\"",
            "\"p999_ns\"",
            "\"rps\"",
            "\"inflight\": 2",
            "\"shed\": 1",
            "\"retries\": 4",
            "\"errors_by_code\": {\"media\": 1, \"offline\": 0, \"timeout\": 1, \
             \"overload\": 1, \"other\": 0}",
            "\"uptime_secs\": 1.500",
            "\"store_hits\"",
            "\"store_misses\"",
            "\"mirrored\": false",
            "\"failover_reads\": 0",
            "\"offline\": false",
            "\"rebuilding\": false",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let line = stats_line(&snap, &totals, &e2e, 1.5);
        assert!(line.contains("reqs=1"), "{line}");
        assert!(line.contains("shed=1"), "{line}");
        assert!(line.contains("inflight=2"), "{line}");
        assert!(line.contains("disks=[0:"), "{line}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
