//! The serving engine: per-disk FOR/HDC controllers in front of real
//! image files.
//!
//! Each physical disk pairs the simulator's [`DiskController`] (the
//! read-ahead cache, the HDC region, and the FOR bitmap decision —
//! unchanged from the reproduction) with an open image file and a
//! *page store* holding the bytes of every resident block. The
//! controller decides — cache hit, or a media run extended by
//! read-ahead — and the engine acts: hits copy out of the page store,
//! media runs are real file reads timed into a per-disk service
//! histogram. Every disk sits behind its own mutex (one head per
//! disk), so requests to different disks proceed in parallel while the
//! single-threaded cache structures stay sound.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use forhdc_cache::fx::FxHashMap;
use forhdc_core::controller::ControllerDecision;
use forhdc_core::{DiskController, ReadAheadKind};
use forhdc_fault::{FaultConfig, WallPolicy};
use forhdc_layout::{build_disk_bitmaps, FileId, FileMap};
use forhdc_metrics::Gauge;
use forhdc_sim::{DiskConfig, DiskId, PhysBlock, ReadWrite, StripingMap};
use forhdc_trace::{FaultKind, PowerHistogram, ProbeResult, Quantiles, TraceEvent};

use crate::faults::LiveFaults;
use crate::image::{rank_to_file, DiskMeta};
use crate::metrics::ServeMetrics;
use crate::protocol::MAX_READ_BLOCKS;

/// Slack on top of the controller-resident block count before the
/// page store is pruned back to the resident set.
const STORE_PRUNE_SLACK: usize = 512;

/// Blocks per rebuild copy chunk: large enough to stream, small enough
/// that foreground reads interleave between chunks on the disk locks.
const REBUILD_CHUNK_BLOCKS: u32 = 256;

/// Why a read request was refused.
#[derive(Debug)]
pub enum ReadError {
    /// The request names a file or block range the array does not hold.
    Range(String),
    /// The backing image failed underneath the engine.
    Internal(String),
    /// A persistent media error survived the retry budget
    /// (`ERR MediaError` on the wire).
    Media(String),
    /// The target disk is inside an offline window
    /// (`ERR DiskOffline` on the wire).
    Offline(String),
    /// The request crossed its deadline — directly, or because the
    /// deadline preempted the remaining retries (`ERR Timeout`).
    Timeout(String),
    /// Admission control shed the request at the per-disk queue limit
    /// (`ERR Overload`).
    Overload(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Range(m)
            | ReadError::Internal(m)
            | ReadError::Media(m)
            | ReadError::Offline(m)
            | ReadError::Timeout(m)
            | ReadError::Overload(m) => write!(f, "{m}"),
        }
    }
}

/// Operational knobs for the live serving path, all inert by default:
/// no fault schedule, the default [`WallPolicy`] (which never faults a
/// clean disk), no deadline, no queue bound.
#[derive(Debug, Clone, Default)]
pub struct LiveOpts {
    /// Seeded fault schedule (media error rate, offline windows);
    /// `None` serves fault-free.
    pub faults: Option<FaultConfig>,
    /// Retry/backoff/deadline policy for faulted media reads.
    pub recovery: WallPolicy,
    /// Per-disk queue-depth bound; a request arriving at a disk whose
    /// queue is this deep is shed with `Overload` (0 = unbounded).
    pub max_queue: u32,
    /// Rebuild pacing cap in MB/s: each copy chunk sleeps out the
    /// remainder of its bandwidth budget (0 = unpaced).
    pub rebuild_mbps: u64,
}

/// Decrements a queue-depth gauge when the request leaves the disk,
/// on success and error paths alike.
struct DepthGuard<'a>(&'a Gauge);

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

#[derive(Debug)]
struct DiskState {
    ctl: DiskController,
    file: File,
    store: FxHashMap<u64, Box<[u8]>>,
}

impl DiskState {
    /// Reads `nblocks` blocks at `start` straight from the image.
    fn pread(
        &mut self,
        start: PhysBlock,
        nblocks: u32,
        block_bytes: u32,
    ) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; nblocks as usize * block_bytes as usize];
        self.file
            .seek(SeekFrom::Start(start.index() * block_bytes as u64))?;
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Writes `buf` over the image at `start` (rebuild streams only;
    /// mirrored engines open their images writable for this).
    fn pwrite(&mut self, start: PhysBlock, buf: &[u8], block_bytes: u32) -> std::io::Result<()> {
        self.file
            .seek(SeekFrom::Start(start.index() * block_bytes as u64))?;
        self.file.write_all(buf)
    }

    /// Drops store pages the controller no longer holds, once the
    /// store outgrows the resident set by more than the slack.
    fn prune_store(&mut self) {
        let resident = self.ctl.ra_capacity_blocks() as usize + self.ctl.hdc_resident() as usize;
        if self.store.len() > resident + STORE_PRUNE_SLACK {
            let ctl = &self.ctl;
            self.store.retain(|&k, _| ctl.covers(PhysBlock::new(k), 1));
        }
    }
}

/// A point-in-time view of one disk's serving state.
#[derive(Debug, Clone)]
pub struct DiskSnapshot {
    /// Disk index.
    pub disk: u16,
    /// Extent-level cache lookups.
    pub extent_lookups: u64,
    /// Extent-level cache hits (every block resident).
    pub extent_hits: u64,
    /// Reads served by pinned HDC blocks.
    pub hdc_read_hits: u64,
    /// Blocks currently pinned in the HDC region.
    pub pinned: u32,
    /// Media operations issued to the image file.
    pub media_ops: u64,
    /// Blocks moved by media operations (demanded + read-ahead).
    pub media_blocks: u64,
    /// Of those, speculative read-ahead blocks.
    pub read_ahead_blocks: u64,
    /// Blocks the page store currently holds.
    pub store_resident: usize,
    /// Cache hits whose bytes had to fall back to the image (store
    /// pruned between decision and copy; should stay 0).
    pub store_fallbacks: u64,
    /// Demanded blocks served from the page store.
    pub store_hits: u64,
    /// Demanded blocks that went to the media.
    pub store_misses: u64,
    /// Mirrored reads failed over to the twin after this member failed.
    pub failover_reads: u64,
    /// Whether the disk is inside an offline window right now.
    pub offline: bool,
    /// Whether a rebuild stream is writing this disk right now.
    pub rebuilding: bool,
    /// Media service-time quantiles (wall-clock nanoseconds).
    pub service: Quantiles,
}

/// A point-in-time view of the whole engine.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Per-disk rows, in disk order.
    pub disks: Vec<DiskSnapshot>,
    /// All disks' service histograms merged.
    pub service_all: Quantiles,
}

impl EngineSnapshot {
    /// Total extent lookups across disks.
    pub fn extent_lookups(&self) -> u64 {
        self.disks.iter().map(|d| d.extent_lookups).sum()
    }

    /// Total extent hits across disks.
    pub fn extent_hits(&self) -> u64 {
        self.disks.iter().map(|d| d.extent_hits).sum()
    }

    /// Total media operations across disks.
    pub fn media_ops(&self) -> u64 {
        self.disks.iter().map(|d| d.media_ops).sum()
    }

    /// Total HDC read hits across disks.
    pub fn hdc_read_hits(&self) -> u64 {
        self.disks.iter().map(|d| d.hdc_read_hits).sum()
    }

    /// Total mirrored failover reads across disks.
    pub fn failover_reads(&self) -> u64 {
        self.disks.iter().map(|d| d.failover_reads).sum()
    }

    /// Extent hit rate in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.extent_lookups();
        if lookups == 0 {
            0.0
        } else {
            self.extent_hits() as f64 / lookups as f64
        }
    }
}

/// The shared serving engine (see the module docs).
#[derive(Debug)]
pub struct Engine {
    meta: DiskMeta,
    map: FileMap,
    striping: StripingMap,
    policy: ReadAheadKind,
    hdc_blocks: u32,
    disks: Vec<Mutex<DiskState>>,
    metrics: Arc<ServeMetrics>,
    live: LiveFaults,
    max_queue: u32,
    /// Per-virtual-disk mirrored read-split cursors: each pair's
    /// extents alternate members independently (the live analogue of
    /// the simulator's round-robin read-split policy; a single global
    /// cursor would correlate with the file→disk striping parity and
    /// starve one member).
    rr: Vec<AtomicU64>,
    /// Per-disk rebuild-in-progress flags (idempotence gate).
    rebuilding: Vec<AtomicBool>,
    rebuild_mbps: u64,
}

impl Engine {
    /// Opens a validated disk directory and builds one controller per
    /// disk: the policy's read-ahead cache, `hdc_blocks` of HDC region
    /// (filled with the hottest files' blocks, in popularity order),
    /// and — for FOR — the continuation bitmaps of the layout.
    pub fn open(
        dir: &Path,
        meta: DiskMeta,
        policy: ReadAheadKind,
        hdc_blocks: u32,
    ) -> Result<Engine, String> {
        Engine::open_with(dir, meta, policy, hdc_blocks, LiveOpts::default())
    }

    /// [`Engine::open`] with the operational knobs of the live serving
    /// path: a seeded fault schedule, the recovery policy, and the
    /// per-disk admission bound.
    pub fn open_with(
        dir: &Path,
        meta: DiskMeta,
        policy: ReadAheadKind,
        hdc_blocks: u32,
        opts: LiveOpts,
    ) -> Result<Engine, String> {
        let map = meta.layout();
        let striping = meta.striping();
        let cfg = DiskConfig::default();
        if meta.block_bytes != cfg.block_bytes() {
            return Err(format!(
                "manifest block size {} differs from the controller's {}",
                meta.block_bytes,
                cfg.block_bytes()
            ));
        }
        let bitmaps = if policy.needs_bitmap() {
            Some(build_disk_bitmaps(&map, &striping, meta.disk_blocks))
        } else {
            None
        };
        // Pre-validate the controller-memory split so an oversized
        // --hdc is a clean CLI error, not a panic.
        let bitmap_blocks = match &bitmaps {
            Some(bms) => (bms[0].size_bytes().div_ceil(cfg.block_bytes() as u64)) as u32,
            None => 0,
        };
        if hdc_blocks + bitmap_blocks >= cfg.cache_blocks() {
            return Err(format!(
                "HDC region of {hdc_blocks} blocks plus a {bitmap_blocks}-block bitmap \
                 leaves no read-ahead cache of the {}-block controller memory",
                cfg.cache_blocks()
            ));
        }
        let mut disks = Vec::with_capacity(meta.disks as usize);
        for d in 0..meta.disks {
            // Bitmaps are per *virtual* disk; mirror members share
            // their pair's copy (the images are identical).
            let vd = if meta.mirrored { d / 2 } else { d };
            let bitmap = bitmaps.as_ref().map(|bms| bms[vd as usize].clone());
            let path = DiskMeta::image_path(dir, d);
            // Mirrored images open writable so a rebuild stream can
            // reconstruct a member in place.
            let file = OpenOptions::new()
                .read(true)
                .write(meta.mirrored)
                .open(&path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
            disks.push(Mutex::new(DiskState {
                ctl: DiskController::new(&cfg, policy, hdc_blocks, bitmap),
                file,
                store: FxHashMap::default(),
            }));
        }
        let metrics = Arc::new(ServeMetrics::new(meta.disks));
        let live = LiveFaults::new(meta.disks, opts.faults, opts.recovery);
        let rebuilding = (0..meta.disks).map(|_| AtomicBool::new(false)).collect();
        let rr = (0..meta.virtual_disks())
            .map(|_| AtomicU64::new(0))
            .collect();
        let engine = Engine {
            meta,
            map,
            striping,
            policy,
            hdc_blocks,
            disks,
            metrics,
            live,
            max_queue: opts.max_queue,
            rr,
            rebuilding,
            rebuild_mbps: opts.rebuild_mbps,
        };
        if hdc_blocks > 0 {
            engine.pin_hottest()?;
        }
        Ok(engine)
    }

    /// The array manifest.
    pub fn meta(&self) -> &DiskMeta {
        &self.meta
    }

    /// The active read-ahead discipline.
    pub fn policy(&self) -> ReadAheadKind {
        self.policy
    }

    /// The per-disk HDC region size in blocks.
    pub fn hdc_blocks(&self) -> u32 {
        self.hdc_blocks
    }

    /// The engine's metric registry, flight recorder, and clocks.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The live fault state (schedule + admin-injected faults).
    pub fn live_faults(&self) -> &LiveFaults {
        &self.live
    }

    /// Admin (`FAULT PLANT`): plants a persistent bad block under the
    /// physical location of `(file, offset)`; returns that location so
    /// callers can log or target it.
    pub fn plant_bad_block(&self, file: u32, offset: u64) -> Result<(u16, u64), ReadError> {
        if file >= self.meta.files || offset >= self.meta.file_blocks as u64 {
            return Err(ReadError::Range(format!(
                "cannot plant at file {file} offset {offset}: outside the array"
            )));
        }
        let logical = self
            .map
            .block_at(FileId::new(file), offset)
            .ok_or_else(|| {
                ReadError::Range(format!("file {file} offset {offset} is not mapped"))
            })?;
        let (disk, phys) = self.striping.locate(logical);
        // Striping names a virtual disk; a bad sector lives on one
        // physical member. Plant on the pair's primary — a read that
        // lands there fails over to the twin and repairs the decree.
        let member = if self.meta.mirrored {
            disk.index() * 2
        } else {
            disk.index()
        };
        self.live.plant(member, phys.index());
        Ok((member, phys.index()))
    }

    /// Admin (`FAULT OFFLINE`): takes `disk` offline for `ms`
    /// wall-clock milliseconds from now (`ms = 0` clears the window
    /// and brings it back).
    pub fn set_offline_ms(&self, disk: u16, ms: u64) -> Result<(), ReadError> {
        if disk >= self.meta.disks {
            return Err(ReadError::Range(format!("disk {disk} outside the array")));
        }
        let until = if ms == 0 {
            0
        } else {
            self.metrics.now_ns().saturating_add(ms * 1_000_000)
        };
        self.live.set_offline(disk, until);
        self.metrics.disk_offline[disk as usize].set((ms != 0) as i64);
        Ok(())
    }

    /// Admin (`FAULT STALL`): stalls `disk`'s media path for `ms`
    /// milliseconds — operations wait the window out instead of
    /// failing (`ms = 0` clears).
    pub fn set_stall_ms(&self, disk: u16, ms: u64) -> Result<(), ReadError> {
        if disk >= self.meta.disks {
            return Err(ReadError::Range(format!("disk {disk} outside the array")));
        }
        let until = if ms == 0 {
            0
        } else {
            self.metrics.now_ns().saturating_add(ms * 1_000_000)
        };
        self.live.set_stall(disk, until);
        Ok(())
    }

    /// Admin (`REBUILD`): reconstructs `disk`'s image from its mirror
    /// twin with a background copy stream — chunked, paced to the
    /// engine's `--rebuild-mbps` cap, interleaving with foreground
    /// reads on the per-disk locks. Progress lands in the
    /// `forhdc_rebuild_progress` gauge and every copied block in
    /// `forhdc_rebuild_blocks_total`. Idempotent: returns `Ok(false)`
    /// if a rebuild of that disk is already streaming.
    pub fn rebuild(self: &Arc<Engine>, disk: u16) -> Result<bool, ReadError> {
        if !self.meta.mirrored {
            return Err(ReadError::Range(
                "REBUILD needs a mirrored array (mkdisk --mirror)".into(),
            ));
        }
        if disk >= self.meta.disks {
            return Err(ReadError::Range(format!("disk {disk} outside the array")));
        }
        if self.rebuilding[disk as usize].swap(true, Ordering::SeqCst) {
            return Ok(false);
        }
        self.metrics.disk_rebuild_progress[disk as usize].set(0);
        let engine = Arc::clone(self);
        if let Err(e) = std::thread::Builder::new()
            .name(format!("rebuild-{disk}"))
            .spawn(move || engine.rebuild_stream(disk))
        {
            self.rebuilding[disk as usize].store(false, Ordering::SeqCst);
            return Err(ReadError::Internal(format!("spawning rebuild: {e}")));
        }
        Ok(true)
    }

    /// Whether a rebuild stream is writing `disk` right now.
    pub fn rebuild_active(&self, disk: u16) -> bool {
        self.rebuilding
            .get(disk as usize)
            .is_some_and(|b| b.load(Ordering::SeqCst))
    }

    /// The rebuild thread body: copy the twin's image chunk by chunk
    /// onto the target, lifting admin-planted bad-sector decrees over
    /// each reconstructed range, pacing each chunk to the bandwidth
    /// cap. Runs until the full image is covered; an I/O error aborts
    /// the stream (the flag clears either way so a retry can restart).
    fn rebuild_stream(&self, disk: u16) {
        let bs = self.meta.block_bytes;
        let total = self.meta.disk_blocks;
        let src = (disk ^ 1) as usize;
        let dst = disk as usize;
        let m = &self.metrics;
        let mut done = 0u64;
        while done < total {
            let n = (REBUILD_CHUNK_BLOCKS as u64).min(total - done) as u32;
            let start = PhysBlock::new(done);
            let t0 = Instant::now();
            let copied = {
                let mut s = self.disks[src].lock().expect("disk lock poisoned");
                s.pread(start, n, bs)
            }
            .and_then(|buf| {
                let mut d = self.disks[dst].lock().expect("disk lock poisoned");
                d.pwrite(start, &buf, bs)
            });
            if copied.is_err() {
                m.flight.record(TraceEvent::Fault {
                    t: m.now_ns(),
                    req: u64::MAX,
                    disk,
                    kind: FaultKind::MediaWrite,
                });
                m.error_counter(None).inc();
                break;
            }
            self.live.unplant_range(disk, done..done + n as u64);
            done += n as u64;
            m.rebuild_blocks_total.add(n as u64);
            m.disk_rebuild_progress[dst].set((done * 100 / total.max(1)) as i64);
            // ns per chunk = bytes × 1e9 / (mbps × 1e6); mbps 0 = unpaced.
            if let Some(pace_ns) = (n as u64 * bs as u64 * 1000).checked_div(self.rebuild_mbps) {
                let budget = Duration::from_nanos(pace_ns);
                let spent = t0.elapsed();
                if budget > spent {
                    std::thread::sleep(budget - spent);
                }
            }
        }
        if done >= total {
            m.disk_rebuild_progress[dst].set(100);
        }
        self.rebuilding[dst].store(false, Ordering::SeqCst);
    }

    /// Fills every disk's HDC region with the hottest files' blocks,
    /// walking the popularity permutation (a pure function of the
    /// image seed — the live analogue of the paper's host-side
    /// profile) and loading the pinned bytes from the images.
    fn pin_hottest(&self) -> Result<(), String> {
        let perm = rank_to_file(self.meta.files, self.meta.seed);
        let mut full = vec![false; self.disks.len()];
        let mut full_count = 0usize;
        'files: for &file in &perm {
            for off in 0..self.meta.file_blocks as u64 {
                let Some(logical) = self.map.block_at(FileId::new(file), off) else {
                    continue;
                };
                let (disk, phys) = self.striping.locate(logical);
                // Pin into every member of the (virtual) disk so either
                // replica serves the HDC hit after a failover.
                for member in self.meta.members(disk.index()) {
                    let di = member as usize;
                    if full[di] {
                        continue;
                    }
                    let mut d = self.disks[di].lock().expect("disk lock poisoned");
                    if d.ctl.pin(phys) {
                        let bytes = d
                            .pread(phys, 1, self.meta.block_bytes)
                            .map_err(|e| format!("disk {di}: loading pinned block: {e}"))?;
                        d.store.insert(phys.index(), bytes.into_boxed_slice());
                    } else {
                        full[di] = true;
                        full_count += 1;
                        if full_count == self.disks.len() {
                            break 'files;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Serves one file read: validates the range, walks the file's
    /// extents, splits at striping-unit boundaries, and routes each
    /// piece through its disk's controller. Appends exactly
    /// `nblocks × block_bytes` bytes to `out` on success.
    pub fn read(
        &self,
        file: u32,
        offset: u64,
        nblocks: u32,
        out: &mut Vec<u8>,
    ) -> Result<(), ReadError> {
        if file >= self.meta.files {
            return Err(ReadError::Range(format!(
                "file {file} out of range (array holds {})",
                self.meta.files
            )));
        }
        if nblocks == 0 || nblocks > MAX_READ_BLOCKS {
            return Err(ReadError::Range(format!(
                "nblocks {nblocks} outside 1..={MAX_READ_BLOCKS}"
            )));
        }
        let end = offset
            .checked_add(nblocks as u64)
            .filter(|&e| e <= self.meta.file_blocks as u64)
            .ok_or_else(|| {
                ReadError::Range(format!(
                    "blocks [{offset}, {offset}+{nblocks}) past the {}-block file",
                    self.meta.file_blocks
                ))
            })?;
        out.reserve(nblocks as usize * self.meta.block_bytes as usize);
        let m = &self.metrics;
        let req = m.next_req_id();
        let t0 = m.now_ns();
        m.flight.record(TraceEvent::Issue {
            t: t0,
            req,
            stream: file,
            start: file as u64 * self.meta.file_blocks as u64 + offset,
            nblocks,
            write: false,
        });
        let unit = self.striping.unit_blocks() as u64;
        for e in self.map.extents(FileId::new(file)) {
            let lo = e.file_offset.max(offset);
            let hi = (e.file_offset + e.len as u64).min(end);
            if lo >= hi {
                continue;
            }
            let mut cursor = e.start.offset(lo - e.file_offset);
            let mut left = hi - lo;
            while left > 0 {
                let within = cursor.index() % unit;
                let chunk = (unit - within).min(left) as u32;
                let (disk, phys) = self.striping.locate(cursor);
                self.read_extent(disk, phys, chunk, req, t0, out)?;
                cursor = cursor.offset(chunk as u64);
                left -= chunk as u64;
            }
        }
        let t1 = m.now_ns();
        m.flight.record(TraceEvent::Complete {
            t: t1,
            req,
            response: t1.saturating_sub(t0),
        });
        m.bytes_served_total
            .add(nblocks as u64 * self.meta.block_bytes as u64);
        Ok(())
    }

    /// One striping-unit-aligned piece on one (virtual) disk.
    /// Unmirrored arrays go straight to the physical member; mirrored
    /// arrays split reads over the pair round-robin and fail a piece
    /// over to the twin when the chosen member is offline or its media
    /// is bad — the twin holds an identical image, so the client never
    /// sees the member fault. A media failover also repairs the failed
    /// member's admin-planted sectors from the mirror (the sector-remap
    /// model); seeded schedule errors stay, by the purity law.
    fn read_extent(
        &self,
        disk: DiskId,
        start: PhysBlock,
        nblocks: u32,
        req: u64,
        t0: u64,
        out: &mut Vec<u8>,
    ) -> Result<(), ReadError> {
        if !self.meta.mirrored {
            return self.read_member(disk, start, nblocks, req, t0, out);
        }
        let tick = self.rr[disk.as_usize()].fetch_add(1, Ordering::Relaxed);
        let first = disk.index() * 2 + (tick & 1) as u16;
        let twin = first ^ 1;
        let len0 = out.len();
        match self.read_member(DiskId::new(first), start, nblocks, req, t0, out) {
            Err(e @ (ReadError::Offline(_) | ReadError::Media(_))) => {
                out.truncate(len0);
                self.metrics.disk_failover_reads_total[first as usize].inc();
                self.read_member(DiskId::new(twin), start, nblocks, req, t0, out)?;
                if matches!(e, ReadError::Media(_)) {
                    self.live
                        .unplant_range(first, start.index()..start.index() + nblocks as u64);
                }
                Ok(())
            }
            r => r,
        }
    }

    /// One physically contiguous piece on one physical disk: admission
    /// control and the fault gates run first (queue shed, stall wait,
    /// deadline, offline), then the controller classifies the piece and
    /// the engine copies resident bytes or performs (and times) the
    /// media run the controller asked for — retrying faulted media
    /// under the recovery policy. `t0` is the request's issue instant;
    /// the deadline is measured against it.
    fn read_member(
        &self,
        disk: DiskId,
        start: PhysBlock,
        nblocks: u32,
        req: u64,
        t0: u64,
        out: &mut Vec<u8>,
    ) -> Result<(), ReadError> {
        let bs = self.meta.block_bytes;
        let di = disk.as_usize();
        let m = &self.metrics;
        let policy = self.live.policy();
        // Admission: shed instead of queueing past the bound. The
        // gauge counts holders and waiters of the disk lock, so this
        // is the per-disk analogue of the server's inflight limit.
        if self.max_queue > 0 && m.disk_queue_depth[di].get() >= self.max_queue as i64 {
            m.shed_total.inc();
            return Err(ReadError::Overload(format!(
                "disk {di}: queue depth at the --max-queue bound ({})",
                self.max_queue
            )));
        }
        m.disk_queue_depth[di].inc();
        let _depth = DepthGuard(&m.disk_queue_depth[di]);
        // A stalled disk holds the request (and its admission slots)
        // until the stall window closes — or the deadline, whichever
        // comes first.
        if let Some(until) = self.live.stalled_until(disk.index(), m.now_ns()) {
            let wake = match policy.deadline_ns {
                Some(d) => until.min(t0.saturating_add(d)),
                None => until,
            };
            let now = m.now_ns();
            if wake > now {
                std::thread::sleep(Duration::from_nanos(wake - now));
            }
        }
        if policy.expired(m.now_ns().saturating_sub(t0)) {
            return Err(ReadError::Timeout(format!(
                "request past its {} ms deadline",
                policy.deadline_ns.unwrap_or(0) / 1_000_000
            )));
        }
        // An offline disk fails fast with a retry-after hint; the
        // client owns the retry (it can also steer to a mirror once
        // one exists).
        let now = m.now_ns();
        if let Some(until) = self.live.offline_until(disk.index(), now) {
            m.disk_offline[di].set(1);
            m.flight.record(TraceEvent::Fault {
                t: now,
                req,
                disk: disk.index(),
                kind: FaultKind::Offline,
            });
            return Err(ReadError::Offline(format!(
                "disk {di} offline for another {} ms",
                until.saturating_sub(now).div_ceil(1_000_000)
            )));
        }
        m.disk_offline[di].set(0);
        let mut d = self.disks[di].lock().expect("disk lock poisoned");
        match d.ctl.on_request(ReadWrite::Read, start, nblocks) {
            ControllerDecision::CacheHit => {
                // An admin-planted bad block poisons cached copies too:
                // the FAULT frame declares the sector bad from now on,
                // so a stale resident page must not mask it (seeded
                // schedule errors keep cache-masking semantics).
                if let Some(bad) = (0..nblocks as u64)
                    .map(|i| start.index() + i)
                    .find(|&b| self.live.planted(disk.index(), b))
                {
                    self.recover_bad_block(disk, bad, req, t0)?;
                }
                m.flight.record(TraceEvent::Probe {
                    t: m.now_ns(),
                    req,
                    disk: disk.index(),
                    nblocks,
                    result: ProbeResult::Hit,
                });
                m.disk_store_hits_total[di].add(nblocks as u64);
                for i in 0..nblocks as u64 {
                    let key = start.index() + i;
                    if let Some(page) = d.store.get(&key) {
                        out.extend_from_slice(page);
                    } else {
                        // The presence structures say resident but the
                        // bytes were pruned: repair from the image.
                        m.disk_store_fallbacks_total[di].inc();
                        let bytes = d
                            .pread(PhysBlock::new(key), 1, bs)
                            .map_err(|e| self.fault(disk, req, e))?;
                        out.extend_from_slice(&bytes);
                        d.store.insert(key, bytes.into_boxed_slice());
                    }
                }
            }
            ControllerDecision::Media {
                start: media_start,
                nblocks: media_blocks,
                read_ahead,
            } => {
                m.flight.record(TraceEvent::Probe {
                    t: m.now_ns(),
                    req,
                    disk: disk.index(),
                    nblocks,
                    result: ProbeResult::Miss,
                });
                m.disk_store_misses_total[di].add(nblocks as u64);
                // Clip the run to the image (read-ahead may overshoot
                // the padded tail on non-FOR policies).
                let avail = self.meta.disk_blocks.saturating_sub(media_start.index());
                let mut clipped = media_blocks.min(avail as u32).max(nblocks);
                if self.live.media_armed() {
                    // Degraded read-ahead: a bad sector in the
                    // speculative suffix aborts the extension there —
                    // the demand prefix still completes at full size.
                    for i in nblocks..clipped {
                        if self
                            .live
                            .media_error(disk.index(), media_start.index() + i as u64)
                        {
                            clipped = i;
                            break;
                        }
                    }
                    // A bad sector under the demanded range enters the
                    // bounded retry loop; only a recovered block falls
                    // through to the actual transfer.
                    if let Some(bad) = (0..nblocks as u64)
                        .map(|i| media_start.index() + i)
                        .find(|&b| self.live.media_error(disk.index(), b))
                    {
                        self.recover_bad_block(disk, bad, req, t0)?;
                    }
                }
                let t0 = Instant::now();
                let buf = d
                    .pread(media_start, clipped, bs)
                    .map_err(|e| self.fault(disk, req, e))?;
                let service_ns = t0.elapsed().as_nanos() as u64;
                m.disk_service_ns[di].record(service_ns);
                m.disk_media_reads_total[di].inc();
                m.disk_media_blocks_total[di].add(clipped as u64);
                m.disk_media_bytes_total[di].add(clipped as u64 * bs as u64);
                m.disk_read_ahead_blocks_total[di].add(clipped.saturating_sub(nblocks) as u64);
                m.flight.record(TraceEvent::Media {
                    t: m.now_ns(),
                    req,
                    disk: disk.index(),
                    wait: 0,
                    seek: 0,
                    rotation: 0,
                    transfer: service_ns,
                    overhead: 0,
                    nblocks: clipped,
                    read_ahead: clipped.saturating_sub(nblocks),
                    write: false,
                });
                let _ = read_ahead;
                d.ctl
                    .on_media_complete(ReadWrite::Read, media_start, clipped, nblocks);
                out.extend_from_slice(&buf[..nblocks as usize * bs as usize]);
                for (i, page) in buf.chunks_exact(bs as usize).enumerate() {
                    d.store.insert(media_start.index() + i as u64, page.into());
                }
                d.prune_store();
            }
            ControllerDecision::HdcWriteAbsorbed => {
                unreachable!("the serving protocol only issues reads")
            }
        }
        Ok(())
    }

    /// Runs the recovery policy against a bad sector under the demand
    /// range: bounded retries with seeded-jitter backoff, preempted by
    /// the request deadline. Persistent bad sectors are a pure
    /// function of the schedule, so every re-probe fails and the loop
    /// runs to exactly `max_retries` retries (or the deadline); the
    /// re-probe is still real so a future transient source heals.
    /// Runs while the caller holds the disk lock — the head is busy
    /// retrying, which is exactly the degraded-mode cost model.
    fn recover_bad_block(
        &self,
        disk: DiskId,
        block: u64,
        req: u64,
        t0: u64,
    ) -> Result<(), ReadError> {
        let m = &self.metrics;
        let policy = self.live.policy();
        let seed = self.live.seed();
        let mut attempt = 1u32;
        loop {
            m.flight.record(TraceEvent::Fault {
                t: m.now_ns(),
                req,
                disk: disk.index(),
                kind: FaultKind::MediaRead,
            });
            let elapsed = m.now_ns().saturating_sub(t0);
            let Some(backoff) = policy.next_backoff_ns(seed, req, attempt, elapsed) else {
                return Err(if attempt > policy.max_retries {
                    ReadError::Media(format!(
                        "disk {}: block {block}: persistent media error after {} retries",
                        disk.index(),
                        policy.max_retries
                    ))
                } else {
                    ReadError::Timeout(format!(
                        "disk {}: block {block}: deadline preempted recovery at attempt {attempt}",
                        disk.index()
                    ))
                });
            };
            m.retries_total.inc();
            std::thread::sleep(Duration::from_nanos(backoff));
            attempt += 1;
            if !self.live.media_error(disk.index(), block) {
                return Ok(());
            }
        }
    }

    /// Records a media-read fault into the flight recorder and wraps
    /// the I/O error for the protocol layer.
    fn fault(&self, disk: DiskId, req: u64, e: std::io::Error) -> ReadError {
        self.metrics.flight.record(TraceEvent::Fault {
            t: self.metrics.now_ns(),
            req,
            disk: disk.index(),
            kind: FaultKind::MediaRead,
        });
        internal(disk, e)
    }

    /// Snapshots every disk's counters and histograms (briefly locking
    /// each disk in turn), and syncs the collector-style registry
    /// families — controller-owned hit counters, pinned and resident
    /// block gauges — so a metrics render after a snapshot is exact.
    pub fn snapshot(&self) -> EngineSnapshot {
        let m = &self.metrics;
        let mut disks = Vec::with_capacity(self.disks.len());
        let mut merged = PowerHistogram::new();
        let now = m.now_ns();
        for (i, mx) in self.disks.iter().enumerate() {
            let offline = self.live.offline_until(i as u16, now).is_some();
            m.disk_offline[i].set(offline as i64);
            let d = mx.lock().expect("disk lock poisoned");
            let cache = d.ctl.cache_stats();
            let (extent_lookups, extent_hits) = (cache.extent_lookups, cache.extent_hits);
            let hdc_read_hits = d.ctl.hdc_stats().read_hits;
            let pinned = d.ctl.hdc_resident();
            let store_resident = d.store.len();
            drop(d);
            m.disk_extent_lookups_total[i].set_total(extent_lookups);
            m.disk_extent_hits_total[i].set_total(extent_hits);
            m.disk_hdc_hits_total[i].set_total(hdc_read_hits);
            m.disk_pinned_blocks[i].set(pinned as i64);
            m.disk_store_resident_blocks[i].set(store_resident as i64);
            let service = m.disk_service_ns[i].snapshot();
            merged.merge(&service);
            disks.push(DiskSnapshot {
                disk: i as u16,
                extent_lookups,
                extent_hits,
                hdc_read_hits,
                pinned,
                media_ops: m.disk_media_reads_total[i].get(),
                media_blocks: m.disk_media_blocks_total[i].get(),
                read_ahead_blocks: m.disk_read_ahead_blocks_total[i].get(),
                store_resident,
                store_fallbacks: m.disk_store_fallbacks_total[i].get(),
                store_hits: m.disk_store_hits_total[i].get(),
                store_misses: m.disk_store_misses_total[i].get(),
                failover_reads: m.disk_failover_reads_total[i].get(),
                offline,
                rebuilding: self.rebuild_active(i as u16),
                service: service.quantiles(),
            });
        }
        EngineSnapshot {
            disks,
            service_all: merged.quantiles(),
        }
    }
}

fn internal(disk: DiskId, e: std::io::Error) -> ReadError {
    ReadError::Internal(format!("disk {}: image read failed: {e}", disk.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{block_payload, create_images};
    use std::path::PathBuf;

    fn build(tag: &str, policy: ReadAheadKind, hdc: u32) -> (PathBuf, Engine) {
        build_with(tag, policy, hdc, LiveOpts::default())
    }

    fn build_with(tag: &str, policy: ReadAheadKind, hdc: u32, opts: LiveOpts) -> (PathBuf, Engine) {
        let dir = std::env::temp_dir().join(format!("forhdc_engine_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = crate::image::DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 64,
            file_blocks: 4,
            seed: 11,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: false,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open_with(&dir, meta, policy, hdc, opts).unwrap();
        (dir, engine)
    }

    /// A 4-image mirrored array (2 virtual disks of 2 members each).
    fn build_mirrored(tag: &str, opts: LiveOpts) -> (PathBuf, Engine) {
        let dir =
            std::env::temp_dir().join(format!("forhdc_engine_m_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = crate::image::DiskMeta {
            block_bytes: 4096,
            disks: 4,
            unit_blocks: 4,
            files: 64,
            file_blocks: 4,
            seed: 11,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: true,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open_with(&dir, meta, ReadAheadKind::For, 0, opts).unwrap();
        (dir, engine)
    }

    fn wait_rebuild(engine: &Engine, disk: u16) {
        let t0 = Instant::now();
        while engine.rebuild_active(disk) {
            assert!(t0.elapsed() < Duration::from_secs(30), "rebuild stuck");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// A recovery policy fast enough for tests: sub-millisecond
    /// backoffs, two retries.
    fn fast_policy(deadline_ns: Option<u64>) -> WallPolicy {
        WallPolicy {
            max_retries: 2,
            backoff_base_ns: 200_000,
            backoff_cap_ns: 1_000_000,
            deadline_ns,
        }
    }

    #[test]
    fn whole_file_read_returns_verified_bytes() {
        let (dir, engine) = build("verify", ReadAheadKind::For, 0);
        for file in [0u32, 5, 63] {
            let mut out = Vec::new();
            engine.read(file, 0, 4, &mut out).unwrap();
            assert_eq!(out.len(), 4 * 4096);
            for off in 0..4u64 {
                assert_eq!(
                    &out[off as usize * 4096..(off as usize + 1) * 4096],
                    &block_payload(file, off, 4096)[..],
                    "file {file} block {off}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeat_reads_hit_the_cache() {
        let (dir, engine) = build("hits", ReadAheadKind::For, 0);
        let mut out = Vec::new();
        engine.read(3, 0, 4, &mut out).unwrap();
        let cold = engine.snapshot();
        out.clear();
        engine.read(3, 0, 4, &mut out).unwrap();
        let warm = engine.snapshot();
        assert_eq!(
            warm.media_ops(),
            cold.media_ops(),
            "re-read must not touch media"
        );
        assert!(warm.extent_hits() > cold.extent_hits());
        assert_eq!(out.len(), 4 * 4096);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hdc_pins_hot_files_and_serves_them() {
        let (dir, engine) = build("hdc", ReadAheadKind::For, 64);
        let snap = engine.snapshot();
        let pinned: u32 = snap.disks.iter().map(|d| d.pinned).sum();
        assert!(pinned > 0, "bootstrap must pin blocks");
        // The hottest file is rank 0 of the shared permutation; its
        // read must be an HDC hit with no media op.
        let hot = rank_to_file(64, 11)[0];
        let mut out = Vec::new();
        engine.read(hot, 0, 4, &mut out).unwrap();
        let after = engine.snapshot();
        assert_eq!(after.media_ops(), snap.media_ops());
        assert!(after.hdc_read_hits() > snap.hdc_read_hits());
        assert_eq!(out.len(), 4 * 4096);
        for off in 0..4u64 {
            assert_eq!(
                &out[off as usize * 4096..(off as usize + 1) * 4096],
                &block_payload(hot, off, 4096)[..]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_errors_are_clean() {
        let (dir, engine) = build("range", ReadAheadKind::BlindSegment, 0);
        let mut out = Vec::new();
        assert!(matches!(
            engine.read(64, 0, 1, &mut out),
            Err(ReadError::Range(_))
        ));
        assert!(matches!(
            engine.read(0, 4, 1, &mut out),
            Err(ReadError::Range(_))
        ));
        assert!(matches!(
            engine.read(0, 0, 0, &mut out),
            Err(ReadError::Range(_))
        ));
        assert!(matches!(
            engine.read(0, u64::MAX, 2, &mut out),
            Err(ReadError::Range(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_hdc_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("forhdc_engine_badhdc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = crate::image::DiskMeta {
            block_bytes: 4096,
            disks: 1,
            unit_blocks: 4,
            files: 8,
            file_blocks: 4,
            seed: 1,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: false,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let err = Engine::open(&dir, meta, ReadAheadKind::BlindBlock, 1024).unwrap_err();
        assert!(err.contains("read-ahead cache"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planted_bad_block_fails_after_exact_retries() {
        let opts = LiveOpts {
            recovery: fast_policy(None),
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("plant", ReadAheadKind::For, 0, opts);
        let (disk, phys) = engine.plant_bad_block(9, 1).unwrap();
        assert!(engine.live_faults().media_error(disk, phys));
        let mut out = Vec::new();
        // Cold read over the planted block: the media run crosses it,
        // recovery burns exactly max_retries retries, then fails Media.
        match engine.read(9, 0, 4, &mut out) {
            Err(ReadError::Media(m)) => assert!(m.contains("after 2 retries"), "{m}"),
            other => panic!("want Media, got {other:?}"),
        }
        assert_eq!(engine.metrics().retries_total.get(), 2);
        // Other files still serve.
        out.clear();
        engine.read(10, 0, 4, &mut out).unwrap();
        assert_eq!(out.len(), 4 * 4096);
        // Planting outside the array is a clean range error.
        assert!(matches!(
            engine.plant_bad_block(64, 0),
            Err(ReadError::Range(_))
        ));
        assert!(matches!(
            engine.plant_bad_block(0, 99),
            Err(ReadError::Range(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planting_poisons_an_already_cached_block() {
        let opts = LiveOpts {
            recovery: fast_policy(None),
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("plantwarm", ReadAheadKind::For, 0, opts);
        // Warm the cache over the target extent, then plant under it:
        // the re-read must take the recovery path despite the resident
        // copy, or chaos probes would depend on cache state.
        let mut out = Vec::new();
        engine.read(9, 0, 4, &mut out).unwrap();
        let (disk, phys) = engine.plant_bad_block(9, 1).unwrap();
        assert!(engine.live_faults().planted(disk, phys));
        out.clear();
        match engine.read(9, 0, 4, &mut out) {
            Err(ReadError::Media(m)) => assert!(m.contains("after 2 retries"), "{m}"),
            other => panic!("want Media, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_block_in_the_ra_suffix_clips_not_fails() {
        let opts = LiveOpts {
            recovery: fast_policy(None),
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("raclip", ReadAheadKind::BlindSegment, 0, opts);
        // Demand one block; the blind-segment policy would extend the
        // run. A bad sector right after the demand range must clip the
        // extension, not fail the read.
        let (disk, phys) = engine.plant_bad_block(3, 1).unwrap();
        assert!(engine.live_faults().media_error(disk, phys));
        let mut out = Vec::new();
        engine.read(3, 0, 1, &mut out).unwrap();
        assert_eq!(out.len(), 4096);
        assert_eq!(&out[..], &block_payload(3, 0, 4096)[..]);
        assert_eq!(engine.metrics().retries_total.get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offline_disk_fails_fast_and_recovers() {
        let (dir, engine) = build("offline", ReadAheadKind::For, 0);
        for d in 0..2 {
            engine.set_offline_ms(d, 60_000).unwrap();
        }
        let mut out = Vec::new();
        match engine.read(5, 0, 4, &mut out) {
            Err(ReadError::Offline(m)) => assert!(m.contains("offline"), "{m}"),
            other => panic!("want Offline, got {other:?}"),
        }
        engine.snapshot();
        assert!(engine.metrics().disk_offline.iter().all(|g| g.get() == 1));
        for d in 0..2 {
            engine.set_offline_ms(d, 0).unwrap();
        }
        out.clear();
        engine.read(5, 0, 4, &mut out).unwrap();
        assert_eq!(out.len(), 4 * 4096);
        engine.snapshot();
        assert!(engine.metrics().disk_offline.iter().all(|g| g.get() == 0));
        assert!(matches!(
            engine.set_offline_ms(9, 10),
            Err(ReadError::Range(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_times_out_stalled_reads() {
        let opts = LiveOpts {
            recovery: fast_policy(Some(30_000_000)), // 30 ms deadline
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("stall", ReadAheadKind::For, 0, opts);
        for d in 0..2 {
            engine.set_stall_ms(d, 5_000).unwrap();
        }
        let mut out = Vec::new();
        let t0 = Instant::now();
        match engine.read(2, 0, 4, &mut out) {
            Err(ReadError::Timeout(m)) => assert!(m.contains("deadline"), "{m}"),
            other => panic!("want Timeout, got {other:?}"),
        }
        // The deadline cut the 5 s stall short.
        assert!(t0.elapsed() < Duration::from_secs(2));
        for d in 0..2 {
            engine.set_stall_ms(d, 0).unwrap();
        }
        out.clear();
        engine.read(2, 0, 4, &mut out).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deep_queue_sheds_with_overload() {
        let opts = LiveOpts {
            max_queue: 2,
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("shed", ReadAheadKind::For, 0, opts);
        // Pin both disks' queue gauges at the bound; the next arrival
        // must shed, and clearing the gauges must re-admit.
        for g in &engine.metrics().disk_queue_depth {
            g.set(2);
        }
        let mut out = Vec::new();
        match engine.read(1, 0, 4, &mut out) {
            Err(ReadError::Overload(m)) => assert!(m.contains("max-queue"), "{m}"),
            other => panic!("want Overload, got {other:?}"),
        }
        assert_eq!(engine.metrics().shed_total.get(), 1);
        for g in &engine.metrics().disk_queue_depth {
            g.set(0);
        }
        out.clear();
        engine.read(1, 0, 4, &mut out).unwrap();
        assert_eq!(out.len(), 4 * 4096);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_media_faults_error_some_reads() {
        let opts = LiveOpts {
            faults: Some(FaultConfig::new(21).with_media_rates(0.08, 0.0)),
            recovery: fast_policy(None),
            ..LiveOpts::default()
        };
        let (dir, engine) = build_with("seeded", ReadAheadKind::None, 0, opts);
        let (mut ok, mut media) = (0u32, 0u32);
        let mut out = Vec::new();
        for file in 0..64 {
            out.clear();
            match engine.read(file, 0, 4, &mut out) {
                Ok(()) => ok += 1,
                Err(ReadError::Media(_)) => media += 1,
                other => panic!("{other:?}"),
            }
        }
        // At 8% per block over 256 demanded blocks, both outcomes
        // appear for any seed worth keeping.
        assert!(ok > 0, "no read survived");
        assert!(media > 0, "no read faulted");
        assert_eq!(engine.metrics().retries_total.get(), media as u64 * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_policy_serves_correct_bytes() {
        for (tag, policy) in [
            ("p_segm", ReadAheadKind::BlindSegment),
            ("p_block", ReadAheadKind::BlindBlock),
            ("p_none", ReadAheadKind::None),
            ("p_track", ReadAheadKind::PartialTrack),
            ("p_for", ReadAheadKind::For),
        ] {
            let (dir, engine) = build(tag, policy, 0);
            let mut out = Vec::new();
            engine.read(7, 1, 2, &mut out).unwrap();
            assert_eq!(out.len(), 2 * 4096);
            assert_eq!(&out[..4096], &block_payload(7, 1, 4096)[..]);
            assert_eq!(&out[4096..], &block_payload(7, 2, 4096)[..]);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn mirrored_reads_split_over_both_members_and_verify() {
        let (dir, engine) = build_mirrored("split", LiveOpts::default());
        let mut out = Vec::new();
        for file in 0..64u32 {
            out.clear();
            engine.read(file, 0, 4, &mut out).unwrap();
            assert_eq!(out.len(), 4 * 4096);
            for off in 0..4u64 {
                assert_eq!(
                    &out[off as usize * 4096..(off as usize + 1) * 4096],
                    &block_payload(file, off, 4096)[..],
                    "file {file} block {off}"
                );
            }
        }
        let snap = engine.snapshot();
        // Round-robin: every member of every pair took media traffic,
        // and none of it was failover.
        for d in &snap.disks {
            assert!(d.media_ops > 0, "member {} saw no media traffic", d.disk);
        }
        assert_eq!(snap.failover_reads(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirrored_offline_member_fails_over_invisibly() {
        let (dir, engine) = build_mirrored("failover", LiveOpts::default());
        engine.set_offline_ms(1, 60_000).unwrap();
        let mut out = Vec::new();
        for file in 0..64u32 {
            out.clear();
            engine.read(file, 0, 4, &mut out).unwrap();
            assert_eq!(out.len(), 4 * 4096);
            assert_eq!(&out[..4096], &block_payload(file, 0, 4096)[..]);
        }
        let m = engine.metrics();
        assert!(
            m.disk_failover_reads_total[1].get() > 0,
            "round-robin must have routed reads at the offline member"
        );
        assert_eq!(m.errors_sum(), 0);
        // The survivor never failed over.
        assert_eq!(m.disk_failover_reads_total[0].get(), 0);
        engine.set_offline_ms(1, 0).unwrap();
        out.clear();
        engine.read(0, 0, 4, &mut out).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirrored_media_error_repairs_from_the_twin() {
        let opts = LiveOpts {
            recovery: fast_policy(None),
            ..LiveOpts::default()
        };
        let (dir, engine) = build_mirrored("repair", opts);
        let (member, phys) = engine.plant_bad_block(9, 1).unwrap();
        assert_eq!(member % 2, 0, "plants land on the pair's primary");
        assert!(engine.live_faults().planted(member, phys));
        // Two reads visit both members of the pair (round-robin); the
        // one that lands on the planted member exhausts retries, fails
        // over, and repairs the decree from the mirror.
        let mut out = Vec::new();
        for _ in 0..2 {
            out.clear();
            engine.read(9, 0, 4, &mut out).unwrap();
            assert_eq!(&out[4096..2 * 4096], &block_payload(9, 1, 4096)[..]);
        }
        assert_eq!(
            engine.metrics().disk_failover_reads_total[member as usize].get(),
            1
        );
        assert!(
            !engine.live_faults().planted(member, phys),
            "failover must repair the planted sector from the twin"
        );
        // Repaired: further reads touch the member without faulting.
        let retries = engine.metrics().retries_total.get();
        for _ in 0..2 {
            out.clear();
            engine.read(9, 0, 4, &mut out).unwrap();
        }
        assert_eq!(engine.metrics().retries_total.get(), retries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_restores_a_corrupted_member_bit_exactly() {
        let (dir, engine) = build_mirrored("rebuild", LiveOpts::default());
        let engine = Arc::new(engine);
        let total = engine.meta().disk_blocks;
        // Scribble over member 3's image behind the engine's back —
        // the "replaced disk" whose content is garbage.
        let path3 = DiskMeta::image_path(&dir, 3);
        let junk = vec![0xAAu8; (total * 4096 / 2) as usize];
        {
            let mut f = OpenOptions::new().write(true).open(&path3).unwrap();
            f.seek(SeekFrom::Start(4096)).unwrap();
            f.write_all(&junk).unwrap();
        }
        assert!(engine.rebuild(3).unwrap());
        wait_rebuild(&engine, 3);
        let m = engine.metrics();
        assert_eq!(m.rebuild_blocks_total.get(), total);
        assert_eq!(m.disk_rebuild_progress[3].get(), 100);
        // Bit-exact against the surviving twin (itself pure
        // block_payload output from mkdisk).
        let twin = std::fs::read(DiskMeta::image_path(&dir, 2)).unwrap();
        let rebuilt = std::fs::read(&path3).unwrap();
        assert_eq!(twin.len(), rebuilt.len());
        assert!(twin == rebuilt, "rebuilt image differs from its mirror");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_is_paced_gated_and_mirror_only() {
        // Unmirrored arrays reject REBUILD cleanly.
        let (dir, engine) = build("norebuild", ReadAheadKind::For, 0);
        let engine = Arc::new(engine);
        assert!(matches!(engine.rebuild(0), Err(ReadError::Range(_))));
        let _ = std::fs::remove_dir_all(&dir);
        // A paced rebuild is slow enough to observe in flight: the
        // second trigger reports "already running", and the copy takes
        // at least its bandwidth budget.
        let opts = LiveOpts {
            rebuild_mbps: 4,
            ..LiveOpts::default()
        };
        let (dir, engine) = build_mirrored("paced", opts);
        let engine = Arc::new(engine);
        assert!(matches!(engine.rebuild(9), Err(ReadError::Range(_))));
        let total = engine.meta().disk_blocks;
        let t0 = Instant::now();
        assert!(engine.rebuild(1).unwrap());
        assert!(!engine.rebuild(1).unwrap(), "second trigger must no-op");
        wait_rebuild(&engine, 1);
        let budget = Duration::from_nanos(total * 4096 * 1000 / 4);
        assert!(
            t0.elapsed() >= budget / 2,
            "paced rebuild finished implausibly fast: {:?} for a {budget:?} budget",
            t0.elapsed()
        );
        assert_eq!(engine.metrics().rebuild_blocks_total.get(), total);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
