//! `loadgen` — closed-loop load generator and chaos harness for `serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--levels 1,2,4,8] [--requests N] [--seed S]
//!         [--alpha A] [--retries N] [--backoff-ms MS] [--backoff-cap-ms MS]
//!         [--verify] [--scrape] [--shutdown] [--json FILE]
//!         [--dump-flight FILE]
//!
//! loadgen chaos --dir DIR [--serve-bin PATH] [--conc C] [--requests N]
//!         [--seed S] [--alpha A] [--deadline-ms MS] [--retries N]
//!         [--backoff-ms MS] [--backoff-cap-ms MS] [--kill-at F]
//!         [--tolerance F] [--faults SPEC] [--max-inflight N]
//!         [--max-queue N] [--rebuild-mbps N] [--json FILE]
//! ```
//!
//! Fetches the array metadata over the wire (`META`), then sweeps the
//! given concurrency levels: at each level the request budget is split
//! across that many connections, and every connection runs a closed
//! loop — draw a file from the Zipf popularity distribution, read it
//! whole, wait for the bytes, repeat. The per-connection schedule is a
//! pure function of `(--seed, level, connection)`, so a fixed seed
//! reproduces the identical request sequence; the printed schedule
//! digest (an order-independent XOR of per-connection FNV hashes)
//! makes that checkable from the outside. One table row per level:
//! throughput, per-outcome counts, and p50/p95/p99/p99.9 latency from
//! the shared power-of-two histogram.
//!
//! Every issued request ends in exactly one outcome — `ok` or one of
//! the error buckets (`media`/`offline`/`timeout`/`overload` from the
//! server's structured `ERR` frames, `reset` for connection failures,
//! `other` for anything else) — so `issued == ok + errors` holds by
//! construction and is re-checked as a conservation total in the JSON
//! report. A connection reset mid-sweep is a per-request error, not a
//! process exit: the worker reconnects and keeps going. `--retries`
//! arms client-side retries for the transient buckets (offline,
//! overload, reset, and the draining status) with capped exponential
//! backoff whose jitter is a pure function of
//! `(connection seed, request, attempt)`.
//!
//! `--scrape` additionally fetches the server's `METRICS` exposition
//! before and after each level and takes the per-level delta of the
//! server-side READ latency histogram — same power-of-two bucket
//! geometry, so the distributions merge losslessly with the client's
//! own — adding `srv_p50ms`/`srv_p99ms` columns and a merged
//! server-side summary to the JSON report. `--dump-flight FILE` saves
//! the server's flight-recorder JSONL (a `DUMP` frame) after the
//! sweep.
//!
//! `loadgen chaos` is the fault-tolerance harness: it spawns its own
//! `serve run` on the given image directory, measures a baseline
//! burst, then kills the server with SIGKILL mid-sweep and restarts it
//! on the same port — asserting that workers ride through the outage
//! (resets become per-request errors, reconnects succeed), that the
//! request budget is conserved across the crash, and that
//! post-recovery throughput returns to within `--tolerance` of the
//! baseline. On the cold restarted server it then injects one fault
//! per error code through `FAULT` admin frames (planted bad block,
//! offline window, stalled disk, admission overload) and asserts each
//! surfaces as the matching structured `ERR` code and a non-zero
//! `forhdc_errors_total{code=...}` counter, before draining the
//! server with a clean SHUTDOWN.
//!
//! On a mirrored (RAID1/0) image directory the harness runs one more
//! probe: it takes a single replica offline mid-run, sweeps a full
//! degraded burst asserting that **zero** `DiskOffline` errors reach
//! clients (reads fail over to the surviving twin, counted by
//! `forhdc_failover_reads_total`) and that degraded throughput stays
//! above the `--tolerance` floor, then clears the window — which
//! auto-starts a rebuild — sends an explicit `REBUILD` frame, and
//! waits for `forhdc_rebuild_progress` to reach 100 before the
//! recovery phase. The conservation budget widens to four phases on a
//! mirrored array and must still balance exactly.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use forhdc_fault::WallPolicy;
use forhdc_metrics::{histogram_delta, Scrape};
use forhdc_serve::image::{block_payload, rank_to_file, DiskMeta};
use forhdc_serve::protocol::{
    parse_error, read_response, write_request, ErrorCode, Request, MAX_READ_BLOCKS, ST_ERR, ST_OK,
    ST_SHUTTING_DOWN,
};
use forhdc_trace::{PowerHistogram, Quantiles};
use forhdc_workload::ZipfSampler;

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if matches!(name, "verify" | "shutdown" | "scrape") {
                    flags.insert(name.to_string(), String::from("1"));
                } else {
                    let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.insert(name.to_string(), value);
                }
            } else if a == "chaos" && positional.is_empty() {
                positional.push(a);
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn set(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

const USAGE: &str = "\
loadgen — closed-loop load generator and chaos harness for serve

  loadgen --addr HOST:PORT [--levels 1,2,4,8] [--requests N] [--seed S]
          [--alpha A] [--retries N] [--backoff-ms MS] [--backoff-cap-ms MS]
          [--verify] [--scrape] [--shutdown] [--json FILE]
          [--dump-flight FILE]
  loadgen chaos --dir DIR [--serve-bin PATH] [--conc C] [--requests N]
          [--seed S] [--alpha A] [--deadline-ms MS] [--retries N]
          [--backoff-ms MS] [--backoff-cap-ms MS] [--kill-at F]
          [--tolerance F] [--faults SPEC] [--max-inflight N]
          [--max-queue N] [--rebuild-mbps N] [--json FILE]
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Error-bucket slots. The first four mirror [`ErrorCode::index`];
/// `reset` is any transport failure (refused connect, mid-frame
/// close), `other` any remaining non-OK status.
const EO_MEDIA: usize = 0;
const EO_OFFLINE: usize = 1;
const EO_TIMEOUT: usize = 2;
const EO_OVERLOAD: usize = 3;
const EO_RESET: usize = 4;
const EO_OTHER: usize = 5;
const EO_LABELS: [&str; 6] = ["media", "offline", "timeout", "overload", "reset", "other"];

/// Per-outcome request accounting. Every issued request lands in
/// exactly one bucket, so `issued() == ok + errors()` always.
#[derive(Debug, Default, Clone, Copy)]
struct Outcomes {
    /// Requests answered `ST_OK` with the full payload.
    ok: u64,
    /// Final failures by bucket ([`EO_LABELS`] order).
    errs: [u64; 6],
    /// Client-side retry attempts (not an outcome; a retried request
    /// still ends in exactly one bucket).
    retries: u64,
}

impl Outcomes {
    fn errors(&self) -> u64 {
        self.errs.iter().sum()
    }

    fn issued(&self) -> u64 {
        self.ok + self.errors()
    }

    fn merge(&mut self, o: &Outcomes) {
        self.ok += o.ok;
        for (a, b) in self.errs.iter_mut().zip(o.errs.iter()) {
            *a += b;
        }
        self.retries += o.retries;
    }

    fn errors_json(&self) -> String {
        let mut s = String::from("{");
        for (i, label) in EO_LABELS.iter().enumerate() {
            s.push_str(&format!(
                "\"{label}\": {}{}",
                self.errs[i],
                if i + 1 < EO_LABELS.len() { ", " } else { "" }
            ));
        }
        s.push('}');
        s
    }

    /// One compact human-readable cluster for log lines.
    fn summary(&self) -> String {
        format!(
            "ok={} media={} offl={} tmo={} shed={} rst={} other={} retries={}",
            self.ok,
            self.errs[EO_MEDIA],
            self.errs[EO_OFFLINE],
            self.errs[EO_TIMEOUT],
            self.errs[EO_OVERLOAD],
            self.errs[EO_RESET],
            self.errs[EO_OTHER],
            self.retries,
        )
    }
}

/// One level's measured outcome.
struct LevelResult {
    conc: u32,
    requests: u64,
    secs: f64,
    latency: Quantiles,
    outcomes: Outcomes,
    /// Server-side READ latency over this level (scrape delta), when
    /// `--scrape` is on.
    server: Option<Quantiles>,
    digest: u64,
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    if args.positional.first().map(String::as_str) == Some("chaos") {
        return chaos(&args);
    }
    sweep(&args)
}

/// Builds the client-side retry policy from the shared flag set.
/// `--retries 0` (the default) keeps every failure a final outcome.
fn retry_policy(args: &Args) -> Result<WallPolicy, String> {
    Ok(WallPolicy {
        max_retries: args.flag("retries", 0u32)?,
        backoff_base_ns: args.flag("backoff-ms", 25u64)?.saturating_mul(1_000_000),
        backoff_cap_ns: args
            .flag("backoff-cap-ms", 400u64)?
            .saturating_mul(1_000_000),
        deadline_ns: None,
    })
}

fn sweep(args: &Args) -> Result<(), String> {
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .ok_or("--addr is required")?;
    let levels = parse_levels(&args.flag("levels", String::from("1,2,4,8"))?)?;
    let requests: u64 = args.flag("requests", 2000u64)?;
    let seed: u64 = args.flag("seed", 42u64)?;
    let alpha: f64 = args.flag("alpha", 0.4f64)?;
    let verify = args.set("verify");
    let scrape = args.set("scrape");
    let policy = retry_policy(args)?;

    let meta = fetch_meta(&addr)?;
    if meta.file_blocks > MAX_READ_BLOCKS {
        return Err(format!(
            "files of {} blocks exceed the {MAX_READ_BLOCKS}-block read limit",
            meta.file_blocks
        ));
    }
    let perm = Arc::new(rank_to_file(meta.files, meta.seed));
    let zipf = Arc::new(ZipfSampler::new(meta.files as usize, alpha));

    println!(
        "loadgen: {} files x {} blocks, alpha={alpha}, seed={seed}, {} requests/level",
        meta.files, meta.file_blocks, requests
    );
    print!(
        "{:>5} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "conc",
        "requests",
        "ok",
        "media",
        "offl",
        "tmo",
        "shed",
        "rst",
        "secs",
        "rps",
        "p50ms",
        "p95ms",
        "p99ms",
        "p99.9ms",
        "maxms",
        "meanms"
    );
    if scrape {
        print!(" {:>9} {:>9}", "srv_p50ms", "srv_p99ms");
    }
    println!();
    let mut results = Vec::new();
    let mut digest_all = 0u64;
    let mut totals = Outcomes::default();
    let mut server_merged = PowerHistogram::new();
    for &conc in &levels {
        let before = if scrape {
            Some(scrape_server_read_hist(&addr)?)
        } else {
            None
        };
        let mut r = run_level(
            &addr, &meta, &perm, &zipf, conc, requests, seed, verify, policy,
        )?;
        if let Some(before) = &before {
            let after = scrape_server_read_hist(&addr)?;
            let delta = histogram_delta(&after, before);
            server_merged.merge(&delta);
            r.server = Some(delta.quantiles());
        }
        digest_all ^= r.digest;
        totals.merge(&r.outcomes);
        print!(
            "{:>5} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8.2} {:>9.0} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.conc,
            r.requests,
            r.outcomes.ok,
            r.outcomes.errs[EO_MEDIA],
            r.outcomes.errs[EO_OFFLINE],
            r.outcomes.errs[EO_TIMEOUT],
            r.outcomes.errs[EO_OVERLOAD],
            r.outcomes.errs[EO_RESET],
            r.secs,
            r.requests as f64 / r.secs,
            ms(r.latency.p50_ns),
            ms(r.latency.p95_ns),
            ms(r.latency.p99_ns),
            ms(r.latency.p999_ns),
            ms(r.latency.max_ns),
            ms(r.latency.mean_ns),
        );
        if let Some(srv) = &r.server {
            print!(" {:>9.2} {:>9.2}", ms(srv.p50_ns), ms(srv.p99_ns));
        }
        println!();
        results.push(r);
    }
    println!("schedule digest: 0x{digest_all:016x}");
    println!(
        "conservation: issued={} ok={} errors={} balanced={}",
        totals.issued(),
        totals.ok,
        totals.errors(),
        totals.issued() == totals.ok + totals.errors(),
    );

    if let Some(path) = args.flags.get("json") {
        let server = scrape.then(|| server_merged.quantiles());
        let json = results_json(&results, digest_all, &totals, server.as_ref());
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = args.flags.get("dump-flight") {
        let dump = fetch_frame(&addr, &Request::Dump, "dump")?;
        std::fs::write(path, &dump).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "loadgen: wrote {} bytes of flight-recorder JSONL to {path}",
            dump.len()
        );
    }
    if args.set("shutdown") {
        let mut c = connect(&addr)?;
        write_request(&mut c, &Request::Shutdown).map_err(|e| e.to_string())?;
        c.flush().map_err(|e| e.to_string())?;
        let (st, msg) = read_response(&mut c).map_err(|e| e.to_string())?;
        if st != ST_OK {
            return Err(format!(
                "shutdown refused (status {st}): {}",
                String::from_utf8_lossy(&msg)
            ));
        }
    }
    Ok(())
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn parse_levels(spec: &str) -> Result<Vec<u32>, String> {
    let mut levels = Vec::new();
    for part in spec.split(',') {
        let n: u32 = part
            .trim()
            .parse()
            .map_err(|e| format!("--levels '{part}': {e}"))?;
        if n == 0 {
            return Err("--levels entries must be >= 1".into());
        }
        levels.push(n);
    }
    if levels.is_empty() {
        return Err("--levels must name at least one concurrency level".into());
    }
    Ok(levels)
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    Ok(stream)
}

/// A buffered request/response connection.
struct Conn {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

fn open_conn(addr: &str) -> Result<Conn, String> {
    let stream = connect(addr)?;
    let r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok(Conn {
        r,
        w: BufWriter::new(stream),
    })
}

/// One request/response exchange on a fresh connection, returning the
/// OK payload.
fn fetch_frame(addr: &str, req: &Request, what: &str) -> Result<Vec<u8>, String> {
    let mut c = open_conn(addr)?;
    write_request(&mut c.w, req).map_err(|e| e.to_string())?;
    c.w.flush().map_err(|e| e.to_string())?;
    let (st, body) = read_response(&mut c.r).map_err(|e| format!("{what}: {e}"))?;
    if st != ST_OK {
        return Err(format!(
            "{what} refused (status {st}): {}",
            String::from_utf8_lossy(&body)
        ));
    }
    Ok(body)
}

fn fetch_meta(addr: &str) -> Result<DiskMeta, String> {
    let body = fetch_frame(addr, &Request::Meta, "meta")?;
    let text = std::str::from_utf8(&body).map_err(|_| "meta payload is not UTF-8")?;
    DiskMeta::from_text(text)
}

/// Scrapes the server's `METRICS` exposition and reconstructs the
/// cumulative server-side READ latency histogram.
fn scrape_server_read_hist(addr: &str) -> Result<PowerHistogram, String> {
    let scrape = scrape_metrics(addr)?;
    scrape
        .histogram("forhdc_op_latency_ns", &[("op", "read")])?
        .ok_or_else(|| "server metrics lack forhdc_op_latency_ns{op=\"read\"}".to_string())
}

fn scrape_metrics(addr: &str) -> Result<Scrape, String> {
    let body = fetch_frame(addr, &Request::Metrics, "metrics")?;
    let text = std::str::from_utf8(&body).map_err(|_| "metrics payload is not UTF-8")?;
    Scrape::parse(text)
}

/// A deterministic per-connection seed: splitmix64 over the user seed
/// and the (level, connection) coordinates.
fn conn_seed(seed: u64, level: u32, conn: u32) -> u64 {
    let mut z = seed
        .wrapping_add((level as u64) << 32 | conn as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[allow(clippy::too_many_arguments)]
fn run_level(
    addr: &str,
    meta: &DiskMeta,
    perm: &Arc<Vec<u32>>,
    zipf: &Arc<ZipfSampler>,
    conc: u32,
    requests: u64,
    seed: u64,
    verify: bool,
    policy: WallPolicy,
) -> Result<LevelResult, String> {
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..conc {
        let n = requests / conc as u64 + u64::from((conn as u64) < requests % conc as u64);
        if n == 0 {
            continue;
        }
        let addr = addr.to_string();
        let meta = meta.clone();
        let perm = Arc::clone(perm);
        let zipf = Arc::clone(zipf);
        workers.push(thread::spawn(move || {
            conn_loop(
                &addr,
                &meta,
                &perm,
                &zipf,
                conn_seed(seed, conc, conn),
                n,
                verify,
                policy,
            )
        }));
    }
    let mut hist = PowerHistogram::new();
    let mut digest = 0u64;
    let mut outcomes = Outcomes::default();
    for w in workers {
        let (h, d, o) = w
            .join()
            .map_err(|_| "connection thread panicked".to_string())??;
        hist.merge(&h);
        digest ^= d;
        outcomes.merge(&o);
    }
    Ok(LevelResult {
        conc,
        requests: outcomes.issued(),
        secs: started.elapsed().as_secs_f64(),
        latency: hist.quantiles(),
        outcomes,
        server: None,
        digest,
    })
}

/// What one wire attempt of a request produced.
enum AttemptOutcome {
    /// Full payload received; carries the attempt's wall latency.
    Ok(u64),
    /// The attempt failed into `slot`; `retryable` marks the
    /// transient buckets worth a backoff-and-retry.
    Fail { slot: usize, retryable: bool },
}

fn fail(slot: usize, retryable: bool) -> AttemptOutcome {
    AttemptOutcome::Fail { slot, retryable }
}

/// One wire attempt: ensure a connection, send the READ, classify the
/// response. Transport failures drop the connection (the next attempt
/// reconnects) and land in the `reset` bucket. Only a payload that
/// contradicts the OK status — wrong length, verify mismatch — is a
/// hard error: that is corruption, not component failure.
fn attempt_read(
    conn: &mut Option<Conn>,
    addr: &str,
    file: u32,
    nblocks: u32,
    block_bytes: usize,
    verify: bool,
) -> Result<AttemptOutcome, String> {
    if conn.is_none() {
        match open_conn(addr) {
            Ok(c) => *conn = Some(c),
            Err(_) => return Ok(fail(EO_RESET, true)),
        }
    }
    let c = conn.as_mut().expect("connection just ensured");
    let t0 = Instant::now();
    let sent = write_request(
        &mut c.w,
        &Request::Read {
            file,
            offset: 0,
            nblocks,
        },
    )
    .and_then(|()| c.w.flush());
    if sent.is_err() {
        *conn = None;
        return Ok(fail(EO_RESET, true));
    }
    let (st, body) = match read_response(&mut c.r) {
        Ok(x) => x,
        Err(_) => {
            *conn = None;
            return Ok(fail(EO_RESET, true));
        }
    };
    match st {
        ST_OK => {
            if body.len() != nblocks as usize * block_bytes {
                return Err(format!(
                    "READ file {file}: got {} bytes, want {}",
                    body.len(),
                    nblocks as usize * block_bytes
                ));
            }
            if verify {
                for (i, page) in body.chunks_exact(block_bytes).enumerate() {
                    let want = block_payload(file, i as u64, block_bytes as u32);
                    if page != &want[..] {
                        return Err(format!("READ file {file} block {i}: payload mismatch"));
                    }
                }
            }
            Ok(AttemptOutcome::Ok(t0.elapsed().as_nanos() as u64))
        }
        ST_ERR => {
            let (code, _msg) = parse_error(&body);
            Ok(match code {
                // The server already spent its own retry budget on a
                // persistent media error; more client attempts would
                // hit the same bad sector.
                Some(ErrorCode::MediaError) => fail(EO_MEDIA, false),
                Some(c @ (ErrorCode::DiskOffline | ErrorCode::Timeout | ErrorCode::Overload)) => {
                    fail(c.index(), true)
                }
                None => fail(EO_OTHER, false),
            })
        }
        // Draining: the server refuses further work on this
        // connection, so reconnect on the retry.
        st if st == ST_SHUTTING_DOWN => {
            *conn = None;
            Ok(fail(EO_OTHER, true))
        }
        _ => Ok(fail(EO_OTHER, false)),
    }
}

/// One closed-loop connection: `n` whole-file reads drawn from the
/// Zipf popularity distribution, each retried per the policy before
/// settling into exactly one outcome bucket. Returns the ok-latency
/// histogram, the FNV digest of the request schedule (retries do not
/// change the schedule), and the outcome counts.
#[allow(clippy::too_many_arguments)]
fn conn_loop(
    addr: &str,
    meta: &DiskMeta,
    perm: &[u32],
    zipf: &ZipfSampler,
    rng_seed: u64,
    n: u64,
    verify: bool,
    policy: WallPolicy,
) -> Result<(PowerHistogram, u64, Outcomes), String> {
    let mut conn = open_conn(addr).ok();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut hist = PowerHistogram::new();
    let mut digest = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    let mut outcomes = Outcomes::default();
    let block_bytes = meta.block_bytes as usize;
    for ri in 0..n {
        let file = perm[zipf.sample(&mut rng)];
        let offset = 0u64;
        let nblocks = meta.file_blocks;
        for b in file
            .to_le_bytes()
            .iter()
            .chain(offset.to_le_bytes().iter())
            .chain(nblocks.to_le_bytes().iter())
        {
            digest = (digest ^ *b as u64).wrapping_mul(0x100_0000_01B3);
        }
        let mut attempt = 0u32;
        loop {
            match attempt_read(&mut conn, addr, file, nblocks, block_bytes, verify)? {
                AttemptOutcome::Ok(lat_ns) => {
                    hist.record(lat_ns);
                    outcomes.ok += 1;
                    break;
                }
                AttemptOutcome::Fail { slot, retryable } => {
                    if retryable {
                        if let Some(backoff) = policy.next_backoff_ns(rng_seed, ri, attempt + 1, 0)
                        {
                            outcomes.retries += 1;
                            attempt += 1;
                            thread::sleep(Duration::from_nanos(backoff));
                            continue;
                        }
                    }
                    outcomes.errs[slot] += 1;
                    break;
                }
            }
        }
    }
    Ok((hist, digest, outcomes))
}

fn level_json(r: &LevelResult) -> String {
    let server_part = match &r.server {
        Some(q) => format!(", \"server_latency\": {}", q.to_json()),
        None => String::new(),
    };
    format!(
        "{{\"conc\": {}, \"requests\": {}, \"ok\": {}, \"errors\": {}, \"retries\": {}, \
         \"secs\": {:.3}, \"rps\": {:.1}, \"latency\": {}{}}}",
        r.conc,
        r.requests,
        r.outcomes.ok,
        r.outcomes.errors_json(),
        r.outcomes.retries,
        r.secs,
        r.requests as f64 / r.secs,
        r.latency.to_json(),
        server_part,
    )
}

fn results_json(
    results: &[LevelResult],
    digest: u64,
    totals: &Outcomes,
    server: Option<&Quantiles>,
) -> String {
    let mut s = String::from("{\n  \"levels\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {}{}\n",
            level_json(r),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    if let Some(q) = server {
        s.push_str(&format!("  \"server\": {},\n", q.to_json()));
    }
    s.push_str(&format!(
        "  \"conservation\": {{\"issued\": {}, \"ok\": {}, \"errors\": {}, \"retries\": {}, \
         \"balanced\": {}}},\n",
        totals.issued(),
        totals.ok,
        totals.errors(),
        totals.retries,
        totals.issued() == totals.ok + totals.errors(),
    ));
    s.push_str(&format!("  \"digest\": \"0x{digest:016x}\"\n}}\n"));
    s
}

// ---------------------------------------------------------------------------
// chaos: crash/recovery harness
// ---------------------------------------------------------------------------

/// Configuration for the spawned `serve run` under chaos.
struct ChaosCfg {
    serve_bin: PathBuf,
    dir: String,
    deadline_ms: u64,
    max_inflight: usize,
    max_queue: u32,
    faults: Option<String>,
    rebuild_mbps: u64,
}

/// A spawned server process, SIGKILLed on drop unless already reaped.
struct ServerProc(Option<std::process::Child>);

impl ServerProc {
    fn kill(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    fn wait(&mut self) -> Result<std::process::ExitStatus, String> {
        self.0
            .take()
            .ok_or_else(|| "server already reaped".to_string())?
            .wait()
            .map_err(|e| format!("wait for serve: {e}"))
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_server(cfg: &ChaosCfg, port: u16, port_file: &Path) -> Result<ServerProc, String> {
    let mut cmd = std::process::Command::new(&cfg.serve_bin);
    cmd.arg("run")
        .arg("--dir")
        .arg(&cfg.dir)
        .arg("--port")
        .arg(port.to_string())
        .arg("--port-file")
        .arg(port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit());
    if cfg.deadline_ms > 0 {
        cmd.arg("--deadline-ms").arg(cfg.deadline_ms.to_string());
    }
    if cfg.max_inflight > 0 {
        cmd.arg("--max-inflight").arg(cfg.max_inflight.to_string());
    }
    if cfg.max_queue > 0 {
        cmd.arg("--max-queue").arg(cfg.max_queue.to_string());
    }
    if let Some(spec) = &cfg.faults {
        cmd.arg("--faults").arg(spec);
    }
    if cfg.rebuild_mbps > 0 {
        cmd.arg("--rebuild-mbps").arg(cfg.rebuild_mbps.to_string());
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", cfg.serve_bin.display()))?;
    Ok(ServerProc(Some(child)))
}

fn wait_port_file(path: &Path, timeout: Duration) -> Result<u16, String> {
    let t0 = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return Ok(port);
            }
        }
        if t0.elapsed() > timeout {
            return Err(format!(
                "no port file at {} after {timeout:?}",
                path.display()
            ));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

fn wait_ping(addr: &str, timeout: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if fetch_frame(addr, &Request::Ping, "ping").is_ok() {
            return Ok(());
        }
        if t0.elapsed() > timeout {
            return Err(format!(
                "server on {addr} not answering PING after {timeout:?}"
            ));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Sends one `FAULT` admin frame and asserts the server accepted it.
fn inject(addr: &str, req: &Request, what: &str) -> Result<(), String> {
    fetch_frame(addr, req, what).map(|_| ())
}

/// One READ on a fresh connection, returning the raw status and, for
/// `ERR`, the structured code and diagnostic.
fn probe_read(
    addr: &str,
    file: u32,
    nblocks: u32,
) -> Result<(u8, Option<ErrorCode>, String), String> {
    let mut c = open_conn(addr)?;
    write_request(
        &mut c.w,
        &Request::Read {
            file,
            offset: 0,
            nblocks,
        },
    )
    .map_err(|e| e.to_string())?;
    c.w.flush().map_err(|e| e.to_string())?;
    let (st, body) = read_response(&mut c.r).map_err(|e| format!("probe read: {e}"))?;
    if st == ST_ERR {
        let (code, msg) = parse_error(&body);
        Ok((st, code, msg))
    } else {
        Ok((st, None, String::new()))
    }
}

fn expect_err(
    what: &str,
    got: (u8, Option<ErrorCode>, String),
    want: ErrorCode,
) -> Result<String, String> {
    match got {
        (ST_ERR, Some(code), msg) if code == want => Ok(msg),
        (st, code, msg) => Err(format!(
            "probe {what}: want ERR {want}, got status {st} code {code:?} ({msg})"
        )),
    }
}

fn chaos(args: &Args) -> Result<(), String> {
    let dir = args
        .flags
        .get("dir")
        .cloned()
        .ok_or("--dir is required for chaos")?;
    let serve_bin = match args.flags.get("serve-bin") {
        Some(p) => PathBuf::from(p),
        None => std::env::current_exe()
            .map_err(|e| e.to_string())?
            .parent()
            .ok_or("cannot locate serve next to loadgen")?
            .join("serve"),
    };
    let conc: u32 = args.flag("conc", 8u32)?;
    if conc == 0 {
        return Err("--conc must be >= 1".into());
    }
    let requests: u64 = args.flag("requests", 600u64)?;
    let seed: u64 = args.flag("seed", 42u64)?;
    let alpha: f64 = args.flag("alpha", 0.4f64)?;
    let kill_at: f64 = args.flag("kill-at", 0.4f64)?;
    let tolerance: f64 = args.flag("tolerance", 0.25f64)?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(format!(
            "--tolerance {tolerance}: want a fraction in [0, 1]"
        ));
    }
    let mut policy = retry_policy(args)?;
    if !args.set("retries") {
        // Chaos wants workers to ride through the restart by default.
        policy.max_retries = 6;
    }
    let cfg = ChaosCfg {
        serve_bin,
        dir,
        deadline_ms: args.flag("deadline-ms", 600u64)?,
        max_inflight: args.flag("max-inflight", 0usize)?,
        max_queue: args.flag("max-queue", 0u32)?,
        faults: args.flags.get("faults").cloned(),
        rebuild_mbps: args.flag("rebuild-mbps", 0u64)?,
    };

    let port_file = std::env::temp_dir().join(format!("forhdc_chaos_port_{}", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let mut srv = spawn_server(&cfg, 0, &port_file)?;
    let port = wait_port_file(&port_file, Duration::from_secs(10))?;
    let addr = format!("127.0.0.1:{port}");
    wait_ping(&addr, Duration::from_secs(10))?;
    println!("chaos: life 1 up on {addr}");

    let meta = fetch_meta(&addr)?;
    if meta.file_blocks > MAX_READ_BLOCKS {
        return Err(format!(
            "files of {} blocks exceed the {MAX_READ_BLOCKS}-block read limit",
            meta.file_blocks
        ));
    }
    if meta.files < 4 {
        return Err("chaos needs an array of at least 4 files".into());
    }
    let perm = Arc::new(rank_to_file(meta.files, meta.seed));
    let zipf = Arc::new(ZipfSampler::new(meta.files as usize, alpha));

    // Phase A: baseline burst.
    let a = run_level(
        &addr, &meta, &perm, &zipf, conc, requests, seed, false, policy,
    )?;
    let rps_pre = a.requests as f64 / a.secs;
    println!(
        "chaos: phase A (baseline)   {} in {:.2}s, rps={rps_pre:.0}",
        a.outcomes.summary(),
        a.secs
    );

    // Phase B: same burst, with a SIGKILL + same-port restart landing
    // in the middle. Workers must ride through: resets are per-request
    // errors, reconnects target the restarted server.
    let kill_after = Duration::from_secs_f64((a.secs * kill_at).clamp(0.05, 5.0));
    let b_handle = {
        let addr = addr.clone();
        let meta = meta.clone();
        let perm = Arc::clone(&perm);
        let zipf = Arc::clone(&zipf);
        thread::spawn(move || {
            run_level(
                &addr,
                &meta,
                &perm,
                &zipf,
                conc,
                requests,
                seed + 1,
                false,
                policy,
            )
        })
    };
    thread::sleep(kill_after);
    srv.kill();
    println!(
        "chaos: SIGKILL after {:.2}s, restarting on port {port}",
        kill_after.as_secs_f64()
    );
    let restart_t0 = Instant::now();
    let mut srv = spawn_server(&cfg, port, &port_file)?;
    wait_ping(&addr, Duration::from_secs(15))?;
    let restart_secs = restart_t0.elapsed().as_secs_f64();
    println!("chaos: life 2 up on {addr} after {restart_secs:.2}s");
    let b = b_handle
        .join()
        .map_err(|_| "phase B thread panicked".to_string())??;
    println!(
        "chaos: phase B (kill mid-sweep) {} in {:.2}s",
        b.outcomes.summary(),
        b.secs
    );
    if b.outcomes.issued() != requests {
        return Err(format!(
            "conservation broken across the crash: issued {} of the {requests} budget",
            b.outcomes.issued()
        ));
    }

    // Deterministic per-code probes against the cold restarted server.
    let disks: u16 = meta.disks;
    let mut probed: Vec<&str> = Vec::new();

    // MediaError: plant a persistent bad block under the coldest file.
    // Unmirrored, the server's own retries exhaust against it and the
    // client sees ERR media; mirrored, the read must come back OK —
    // served from the twin, with the planted sector repaired.
    let plant_file = meta.files - 1;
    inject(
        &addr,
        &Request::FaultPlant {
            file: plant_file,
            offset: 0,
        },
        "fault plant",
    )?;
    if meta.mirrored {
        let (st, code, msg) = probe_read(&addr, plant_file, meta.file_blocks)?;
        if st != ST_OK {
            return Err(format!(
                "probe media: want OK via mirror failover, got status {st} code {code:?} ({msg})"
            ));
        }
        println!("chaos: probe media    -> OK (served from the mirror)");
    } else {
        let msg = expect_err(
            "media",
            probe_read(&addr, plant_file, meta.file_blocks)?,
            ErrorCode::MediaError,
        )?;
        println!("chaos: probe media    -> ERR media ({msg})");
        probed.push("media");
    }

    // DiskOffline: take every disk offline, read, bring them back.
    for d in 0..disks {
        inject(
            &addr,
            &Request::FaultOffline {
                disk: d,
                ms: 60_000,
            },
            "fault offline",
        )?;
    }
    let msg = expect_err(
        "offline",
        probe_read(&addr, 0, meta.file_blocks)?,
        ErrorCode::DiskOffline,
    )?;
    for d in 0..disks {
        inject(
            &addr,
            &Request::FaultOffline { disk: d, ms: 0 },
            "fault offline clear",
        )?;
    }
    // Clearing cancels the admin window only; a `--faults` offline
    // schedule may still be open, so wait any residual window out.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (st, code, msg) = probe_read(&addr, 0, meta.file_blocks)?;
        if st == ST_OK {
            break;
        }
        if !(code == Some(ErrorCode::DiskOffline) && Instant::now() < deadline) {
            return Err(format!(
                "probe offline: read after clearing got status {st} code {code:?} ({msg})"
            ));
        }
        thread::sleep(Duration::from_millis(50));
    }
    println!("chaos: probe offline  -> ERR offline ({msg}), cleared -> OK");
    probed.push("offline");

    // Timeout: stall every disk past the deadline; the read waits the
    // deadline out and fails with Timeout.
    if cfg.deadline_ms > 0 {
        let stall = cfg.deadline_ms.saturating_mul(3);
        for d in 0..disks {
            inject(
                &addr,
                &Request::FaultStall { disk: d, ms: stall },
                "fault stall",
            )?;
        }
        let msg = expect_err(
            "timeout",
            probe_read(&addr, 1, meta.file_blocks)?,
            ErrorCode::Timeout,
        )?;
        for d in 0..disks {
            inject(
                &addr,
                &Request::FaultStall { disk: d, ms: 0 },
                "fault stall clear",
            )?;
        }
        println!("chaos: probe timeout  -> ERR timeout ({msg})");
        probed.push("timeout");
    }

    // Overload: stall the disks again, fill every --max-inflight slot
    // with reads that will sit in the stall window, then probe — the
    // probe must shed instantly, not hang.
    if cfg.max_inflight > 0 && cfg.deadline_ms > 0 {
        let stall = cfg.deadline_ms.saturating_mul(2);
        for d in 0..disks {
            inject(
                &addr,
                &Request::FaultStall { disk: d, ms: stall },
                "fault stall",
            )?;
        }
        let holders: Vec<_> = (0..cfg.max_inflight)
            .map(|_| {
                let addr = addr.clone();
                let nblocks = meta.file_blocks;
                thread::spawn(move || probe_read(&addr, 2, nblocks))
            })
            .collect();
        thread::sleep(Duration::from_millis(cfg.deadline_ms / 3));
        let msg = expect_err(
            "overload",
            probe_read(&addr, 3, meta.file_blocks)?,
            ErrorCode::Overload,
        )?;
        for h in holders {
            let _ = h
                .join()
                .map_err(|_| "overload holder panicked".to_string())?;
        }
        for d in 0..disks {
            inject(
                &addr,
                &Request::FaultStall { disk: d, ms: 0 },
                "fault stall clear",
            )?;
        }
        println!("chaos: probe overload -> ERR overload ({msg})");
        probed.push("overload");
    }

    // Mirror probe (RAID1/0 arrays only): one replica of a pair going
    // offline must be invisible to clients — reads fail over to the
    // surviving twin — and clearing the window rebuilds the member
    // from its mirror while the array keeps serving.
    let mut mirror = None;
    if meta.mirrored {
        let member: u16 = 1; // twin of disk 0: every pair keeps a survivor
        let member_label = member.to_string();
        inject(
            &addr,
            &Request::FaultOffline {
                disk: member,
                ms: 600_000,
            },
            "fault offline (mirror)",
        )?;
        let m = run_level(
            &addr,
            &meta,
            &perm,
            &zipf,
            conc,
            requests,
            seed + 3,
            false,
            policy,
        )?;
        let rps_degraded = m.requests as f64 / m.secs;
        println!(
            "chaos: phase M (degraded)   {} in {:.2}s, rps={rps_degraded:.0}",
            m.outcomes.summary(),
            m.secs
        );
        if m.outcomes.errs[EO_OFFLINE] != 0 {
            return Err(format!(
                "{} DiskOffline errors reached clients with replica {member} offline on a \
                 mirrored array",
                m.outcomes.errs[EO_OFFLINE]
            ));
        }
        if rps_degraded < tolerance * rps_pre {
            return Err(format!(
                "degraded throughput {rps_degraded:.0} rps fell below {tolerance} x baseline \
                 {rps_pre:.0} rps"
            ));
        }
        let scrape = scrape_metrics(&addr)?;
        let failovers = scrape
            .counter("forhdc_failover_reads_total", &[("disk", &member_label)])
            .unwrap_or(0);
        if failovers == 0 {
            return Err(format!(
                "forhdc_failover_reads_total{{disk=\"{member}\"}} is zero with replica \
                 {member} offline"
            ));
        }
        // Clearing the window auto-starts the rebuild; the explicit
        // REBUILD frame is then a no-op acknowledgement (or a restart
        // if the copy already finished).
        inject(
            &addr,
            &Request::FaultOffline {
                disk: member,
                ms: 0,
            },
            "fault offline clear (mirror)",
        )?;
        inject(&addr, &Request::Rebuild { disk: member }, "rebuild")?;
        let deadline = Instant::now() + Duration::from_secs(60);
        let rebuilt = loop {
            let s = scrape_metrics(&addr)?;
            let progress = s
                .value("forhdc_rebuild_progress", &[("disk", &member_label)])
                .unwrap_or(-1.0);
            if progress >= 100.0 {
                break s.counter("forhdc_rebuild_blocks_total", &[]).unwrap_or(0);
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "rebuild of disk {member} stuck at {progress}% after 60s"
                ));
            }
            thread::sleep(Duration::from_millis(50));
        };
        if rebuilt == 0 {
            return Err("forhdc_rebuild_blocks_total is zero after a completed rebuild".into());
        }
        println!(
            "chaos: probe mirror   -> replica {member} offline invisibly ({failovers} \
             failovers), rebuilt {rebuilt} blocks"
        );
        mirror = Some((m, failovers, rebuilt, rps_degraded));
    }

    // Phase C: post-recovery burst on fresh connections.
    let c = run_level(
        &addr,
        &meta,
        &perm,
        &zipf,
        conc,
        requests,
        seed + 2,
        false,
        policy,
    )?;
    let rps_post = c.requests as f64 / c.secs;
    println!(
        "chaos: phase C (recovered)  {} in {:.2}s, rps={rps_post:.0}",
        c.outcomes.summary(),
        c.secs
    );
    if c.outcomes.ok == 0 {
        return Err("no request succeeded after the restart — reconnect failed".into());
    }
    if rps_post < tolerance * rps_pre {
        return Err(format!(
            "post-recovery throughput {rps_post:.0} rps fell below {tolerance} x baseline \
             {rps_pre:.0} rps"
        ));
    }

    // The restarted server's counters must show every probed code.
    let scrape = scrape_metrics(&addr)?;
    let mut counter_bits = Vec::new();
    for label in &probed {
        let n = scrape
            .counter("forhdc_errors_total", &[("code", label)])
            .unwrap_or(0);
        if n == 0 {
            return Err(format!(
                "forhdc_errors_total{{code=\"{label}\"}} is zero after the {label} probe"
            ));
        }
        counter_bits.push(format!("{label}={n}"));
    }
    let retries_srv = scrape.counter("forhdc_retries_total", &[]).unwrap_or(0);
    let shed_srv = scrape.counter("forhdc_shed_total", &[]).unwrap_or(0);
    println!(
        "chaos: life 2 metrics errors_total{{{}}} retries_total={retries_srv} shed_total={shed_srv}",
        counter_bits.join(", ")
    );

    // Conservation across every phase (three, or four with the mirror
    // probe's degraded burst): every issued request ended in exactly
    // one of ok / error / shed.
    let mut total = Outcomes::default();
    total.merge(&a.outcomes);
    total.merge(&b.outcomes);
    if let Some((m, ..)) = &mirror {
        total.merge(&m.outcomes);
    }
    total.merge(&c.outcomes);
    let phases = 3 + u64::from(mirror.is_some());
    let balanced =
        total.issued() == total.ok + total.errors() && total.issued() == phases * requests;
    println!(
        "chaos: conservation issued={} ok={} errors={} balanced={balanced}",
        total.issued(),
        total.ok,
        total.errors(),
    );
    if !balanced {
        return Err(format!(
            "conservation broken: issued {} of the {} budget (ok {} + errors {})",
            total.issued(),
            phases * requests,
            total.ok,
            total.errors(),
        ));
    }

    // Clean drain: SHUTDOWN must be acknowledged and the process exit 0.
    fetch_frame(&addr, &Request::Shutdown, "shutdown")?;
    let status = srv.wait()?;
    if !status.success() {
        return Err(format!("server exited {status} after SHUTDOWN"));
    }
    let _ = std::fs::remove_file(&port_file);

    if let Some(path) = args.flags.get("json") {
        let probes_json = probed
            .iter()
            .map(|label| format!("\"{label}\": true"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut phase_rows = vec![level_json(&a), level_json(&b)];
        if let Some((m, ..)) = &mirror {
            phase_rows.push(level_json(m));
        }
        phase_rows.push(level_json(&c));
        let phases_json = phase_rows
            .iter()
            .map(|p| format!("    {p}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let mirror_json = match &mirror {
            Some((_, failovers, rebuilt, rps_degraded)) => format!(
                "  \"mirror\": {{\"failover_reads\": {failovers}, \"rebuilt_blocks\": \
                 {rebuilt}, \"rps_degraded\": {rps_degraded:.1}}},\n"
            ),
            None => String::new(),
        };
        let json = format!(
            "{{\n  \"chaos\": {{\"rps_pre\": {rps_pre:.1}, \"rps_post\": {rps_post:.1}, \
             \"tolerance\": {tolerance}, \"kill_after_secs\": {:.3}, \
             \"restart_secs\": {restart_secs:.3}}},\n  \"phases\": [\n{phases_json}\n  \
             ],\n  \"probes\": {{{probes_json}}},\n{mirror_json}  \"conservation\": \
             {{\"issued\": {}, \
             \"ok\": {}, \"errors\": {}, \"retries\": {}, \"balanced\": {balanced}}},\n  \
             \"pass\": true\n}}\n",
            kill_after.as_secs_f64(),
            total.issued(),
            total.ok,
            total.errors_json(),
            total.retries,
        );
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }

    println!(
        "chaos: PASS rps_pre={rps_pre:.0} rps_post={rps_post:.0} (floor {:.0})",
        tolerance * rps_pre
    );
    Ok(())
}
