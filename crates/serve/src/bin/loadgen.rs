//! `loadgen` — closed-loop load generator for `serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--levels 1,2,4,8] [--requests N] [--seed S]
//!         [--alpha A] [--verify] [--scrape] [--shutdown] [--json FILE]
//!         [--dump-flight FILE]
//! ```
//!
//! Fetches the array metadata over the wire (`META`), then sweeps the
//! given concurrency levels: at each level the request budget is split
//! across that many connections, and every connection runs a closed
//! loop — draw a file from the Zipf popularity distribution, read it
//! whole, wait for the bytes, repeat. The per-connection schedule is a
//! pure function of `(--seed, level, connection)`, so a fixed seed
//! reproduces the identical request sequence; the printed schedule
//! digest (an order-independent XOR of per-connection FNV hashes)
//! makes that checkable from the outside. One table row per level:
//! throughput plus p50/p95/p99/p99.9 latency from the shared
//! power-of-two histogram.
//!
//! `--scrape` additionally fetches the server's `METRICS` exposition
//! before and after each level and takes the per-level delta of the
//! server-side READ latency histogram — same power-of-two bucket
//! geometry, so the distributions merge losslessly with the client's
//! own — adding `srv_p50ms`/`srv_p99ms` columns and a merged
//! server-side summary to the JSON report. `--dump-flight FILE` saves
//! the server's flight-recorder JSONL (a `DUMP` frame) after the
//! sweep.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use forhdc_metrics::{histogram_delta, Scrape};
use forhdc_serve::image::{block_payload, rank_to_file, DiskMeta};
use forhdc_serve::protocol::{read_response, write_request, Request, MAX_READ_BLOCKS, ST_OK};
use forhdc_trace::{PowerHistogram, Quantiles};
use forhdc_workload::ZipfSampler;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if matches!(name, "verify" | "shutdown" | "scrape") {
                    flags.insert(name.to_string(), String::from("1"));
                } else {
                    let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.insert(name.to_string(), value);
                }
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn set(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

const USAGE: &str = "\
loadgen — closed-loop load generator for serve

  loadgen --addr HOST:PORT [--levels 1,2,4,8] [--requests N] [--seed S]
          [--alpha A] [--verify] [--scrape] [--shutdown] [--json FILE]
          [--dump-flight FILE]
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// One level's measured outcome.
struct LevelResult {
    conc: u32,
    requests: u64,
    secs: f64,
    latency: Quantiles,
    /// Server-side READ latency over this level (scrape delta), when
    /// `--scrape` is on.
    server: Option<Quantiles>,
    digest: u64,
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .ok_or("--addr is required")?;
    let levels = parse_levels(&args.flag("levels", String::from("1,2,4,8"))?)?;
    let requests: u64 = args.flag("requests", 2000u64)?;
    let seed: u64 = args.flag("seed", 42u64)?;
    let alpha: f64 = args.flag("alpha", 0.4f64)?;
    let verify = args.set("verify");
    let scrape = args.set("scrape");

    let meta = fetch_meta(&addr)?;
    if meta.file_blocks > MAX_READ_BLOCKS {
        return Err(format!(
            "files of {} blocks exceed the {MAX_READ_BLOCKS}-block read limit",
            meta.file_blocks
        ));
    }
    let perm = Arc::new(rank_to_file(meta.files, meta.seed));
    let zipf = Arc::new(ZipfSampler::new(meta.files as usize, alpha));

    println!(
        "loadgen: {} files x {} blocks, alpha={alpha}, seed={seed}, {} requests/level",
        meta.files, meta.file_blocks, requests
    );
    print!(
        "{:>5} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "conc", "requests", "secs", "rps", "p50ms", "p95ms", "p99ms", "p99.9ms", "maxms", "meanms"
    );
    if scrape {
        print!(" {:>9} {:>9}", "srv_p50ms", "srv_p99ms");
    }
    println!();
    let mut results = Vec::new();
    let mut digest_all = 0u64;
    let mut server_merged = PowerHistogram::new();
    for &conc in &levels {
        let before = if scrape {
            Some(scrape_server_read_hist(&addr)?)
        } else {
            None
        };
        let mut r = run_level(&addr, &meta, &perm, &zipf, conc, requests, seed, verify)?;
        if let Some(before) = &before {
            let after = scrape_server_read_hist(&addr)?;
            let delta = histogram_delta(&after, before);
            server_merged.merge(&delta);
            r.server = Some(delta.quantiles());
        }
        digest_all ^= r.digest;
        print!(
            "{:>5} {:>9} {:>8.2} {:>9.0} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.conc,
            r.requests,
            r.secs,
            r.requests as f64 / r.secs,
            ms(r.latency.p50_ns),
            ms(r.latency.p95_ns),
            ms(r.latency.p99_ns),
            ms(r.latency.p999_ns),
            ms(r.latency.max_ns),
            ms(r.latency.mean_ns),
        );
        if let Some(srv) = &r.server {
            print!(" {:>9.2} {:>9.2}", ms(srv.p50_ns), ms(srv.p99_ns));
        }
        println!();
        results.push(r);
    }
    println!("schedule digest: 0x{digest_all:016x}");

    if let Some(path) = args.flags.get("json") {
        let server = scrape.then(|| server_merged.quantiles());
        let json = results_json(&results, digest_all, server.as_ref());
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = args.flags.get("dump-flight") {
        let dump = fetch_frame(&addr, &Request::Dump, "dump")?;
        std::fs::write(path, &dump).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "loadgen: wrote {} bytes of flight-recorder JSONL to {path}",
            dump.len()
        );
    }
    if args.set("shutdown") {
        let mut c = connect(&addr)?;
        write_request(&mut c, &Request::Shutdown).map_err(|e| e.to_string())?;
        c.flush().map_err(|e| e.to_string())?;
        let (st, msg) = read_response(&mut c).map_err(|e| e.to_string())?;
        if st != ST_OK {
            return Err(format!(
                "shutdown refused (status {st}): {}",
                String::from_utf8_lossy(&msg)
            ));
        }
    }
    Ok(())
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn parse_levels(spec: &str) -> Result<Vec<u32>, String> {
    let mut levels = Vec::new();
    for part in spec.split(',') {
        let n: u32 = part
            .trim()
            .parse()
            .map_err(|e| format!("--levels '{part}': {e}"))?;
        if n == 0 {
            return Err("--levels entries must be >= 1".into());
        }
        levels.push(n);
    }
    if levels.is_empty() {
        return Err("--levels must name at least one concurrency level".into());
    }
    Ok(levels)
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    Ok(stream)
}

/// One request/response exchange on a fresh connection, returning the
/// OK payload.
fn fetch_frame(addr: &str, req: &Request, what: &str) -> Result<Vec<u8>, String> {
    let stream = connect(addr)?;
    let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut w = BufWriter::new(stream);
    write_request(&mut w, req).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    let (st, body) = read_response(&mut r).map_err(|e| format!("{what}: {e}"))?;
    if st != ST_OK {
        return Err(format!(
            "{what} refused (status {st}): {}",
            String::from_utf8_lossy(&body)
        ));
    }
    Ok(body)
}

fn fetch_meta(addr: &str) -> Result<DiskMeta, String> {
    let body = fetch_frame(addr, &Request::Meta, "meta")?;
    let text = std::str::from_utf8(&body).map_err(|_| "meta payload is not UTF-8")?;
    DiskMeta::from_text(text)
}

/// Scrapes the server's `METRICS` exposition and reconstructs the
/// cumulative server-side READ latency histogram.
fn scrape_server_read_hist(addr: &str) -> Result<PowerHistogram, String> {
    let body = fetch_frame(addr, &Request::Metrics, "metrics")?;
    let text = std::str::from_utf8(&body).map_err(|_| "metrics payload is not UTF-8")?;
    let scrape = Scrape::parse(text)?;
    scrape
        .histogram("forhdc_op_latency_ns", &[("op", "read")])?
        .ok_or_else(|| "server metrics lack forhdc_op_latency_ns{op=\"read\"}".to_string())
}

/// A deterministic per-connection seed: splitmix64 over the user seed
/// and the (level, connection) coordinates.
fn conn_seed(seed: u64, level: u32, conn: u32) -> u64 {
    let mut z = seed
        .wrapping_add((level as u64) << 32 | conn as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[allow(clippy::too_many_arguments)]
fn run_level(
    addr: &str,
    meta: &DiskMeta,
    perm: &Arc<Vec<u32>>,
    zipf: &Arc<ZipfSampler>,
    conc: u32,
    requests: u64,
    seed: u64,
    verify: bool,
) -> Result<LevelResult, String> {
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..conc {
        let n = requests / conc as u64 + u64::from((conn as u64) < requests % conc as u64);
        if n == 0 {
            continue;
        }
        let addr = addr.to_string();
        let meta = meta.clone();
        let perm = Arc::clone(perm);
        let zipf = Arc::clone(zipf);
        workers.push(thread::spawn(move || {
            conn_loop(
                &addr,
                &meta,
                &perm,
                &zipf,
                conn_seed(seed, conc, conn),
                n,
                verify,
            )
        }));
    }
    let mut hist = PowerHistogram::new();
    let mut digest = 0u64;
    let mut total = 0u64;
    for w in workers {
        let (h, d, n) = w
            .join()
            .map_err(|_| "connection thread panicked".to_string())??;
        hist.merge(&h);
        digest ^= d;
        total += n;
    }
    Ok(LevelResult {
        conc,
        requests: total,
        secs: started.elapsed().as_secs_f64(),
        latency: hist.quantiles(),
        server: None,
        digest,
    })
}

/// One closed-loop connection: `n` whole-file reads drawn from the
/// Zipf popularity distribution. Returns the latency histogram, the
/// FNV digest of the request sequence, and the request count.
fn conn_loop(
    addr: &str,
    meta: &DiskMeta,
    perm: &[u32],
    zipf: &ZipfSampler,
    rng_seed: u64,
    n: u64,
    verify: bool,
) -> Result<(PowerHistogram, u64, u64), String> {
    let stream = connect(addr)?;
    let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut w = BufWriter::new(stream);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut hist = PowerHistogram::new();
    let mut digest = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    let block_bytes = meta.block_bytes as usize;
    for _ in 0..n {
        let file = perm[zipf.sample(&mut rng)];
        let offset = 0u64;
        let nblocks = meta.file_blocks;
        for b in file
            .to_le_bytes()
            .iter()
            .chain(offset.to_le_bytes().iter())
            .chain(nblocks.to_le_bytes().iter())
        {
            digest = (digest ^ *b as u64).wrapping_mul(0x100_0000_01B3);
        }
        let t0 = Instant::now();
        write_request(
            &mut w,
            &Request::Read {
                file,
                offset,
                nblocks,
            },
        )
        .map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        let (st, body) = read_response(&mut r).map_err(|e| format!("read: {e}"))?;
        hist.record(t0.elapsed().as_nanos() as u64);
        if st != ST_OK {
            return Err(format!(
                "READ file {file} refused (status {st}): {}",
                String::from_utf8_lossy(&body)
            ));
        }
        if body.len() != nblocks as usize * block_bytes {
            return Err(format!(
                "READ file {file}: got {} bytes, want {}",
                body.len(),
                nblocks as usize * block_bytes
            ));
        }
        if verify {
            for (i, page) in body.chunks_exact(block_bytes).enumerate() {
                let want = block_payload(file, offset + i as u64, meta.block_bytes);
                if page != &want[..] {
                    return Err(format!("READ file {file} block {i}: payload mismatch"));
                }
            }
        }
    }
    Ok((hist, digest, n))
}

fn results_json(results: &[LevelResult], digest: u64, server: Option<&Quantiles>) -> String {
    let mut s = String::from("{\n  \"levels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let server_part = match &r.server {
            Some(q) => format!(", \"server_latency\": {}", q.to_json()),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"conc\": {}, \"requests\": {}, \"secs\": {:.3}, \"rps\": {:.1}, \
             \"latency\": {}{}}}{}\n",
            r.conc,
            r.requests,
            r.secs,
            r.requests as f64 / r.secs,
            r.latency.to_json(),
            server_part,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    if let Some(q) = server {
        s.push_str(&format!("  \"server\": {},\n", q.to_json()));
    }
    s.push_str(&format!("  \"digest\": \"0x{digest:016x}\"\n}}\n"));
    s
}
