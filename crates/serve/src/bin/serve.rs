//! `serve` — the live TCP serving front-end.
//!
//! ```text
//! serve mkdisk --dir DIR [--disks N] [--files N] [--file-blocks N]
//!              [--unit BLOCKS] [--seed S] [--frag Q] [--mirror 1]
//!     Create a deterministic disk-image directory (one image per
//!     array disk plus a meta.txt manifest). --mirror 1 builds a
//!     RAID1/0 array: disks pair up as identical replicas
//!     (2v, 2v+1) striped over the pairs; --disks must be even.
//!
//! serve run --dir DIR [--port P] [--threads N] [--policy P] [--hdc KB]
//!           [--stats-secs S] [--port-file F] [--report F] [--max-conns N]
//!           [--metrics-addr HOST:PORT] [--metrics-port-file F]
//!           [--faults seed=S,media=R,offline=SPEC] [--deadline-ms MS]
//!           [--retries N] [--backoff-ms MS] [--max-queue N]
//!           [--max-inflight N] [--rebuild-mbps N]
//!     Serve file reads from the images through the FOR/HDC stack.
//!       --port 0 picks an ephemeral port; --port-file writes the
//!       bound port for scripts. --metrics-addr binds a side HTTP
//!       listener answering GET /metrics with Prometheus text
//!       exposition (--metrics-port-file writes its bound port).
//!       --faults injects a deterministic fault schedule: per-block
//!       media errors at rate R (pure in (seed, disk, block)) and
//!       wall-clock per-disk offline windows (SPEC is
//!       DISK@START_MS+LEN_MS entries joined by ';'). --retries and
//!       --backoff-ms shape the bounded recovery of faulted media
//!       reads; --deadline-ms fails a request `ERR Timeout` instead of
//!       spending retries past its deadline. --max-queue sheds at a
//!       per-disk queue bound, --max-inflight at a server-wide READ
//!       bound; both answer `ERR Overload`. On a mirrored array,
//!       reads split over each replica pair, fail over to the
//!       surviving twin when a member is offline or bad, and a
//!       REBUILD frame (or clearing an offline window) streams a
//!       twin→member copy paced to --rebuild-mbps (0 = unpaced).
//!       The server runs until a client sends SHUTDOWN — or SIGTERM /
//!       SIGINT arrives — then drains, dumps the flight recorder on a
//!       signal, and prints a JSON report. A panic in any serving
//!       thread prints a structured report plus a flight-recorder
//!       dump to stderr before the thread dies.
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use forhdc_core::ReadAheadKind;
use forhdc_fault::{parse_offline_spec, FaultConfig, WallPolicy};
use forhdc_serve::engine::LiveOpts;
use forhdc_serve::image::{create_images, open_dir, DiskMeta};
use forhdc_serve::server::{run as run_server, termination_flag, ServerOpts};
use forhdc_serve::Engine;

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

const USAGE: &str = "\
serve — live TCP front-end for the FOR/HDC disk-array stack

  serve mkdisk --dir DIR [--disks N] [--files N] [--file-blocks N]
               [--unit BLOCKS] [--seed S] [--frag Q] [--mirror 1]
  serve run    --dir DIR [--port P] [--threads N]
               [--policy segm|block|no-ra|for|track] [--hdc KB]
               [--stats-secs S] [--port-file F] [--report F] [--max-conns N]
               [--metrics-addr HOST:PORT] [--metrics-port-file F]
               [--faults seed=S,media=R,offline=DISK@START_MS+LEN_MS;...]
               [--deadline-ms MS] [--retries N] [--backoff-ms MS]
               [--max-queue N] [--max-inflight N] [--rebuild-mbps N]
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    match args.positional.first().map(String::as_str) {
        Some("mkdisk") => mkdisk(&args),
        Some("run") => serve(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

fn mkdisk(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.required("dir")?);
    let meta = DiskMeta {
        block_bytes: 4096,
        disks: args.flag("disks", 4u16)?,
        unit_blocks: args.flag("unit", 32u32)?,
        files: args.flag("files", 512u32)?,
        file_blocks: args.flag("file-blocks", 8u32)?,
        seed: args.flag("seed", 42u64)?,
        fragmentation: args.flag("frag", 0.0f64)?,
        disk_blocks: 0,
        mirrored: args.flag("mirror", 0u32)? != 0,
    };
    let meta = create_images(&dir, &meta)?;
    println!(
        "wrote {} images of {} blocks ({} files x {} blocks{}) under {}",
        meta.disks,
        meta.disk_blocks,
        meta.files,
        meta.file_blocks,
        if meta.mirrored { ", mirrored" } else { "" },
        dir.display()
    );
    Ok(())
}

fn parse_policy(name: &str) -> Result<ReadAheadKind, String> {
    match name {
        "segm" => Ok(ReadAheadKind::BlindSegment),
        "block" => Ok(ReadAheadKind::BlindBlock),
        "no-ra" => Ok(ReadAheadKind::None),
        "for" => Ok(ReadAheadKind::For),
        "track" => Ok(ReadAheadKind::PartialTrack),
        other => Err(format!(
            "unknown policy '{other}' (want segm|block|no-ra|for|track)"
        )),
    }
}

/// Parses `--faults seed=S,media=R,offline=SPEC` (comma-joined
/// `key=value` entries, each optional).
fn parse_faults(spec: &str) -> Result<FaultConfig, String> {
    let mut cfg = FaultConfig::new(42);
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("--faults entry '{part}': want key=value"))?;
        match k {
            "seed" => cfg.seed = v.parse().map_err(|e| format!("--faults seed: {e}"))?,
            "media" => {
                let rate: f64 = v.parse().map_err(|e| format!("--faults media: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--faults media={rate}: rate outside [0, 1]"));
                }
                cfg.read_error_rate = rate;
            }
            "offline" => {
                cfg.offline = parse_offline_spec(v).map_err(|e| format!("--faults {e}"))?
            }
            other => {
                return Err(format!(
                    "--faults key '{other}' (want seed, media, offline)"
                ))
            }
        }
    }
    Ok(cfg)
}

/// Installs SIGTERM/SIGINT handlers that flip the server's termination
/// flag. The handler body is async-signal-safe (one atomic store); the
/// supervise loop does the actual drain/dump/report. Raw `signal(2)`
/// through the C ABI keeps the repo dependency-free.
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        termination_flag().store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn serve(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.required("dir")?);
    let meta = open_dir(&dir)?;
    let policy = parse_policy(&args.flag("policy", String::from("for"))?)?;
    let hdc_kb: u64 = args.flag("hdc", 0u64)?;
    let hdc_blocks = (hdc_kb * 1024 / meta.block_bytes as u64) as u32;
    let port: u16 = args.flag("port", 0u16)?;
    let opts = ServerOpts {
        accept_threads: args.flag("threads", 2usize)?.max(1),
        max_conns: args.flag("max-conns", 256usize)?.max(1),
        stats_secs: args.flag("stats-secs", 0u64)?,
        max_inflight: args.flag("max-inflight", 0usize)?,
    };
    let faults = match args.flags.get("faults") {
        Some(spec) => Some(parse_faults(spec)?),
        None => None,
    };
    let recovery = WallPolicy {
        max_retries: args.flag("retries", 3u32)?,
        backoff_base_ns: args.flag("backoff-ms", 2u64)?.saturating_mul(1_000_000),
        backoff_cap_ns: 200_000_000,
        deadline_ns: match args.flag("deadline-ms", 0u64)? {
            0 => None,
            ms => Some(ms.saturating_mul(1_000_000)),
        },
    };
    let live = LiveOpts {
        faults,
        recovery,
        max_queue: args.flag("max-queue", 0u32)?,
        rebuild_mbps: args.flag("rebuild-mbps", 0u64)?,
    };
    let engine = Engine::open_with(&dir, meta, policy, hdc_blocks, live)?;
    install_panic_hook(&engine);
    install_signal_handlers();
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(path) = args.flags.get("port-file") {
        let mut f = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        writeln!(f, "{}", bound.port()).map_err(|e| format!("write {path}: {e}"))?;
    }
    let metrics_listener = match args.flags.get("metrics-addr") {
        Some(addr) => {
            let l = TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
            let maddr = l.local_addr().map_err(|e| format!("local_addr: {e}"))?;
            if let Some(path) = args.flags.get("metrics-port-file") {
                let mut f =
                    std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
                writeln!(f, "{}", maddr.port()).map_err(|e| format!("write {path}: {e}"))?;
            }
            eprintln!("serve: metrics on http://{maddr}/metrics");
            Some(l)
        }
        None => None,
    };
    eprintln!(
        "serve: listening on {bound} policy={} hdc={}KB images={}",
        engine.policy().label(),
        hdc_kb,
        dir.display()
    );
    let report = run_server(engine, listener, metrics_listener, &opts)?;
    if let Some(path) = args.flags.get("report") {
        std::fs::write(path, &report).map_err(|e| format!("write {path}: {e}"))?;
    }
    print!("{report}");
    Ok(())
}

/// Installs a process-wide panic hook that writes a structured report
/// and a flight-recorder dump to stderr before the default hook's
/// backtrace. A panicking connection thread dies alone; a panic on the
/// main thread still exits the process non-zero afterwards.
fn install_panic_hook(engine: &Engine) {
    let metrics = std::sync::Arc::clone(engine.metrics());
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let thread = std::thread::current();
        let location = info
            .location()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "<unknown>".to_string());
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        eprintln!(
            "serve: PANIC in thread '{}' at {location}: {message}",
            thread.name().unwrap_or("<unnamed>")
        );
        let dump = metrics.flight.dump_jsonl();
        eprintln!(
            "serve: flight recorder dump ({} events, reason: panic) begin",
            dump.lines().count()
        );
        eprint!("{dump}");
        eprintln!("serve: flight recorder dump end");
        default_hook(info);
    }));
}
