//! The TCP server runtime: accept threads, per-connection handlers,
//! drain-clean shutdown.
//!
//! The listener runs non-blocking and is shared by a small pool of
//! accept threads; each accepted connection gets its own blocking
//! handler thread (the thread-per-connection model of the classic
//! servers the paper studies). A `SHUTDOWN` request flips a process-
//! wide flag: accept threads stop taking connections, in-flight
//! requests finish, new READs on surviving connections get
//! `ST_SHUTTING_DOWN`, and the main thread waits for the active count
//! to reach zero before printing the final report.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use forhdc_trace::PowerHistogram;

use crate::engine::{Engine, ReadError};
use crate::protocol::{
    read_request, write_response, FrameError, Request, ST_BAD_REQUEST, ST_BUSY, ST_INTERNAL, ST_OK,
    ST_RANGE, ST_SHUTTING_DOWN,
};
use crate::report::{server_report, stats_line, ServeTotals};

/// How often accept threads poll the non-blocking listener while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How often the main thread checks for drain completion.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Tunables for [`run`].
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Accept threads sharing the listener.
    pub accept_threads: usize,
    /// Connections beyond this are answered `ST_BUSY` and closed.
    pub max_conns: usize,
    /// Seconds between stderr stats lines (0 disables them).
    pub stats_secs: u64,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            accept_threads: 2,
            max_conns: 256,
            stats_secs: 0,
        }
    }
}

struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
    active: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    e2e: Mutex<PowerHistogram>,
    started: Instant,
}

impl Shared {
    fn totals(&self) -> ServeTotals {
        ServeTotals {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    fn report(&self) -> String {
        let snap = self.engine.snapshot();
        let e2e = self.e2e.lock().expect("e2e lock poisoned").quantiles();
        server_report(
            &self.engine,
            &snap,
            &self.totals(),
            &e2e,
            self.started.elapsed().as_secs_f64(),
        )
    }
}

/// Drops back the active-connection count even on handler panic.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs the server on an already-bound listener until a client asks it
/// to shut down, then drains and returns the final JSON report.
pub fn run(engine: Engine, listener: TcpListener, opts: &ServerOpts) -> Result<String, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let shared = Arc::new(Shared {
        engine,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        e2e: Mutex::new(PowerHistogram::new()),
        started: Instant::now(),
    });
    let mut acceptors = Vec::new();
    for _ in 0..opts.accept_threads.max(1) {
        let listener = listener
            .try_clone()
            .map_err(|e| format!("listener clone: {e}"))?;
        let shared = Arc::clone(&shared);
        let max_conns = opts.max_conns;
        acceptors.push(thread::spawn(move || {
            accept_loop(listener, shared, max_conns)
        }));
    }
    // Supervise: periodic stats, then drain once shutdown is flagged.
    let mut last_stats = Instant::now();
    loop {
        thread::sleep(DRAIN_POLL);
        if opts.stats_secs > 0 && last_stats.elapsed().as_secs() >= opts.stats_secs {
            last_stats = Instant::now();
            let snap = shared.engine.snapshot();
            let e2e = shared.e2e.lock().expect("e2e lock poisoned").quantiles();
            eprintln!(
                "{}",
                stats_line(
                    &snap,
                    &shared.totals(),
                    &e2e,
                    shared.started.elapsed().as_secs_f64()
                )
            );
        }
        if shared.shutdown.load(Ordering::SeqCst) && shared.active.load(Ordering::SeqCst) == 0 {
            break;
        }
    }
    for a in acceptors {
        a.join().map_err(|_| "accept thread panicked".to_string())?;
    }
    Ok(shared.report())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_conns: usize) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reserve an active slot before the handler thread
                // exists so drain can never miss a connection.
                let was = shared.active.fetch_add(1, Ordering::SeqCst);
                if was >= max_conns {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    let mut w = BufWriter::new(stream);
                    let _ = write_response(&mut w, ST_BUSY, b"connection limit reached");
                    let _ = w.flush();
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let _guard = ActiveGuard(&shared.active);
                    handle_conn(&shared, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut r) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between frames
            Err(FrameError::Malformed(m)) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut w, ST_BAD_REQUEST, m.as_bytes());
                let _ = w.flush();
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let t0 = Instant::now();
        let keep_going = match req {
            Request::Ping => respond(shared, &mut w, ST_OK, b""),
            Request::Meta => {
                let text = shared.engine.meta().to_text();
                respond(shared, &mut w, ST_OK, text.as_bytes())
            }
            Request::Stats => {
                let json = shared.report();
                respond(shared, &mut w, ST_OK, json.as_bytes())
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = respond(shared, &mut w, ST_OK, b"draining");
                return;
            }
            Request::Read {
                file,
                offset,
                nblocks,
            } => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    respond(shared, &mut w, ST_SHUTTING_DOWN, b"server is draining")
                } else {
                    let mut buf = Vec::new();
                    match shared.engine.read(file, offset, nblocks, &mut buf) {
                        Ok(()) => {
                            let ok = respond(shared, &mut w, ST_OK, &buf);
                            if ok {
                                shared
                                    .e2e
                                    .lock()
                                    .expect("e2e lock poisoned")
                                    .record(t0.elapsed().as_nanos() as u64);
                            }
                            ok
                        }
                        Err(ReadError::Range(m)) => respond(shared, &mut w, ST_RANGE, m.as_bytes()),
                        Err(ReadError::Internal(m)) => {
                            respond(shared, &mut w, ST_INTERNAL, m.as_bytes())
                        }
                    }
                }
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Writes and flushes one response; returns `false` when the peer is
/// gone. Counts OK responses as requests and the rest as errors.
fn respond<W: Write>(shared: &Shared, w: &mut W, status: u8, payload: &[u8]) -> bool {
    if status == ST_OK {
        shared.requests.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    write_response(w, status, payload)
        .and_then(|()| w.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{block_payload, create_images, DiskMeta};
    use crate::protocol::{read_response, write_request};
    use forhdc_core::ReadAheadKind;

    fn spawn_server(
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::net::SocketAddr,
        thread::JoinHandle<Result<String, String>>,
    ) {
        let dir = std::env::temp_dir().join(format!("forhdc_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 16,
            file_blocks: 2,
            seed: 9,
            fragmentation: 0.0,
            disk_blocks: 0,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open(&dir, meta, ReadAheadKind::For, 0).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = ServerOpts::default();
        let handle = thread::spawn(move || run(engine, listener, &opts));
        (dir, addr, handle)
    }

    fn request(stream: &mut TcpStream, req: &Request) -> (u8, Vec<u8>) {
        write_request(stream, req).unwrap();
        stream.flush().unwrap();
        read_response(stream).unwrap()
    }

    #[test]
    fn serves_reads_and_drains_on_shutdown() {
        let (dir, addr, handle) = spawn_server("basic");
        let mut c = TcpStream::connect(addr).unwrap();
        assert_eq!(request(&mut c, &Request::Ping), (ST_OK, Vec::new()));
        let (st, data) = request(
            &mut c,
            &Request::Read {
                file: 3,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        assert_eq!(&data[..4096], &block_payload(3, 0, 4096)[..]);
        assert_eq!(&data[4096..], &block_payload(3, 1, 4096)[..]);
        let (st, meta_text) = request(&mut c, &Request::Meta);
        assert_eq!(st, ST_OK);
        DiskMeta::from_text(std::str::from_utf8(&meta_text).unwrap()).unwrap();
        let (st, stats) = request(&mut c, &Request::Stats);
        assert_eq!(st, ST_OK);
        assert!(std::str::from_utf8(&stats)
            .unwrap()
            .contains("\"per_disk\""));
        let (st, range) = request(
            &mut c,
            &Request::Read {
                file: 999,
                offset: 0,
                nblocks: 1,
            },
        );
        assert_eq!(st, ST_RANGE);
        assert!(!range.is_empty());
        let (st, _) = request(&mut c, &Request::Shutdown);
        assert_eq!(st, ST_OK);
        drop(c);
        let report = handle.join().unwrap().unwrap();
        assert!(report.contains("\"e2e_latency\""), "{report}");
        // Five OK responses: ping, read, meta, stats, shutdown ack.
        assert!(report.contains("\"requests\": 5"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_frame_gets_bad_request() {
        let (dir, addr, handle) = spawn_server("malformed");
        let mut c = TcpStream::connect(addr).unwrap();
        // 1-byte frame with an unknown opcode.
        c.write_all(&1u32.to_le_bytes()).unwrap();
        c.write_all(&[200u8]).unwrap();
        c.flush().unwrap();
        let (st, msg) = read_response(&mut c).unwrap();
        assert_eq!(st, ST_BAD_REQUEST);
        assert!(std::str::from_utf8(&msg).unwrap().contains("opcode"));
        drop(c);
        let mut c2 = TcpStream::connect(addr).unwrap();
        let _ = request(&mut c2, &Request::Shutdown);
        drop(c2);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
