//! The TCP server runtime: accept threads, per-connection handlers,
//! drain-clean shutdown.
//!
//! The listener runs non-blocking and is shared by a small pool of
//! accept threads; each accepted connection gets its own blocking
//! handler thread (the thread-per-connection model of the classic
//! servers the paper studies). A `SHUTDOWN` request flips a process-
//! wide flag: accept threads stop taking connections, in-flight
//! requests finish, new READs on surviving connections get
//! `ST_SHUTTING_DOWN`, and the main thread waits for the active count
//! to reach zero before printing the final report.
//!
//! Every observable event feeds the engine's [`ServeMetrics`]: per-op
//! request counters and latency histograms, connection and inflight
//! gauges, and the flight recorder. The registry is exposed over the
//! protocol (`METRICS`/`DUMP` frames) and — when a side listener is
//! passed to [`run`] — over plain HTTP as Prometheus text exposition,
//! with windowed RPS/MBps rates appended so successive scrapes read
//! as deltas.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use forhdc_metrics::http::{read_request_path, write_response as write_http, CONTENT_TYPE_METRICS};
use forhdc_metrics::{Gauge, RateWindow};

use crate::engine::{Engine, ReadError};
use crate::metrics::{OpKind, ServeMetrics};
use crate::protocol::{
    read_request, write_error, write_response, ErrorCode, FrameError, Request, ST_BAD_REQUEST,
    ST_BUSY, ST_INTERNAL, ST_OK, ST_RANGE, ST_SHUTTING_DOWN,
};
use crate::report::{server_report, stats_line, ServeTotals};

/// How often accept threads poll the non-blocking listener while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How often the main thread checks for drain completion.
const DRAIN_POLL: Duration = Duration::from_millis(50);
/// How long a drain waits for in-flight connections before the server
/// exits anyway (clients holding idle connections open must not pin a
/// terminating server forever).
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// The process-wide termination request, flipped by the SIGTERM/SIGINT
/// handler the `serve` binary installs. The supervise loop polls it
/// and runs the same drain as a protocol `SHUTDOWN`, then dumps the
/// flight recorder to stderr so an operator kill still leaves a
/// post-mortem trail.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// The flag a signal handler should store `true` into to request a
/// graceful drain (async-signal-safe: a relaxed atomic store).
pub fn termination_flag() -> &'static AtomicBool {
    &TERMINATE
}

/// Tunables for [`run`].
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Accept threads sharing the listener.
    pub accept_threads: usize,
    /// Connections beyond this are answered `ST_BUSY` and closed.
    pub max_conns: usize,
    /// Seconds between stderr stats lines (0 disables them).
    pub stats_secs: u64,
    /// READs in flight beyond this are shed with `ERR Overload`
    /// (0 = unbounded). The strict server-wide admission bound; the
    /// engine's `--max-queue` is its per-disk sibling.
    pub max_inflight: usize,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            accept_threads: 2,
            max_conns: 256,
            stats_secs: 0,
            max_inflight: 0,
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    metrics: Arc<ServeMetrics>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// READs currently admitted (strict semaphore for `max_inflight`).
    read_slots: AtomicUsize,
    max_inflight: usize,
    /// Serializes flight-recorder stderr dumps so two faulting workers
    /// cannot interleave their JSONL.
    dump_lock: Mutex<()>,
}

impl Shared {
    fn totals(&self) -> ServeTotals {
        let m = &self.metrics;
        let mut errors_by_code = [0u64; 5];
        for (slot, c) in errors_by_code.iter_mut().zip(&m.errors_total) {
            *slot = c.get();
        }
        ServeTotals {
            connections: m.connections_total.get(),
            requests: m.requests_ok(),
            errors: m.errors_sum(),
            rejected: m.connections_rejected_total.get(),
            inflight: m.inflight_ops.get().max(0) as u64,
            shed: m.shed_total.get(),
            retries: m.retries_total.get(),
            errors_by_code,
        }
    }

    fn e2e(&self) -> forhdc_trace::Quantiles {
        self.metrics.op_latency_ns[OpKind::Read.index()]
            .snapshot()
            .quantiles()
    }

    fn report(&self) -> String {
        let snap = self.engine.snapshot();
        server_report(
            &self.engine,
            &snap,
            &self.totals(),
            &self.e2e(),
            self.metrics.uptime_secs(),
        )
    }

    /// Syncs collector families via a snapshot, then renders the
    /// exposition text. Shared by the `METRICS` frame and the HTTP
    /// endpoint.
    fn metrics_text(&self) -> String {
        let _ = self.engine.snapshot();
        self.metrics.render()
    }

    /// Writes the flight recorder to stderr between parseable markers.
    fn dump_flight_to_stderr(&self, why: &str) {
        let _guard = self.dump_lock.lock();
        let dump = self.metrics.flight.dump_jsonl();
        eprintln!(
            "serve: flight recorder dump ({} events, reason: {why}) begin",
            dump.lines().count()
        );
        eprint!("{dump}");
        eprintln!("serve: flight recorder dump end");
    }
}

/// Drops back the active-connection count (and gauge) even on handler
/// panic.
struct ActiveGuard<'a>(&'a Shared);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.connections_active.dec();
    }
}

/// Holds the inflight-ops gauge up for the duration of one operation.
struct InflightGuard<'a>(&'a Gauge);

impl<'a> InflightGuard<'a> {
    fn new(g: &'a Gauge) -> Self {
        g.inc();
        InflightGuard(g)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Runs the server on an already-bound listener until a client asks it
/// to shut down, then drains and returns the final JSON report.
///
/// When `metrics_listener` is given, a side thread answers HTTP GETs
/// on it (`/metrics` or `/`) with the Prometheus exposition until
/// shutdown.
pub fn run(
    engine: Engine,
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    opts: &ServerOpts,
) -> Result<String, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let metrics = Arc::clone(engine.metrics());
    let shared = Arc::new(Shared {
        engine: Arc::new(engine),
        metrics,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        read_slots: AtomicUsize::new(0),
        max_inflight: opts.max_inflight,
        dump_lock: Mutex::new(()),
    });
    let mut acceptors = Vec::new();
    for i in 0..opts.accept_threads.max(1) {
        let listener = listener
            .try_clone()
            .map_err(|e| format!("listener clone: {e}"))?;
        let shared = Arc::clone(&shared);
        let max_conns = opts.max_conns;
        acceptors.push(
            thread::Builder::new()
                .name(format!("accept-{i}"))
                .spawn(move || accept_loop(listener, shared, max_conns))
                .map_err(|e| format!("spawn accept thread: {e}"))?,
        );
    }
    let metrics_thread = match metrics_listener {
        Some(l) => {
            l.set_nonblocking(true)
                .map_err(|e| format!("metrics listener: {e}"))?;
            let shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("metrics-http".to_string())
                    .spawn(move || metrics_loop(l, shared))
                    .map_err(|e| format!("spawn metrics thread: {e}"))?,
            )
        }
        None => None,
    };
    // Supervise: periodic stats, then drain once shutdown is flagged —
    // by a protocol SHUTDOWN or by the signal handler's termination
    // flag. The drain waits for in-flight connections up to a grace
    // period, then exits anyway.
    let mut last_stats = Instant::now();
    let mut draining_since: Option<Instant> = None;
    let mut terminated = false;
    loop {
        thread::sleep(DRAIN_POLL);
        if opts.stats_secs > 0 && last_stats.elapsed().as_secs() >= opts.stats_secs {
            last_stats = Instant::now();
            let snap = shared.engine.snapshot();
            eprintln!(
                "{}",
                stats_line(
                    &snap,
                    &shared.totals(),
                    &shared.e2e(),
                    shared.metrics.uptime_secs()
                )
            );
        }
        if TERMINATE.load(Ordering::SeqCst) && !terminated {
            terminated = true;
            eprintln!("serve: termination signal received, draining");
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            let since = *draining_since.get_or_insert_with(Instant::now);
            let active = shared.active.load(Ordering::SeqCst);
            if active == 0 {
                break;
            }
            if since.elapsed() >= DRAIN_GRACE {
                eprintln!("serve: drain grace expired with {active} connections, exiting");
                break;
            }
        }
    }
    for a in acceptors {
        a.join().map_err(|_| "accept thread panicked".to_string())?;
    }
    if let Some(t) = metrics_thread {
        t.join()
            .map_err(|_| "metrics thread panicked".to_string())?;
    }
    if terminated {
        shared.dump_flight_to_stderr("termination signal");
    }
    Ok(shared.report())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_conns: usize) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reserve an active slot before the handler thread
                // exists so drain can never miss a connection.
                let was = shared.active.fetch_add(1, Ordering::SeqCst);
                if was >= max_conns {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.connections_rejected_total.inc();
                    let mut w = BufWriter::new(stream);
                    let _ = write_response(&mut w, ST_BUSY, b"connection limit reached");
                    let _ = w.flush();
                    continue;
                }
                let conn_id = shared.metrics.connections_total.get();
                shared.metrics.connections_total.inc();
                shared.metrics.connections_active.inc();
                let worker = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name(format!("conn-{conn_id}"))
                    .spawn(move || {
                        let _guard = ActiveGuard(&worker);
                        handle_conn(&worker, stream);
                    });
                if spawned.is_err() {
                    // The guard never existed; release the slot here.
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.connections_active.dec();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves Prometheus scrapes on the side listener until shutdown.
/// Each scrape appends windowed rates derived from the previous one.
fn metrics_loop(listener: TcpListener, shared: Arc<Shared>) {
    let window = RateWindow::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => serve_scrape(&shared, &window, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_scrape(shared: &Shared, window: &RateWindow, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    let path = match read_request_path(&mut r) {
        Ok(Some(p)) => p,
        Ok(None) => return,
        Err(_) => {
            let _ = write_http(&mut w, 400, "Bad Request", "text/plain", "bad request\n");
            return;
        }
    };
    if path != "/metrics" && path != "/" {
        let _ = write_http(&mut w, 404, "Not Found", "text/plain", "try /metrics\n");
        return;
    }
    let mut body = shared.metrics_text();
    push_window_rates(shared, window, &mut body);
    let _ = write_http(&mut w, 200, "OK", CONTENT_TYPE_METRICS, &body);
}

/// Appends `forhdc_window_*` gauges — rates over the interval since
/// the previous scrape of this endpoint — once a previous scrape
/// exists.
fn push_window_rates(shared: &Shared, window: &RateWindow, body: &mut String) {
    let m = &shared.metrics;
    let reads = m.requests_total[OpKind::Read.index()].get();
    let bytes = m.bytes_served_total.get();
    if let Some((secs, rates)) = window.observe(&[reads, bytes]) {
        body.push_str(&format!(
            "# HELP forhdc_window_seconds Seconds since the previous scrape\n\
             # TYPE forhdc_window_seconds gauge\n\
             forhdc_window_seconds {secs:.3}\n\
             # HELP forhdc_window_rps OK READs per second over the scrape window\n\
             # TYPE forhdc_window_rps gauge\n\
             forhdc_window_rps {:.3}\n\
             # HELP forhdc_window_mbps Served payload megabytes per second over the scrape window\n\
             # TYPE forhdc_window_mbps gauge\n\
             forhdc_window_mbps {:.3}\n",
            rates[0],
            rates[1] / 1e6,
        ));
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut r) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between frames
            Err(FrameError::Malformed(m)) => {
                shared.metrics.error_counter(None).inc();
                let _ = write_response(&mut w, ST_BAD_REQUEST, m.as_bytes());
                let _ = w.flush();
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let _inflight = InflightGuard::new(&shared.metrics.inflight_ops);
        let t0 = Instant::now();
        let keep_going = match req {
            Request::Ping => respond(shared, &mut w, OpKind::Ping, t0, ST_OK, b""),
            Request::Meta => {
                let text = shared.engine.meta().to_text();
                respond(shared, &mut w, OpKind::Meta, t0, ST_OK, text.as_bytes())
            }
            Request::Stats => {
                let json = shared.report();
                respond(shared, &mut w, OpKind::Stats, t0, ST_OK, json.as_bytes())
            }
            Request::Metrics => {
                let text = shared.metrics_text();
                respond(shared, &mut w, OpKind::Metrics, t0, ST_OK, text.as_bytes())
            }
            Request::Dump => {
                let dump = shared.metrics.flight.dump_jsonl();
                respond(shared, &mut w, OpKind::Dump, t0, ST_OK, dump.as_bytes())
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = respond(shared, &mut w, OpKind::Shutdown, t0, ST_OK, b"draining");
                return;
            }
            Request::Read {
                file,
                offset,
                nblocks,
            } => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    respond(
                        shared,
                        &mut w,
                        OpKind::Read,
                        t0,
                        ST_SHUTTING_DOWN,
                        b"server is draining",
                    )
                } else {
                    serve_read(shared, &mut w, t0, file, offset, nblocks)
                }
            }
            Request::FaultOffline { disk, ms } => {
                let res = shared.engine.set_offline_ms(disk, ms);
                // Clearing a mirrored member's window means the
                // "replaced disk" is back: resynchronize it from its
                // twin automatically (a client can also REBUILD
                // explicitly; both are idempotent).
                let rebuilding = res.is_ok()
                    && ms == 0
                    && shared.engine.meta().mirrored
                    && shared.engine.rebuild(disk).unwrap_or(false);
                respond_fault(
                    shared,
                    &mut w,
                    t0,
                    res.map(|()| {
                        format!(
                            "disk {disk} offline {ms} ms{}",
                            if rebuilding { ", rebuild started" } else { "" }
                        )
                    }),
                )
            }
            Request::FaultPlant { file, offset } => {
                let res = shared.engine.plant_bad_block(file, offset);
                respond_fault(
                    shared,
                    &mut w,
                    t0,
                    res.map(|(d, b)| format!("planted bad block: disk {d} block {b}")),
                )
            }
            Request::FaultStall { disk, ms } => {
                let res = shared.engine.set_stall_ms(disk, ms);
                respond_fault(
                    shared,
                    &mut w,
                    t0,
                    res.map(|()| format!("disk {disk} stalled {ms} ms")),
                )
            }
            Request::Rebuild { disk } => {
                let res = shared.engine.rebuild(disk);
                respond_fault(
                    shared,
                    &mut w,
                    t0,
                    res.map(|started| {
                        if started {
                            format!("rebuilding disk {disk} from its mirror")
                        } else {
                            format!("disk {disk} rebuild already running")
                        }
                    }),
                )
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Strict `--max-inflight` semaphore: [`AdmitGuard::admit`] reserves a
/// READ slot or refuses at the bound; dropping the guard releases it.
struct AdmitGuard<'a>(Option<&'a Shared>);

impl<'a> AdmitGuard<'a> {
    fn admit(shared: &'a Shared) -> Option<Self> {
        if shared.max_inflight == 0 {
            return Some(AdmitGuard(None));
        }
        let prev = shared.read_slots.fetch_add(1, Ordering::SeqCst);
        if prev >= shared.max_inflight {
            shared.read_slots.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(AdmitGuard(Some(shared)))
    }
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.0 {
            s.read_slots.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Admits (or sheds) and serves one READ, mapping engine errors onto
/// the wire: structured failures become `ERR` frames carrying their
/// [`ErrorCode`]; the legacy range/internal paths keep their dedicated
/// statuses.
fn serve_read<W: Write>(
    shared: &Shared,
    w: &mut W,
    t0: Instant,
    file: u32,
    offset: u64,
    nblocks: u32,
) -> bool {
    let Some(_slot) = AdmitGuard::admit(shared) else {
        shared.metrics.shed_total.inc();
        return respond_err(
            shared,
            w,
            ErrorCode::Overload,
            &format!(
                "READs in flight at the --max-inflight bound ({})",
                shared.max_inflight
            ),
        );
    };
    let mut buf = Vec::new();
    match shared.engine.read(file, offset, nblocks, &mut buf) {
        Ok(()) => respond(shared, w, OpKind::Read, t0, ST_OK, &buf),
        Err(ReadError::Range(m)) => respond(shared, w, OpKind::Read, t0, ST_RANGE, m.as_bytes()),
        Err(ReadError::Internal(m)) => {
            // An internal error means the images failed underneath us:
            // leave a post-mortem trail.
            shared.dump_flight_to_stderr(&m);
            respond(shared, w, OpKind::Read, t0, ST_INTERNAL, m.as_bytes())
        }
        Err(ReadError::Media(m)) => respond_err(shared, w, ErrorCode::MediaError, &m),
        Err(ReadError::Offline(m)) => respond_err(shared, w, ErrorCode::DiskOffline, &m),
        Err(ReadError::Timeout(m)) => respond_err(shared, w, ErrorCode::Timeout, &m),
        Err(ReadError::Overload(m)) => respond_err(shared, w, ErrorCode::Overload, &m),
    }
}

/// Answers a `FAULT` admin frame: OK with a confirmation line, or
/// `ST_RANGE` when the target is outside the array.
fn respond_fault<W: Write>(
    shared: &Shared,
    w: &mut W,
    t0: Instant,
    res: Result<String, ReadError>,
) -> bool {
    match res {
        Ok(msg) => respond(shared, w, OpKind::Fault, t0, ST_OK, msg.as_bytes()),
        Err(e) => respond(
            shared,
            w,
            OpKind::Fault,
            t0,
            ST_RANGE,
            e.to_string().as_bytes(),
        ),
    }
}

/// Writes and flushes one structured `ERR` response, counting it into
/// `forhdc_errors_total{code=...}`; returns `false` when the peer is
/// gone.
fn respond_err<W: Write>(shared: &Shared, w: &mut W, code: ErrorCode, msg: &str) -> bool {
    let delivered = write_error(w, code, msg).and_then(|()| w.flush()).is_ok();
    shared.metrics.error_counter(Some(code)).inc();
    delivered
}

/// Writes and flushes one response; returns `false` when the peer is
/// gone. Counts OK responses into the per-op request counters (and
/// delivered ones into the per-op latency histogram), the rest into
/// the unstructured error counter.
fn respond<W: Write>(
    shared: &Shared,
    w: &mut W,
    op: OpKind,
    t0: Instant,
    status: u8,
    payload: &[u8],
) -> bool {
    let delivered = write_response(w, status, payload)
        .and_then(|()| w.flush())
        .is_ok();
    if status == ST_OK {
        shared.metrics.requests_total[op.index()].inc();
        if delivered {
            shared.metrics.op_latency_ns[op.index()].record(t0.elapsed().as_nanos() as u64);
        }
    } else {
        shared.metrics.error_counter(None).inc();
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{block_payload, create_images, DiskMeta};
    use crate::protocol::{read_response, write_request};
    use forhdc_core::ReadAheadKind;

    fn spawn_server(
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::net::SocketAddr,
        thread::JoinHandle<Result<String, String>>,
    ) {
        spawn_server_opts(
            tag,
            crate::engine::LiveOpts::default(),
            ServerOpts::default(),
        )
    }

    fn spawn_server_opts(
        tag: &str,
        live: crate::engine::LiveOpts,
        opts: ServerOpts,
    ) -> (
        std::path::PathBuf,
        std::net::SocketAddr,
        thread::JoinHandle<Result<String, String>>,
    ) {
        let dir = std::env::temp_dir().join(format!("forhdc_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 16,
            file_blocks: 2,
            seed: 9,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: false,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open_with(&dir, meta, ReadAheadKind::For, 0, live).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || run(engine, listener, None, &opts));
        (dir, addr, handle)
    }

    fn request(stream: &mut TcpStream, req: &Request) -> (u8, Vec<u8>) {
        write_request(stream, req).unwrap();
        stream.flush().unwrap();
        read_response(stream).unwrap()
    }

    #[test]
    fn serves_reads_and_drains_on_shutdown() {
        let (dir, addr, handle) = spawn_server("basic");
        let mut c = TcpStream::connect(addr).unwrap();
        assert_eq!(request(&mut c, &Request::Ping), (ST_OK, Vec::new()));
        let (st, data) = request(
            &mut c,
            &Request::Read {
                file: 3,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        assert_eq!(&data[..4096], &block_payload(3, 0, 4096)[..]);
        assert_eq!(&data[4096..], &block_payload(3, 1, 4096)[..]);
        let (st, meta_text) = request(&mut c, &Request::Meta);
        assert_eq!(st, ST_OK);
        DiskMeta::from_text(std::str::from_utf8(&meta_text).unwrap()).unwrap();
        let (st, stats) = request(&mut c, &Request::Stats);
        assert_eq!(st, ST_OK);
        assert!(std::str::from_utf8(&stats)
            .unwrap()
            .contains("\"per_disk\""));
        let (st, range) = request(
            &mut c,
            &Request::Read {
                file: 999,
                offset: 0,
                nblocks: 1,
            },
        );
        assert_eq!(st, ST_RANGE);
        assert!(!range.is_empty());
        let (st, _) = request(&mut c, &Request::Shutdown);
        assert_eq!(st, ST_OK);
        drop(c);
        let report = handle.join().unwrap().unwrap();
        assert!(report.contains("\"e2e_latency\""), "{report}");
        // Five OK responses: ping, read, meta, stats, shutdown ack.
        assert!(report.contains("\"requests\": 5"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_and_dump_frames_answer_over_the_protocol() {
        let (dir, addr, handle) = spawn_server("frames");
        let mut c = TcpStream::connect(addr).unwrap();
        let (st, data) = request(
            &mut c,
            &Request::Read {
                file: 1,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        assert_eq!(data.len(), 2 * 4096);
        let (st, text) = request(&mut c, &Request::Metrics);
        assert_eq!(st, ST_OK);
        let text = String::from_utf8(text).unwrap();
        assert!(
            text.contains("forhdc_requests_total{op=\"read\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE forhdc_disk_service_ns histogram"),
            "{text}"
        );
        let (st, dump) = request(&mut c, &Request::Dump);
        assert_eq!(st, ST_OK);
        let dump = String::from_utf8(dump).unwrap();
        let events = forhdc_trace::parse_jsonl(&dump).expect("dump parses");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, forhdc_trace::TraceEvent::Complete { .. })),
            "{dump}"
        );
        let _ = request(&mut c, &Request::Shutdown);
        drop(c);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_side_listener_scrapes_with_window_rates() {
        let dir = std::env::temp_dir().join(format!("forhdc_server_http_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = DiskMeta {
            block_bytes: 4096,
            disks: 2,
            unit_blocks: 4,
            files: 16,
            file_blocks: 2,
            seed: 9,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: false,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open(&dir, meta, ReadAheadKind::For, 0).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mlistener = TcpListener::bind("127.0.0.1:0").unwrap();
        let maddr = mlistener.local_addr().unwrap().to_string();
        let opts = ServerOpts::default();
        let handle = thread::spawn(move || run(engine, listener, Some(mlistener), &opts));
        let scrape =
            |path: &str| forhdc_metrics::http::http_get(&maddr, path, Duration::from_secs(10));
        let first = scrape("/metrics").unwrap();
        assert!(first.contains("forhdc_uptime_seconds"), "{first}");
        // No window yet on the first scrape.
        assert!(!first.contains("forhdc_window_seconds"), "{first}");
        let mut c = TcpStream::connect(addr).unwrap();
        let (st, _) = request(
            &mut c,
            &Request::Read {
                file: 2,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        let second = scrape("/metrics").unwrap();
        assert!(second.contains("forhdc_window_seconds"), "{second}");
        assert!(second.contains("forhdc_window_rps"), "{second}");
        assert!(second.contains("forhdc_window_mbps"), "{second}");
        assert!(
            second.contains("forhdc_requests_total{op=\"read\"} 1"),
            "{second}"
        );
        assert!(scrape("/nope").is_err());
        let _ = request(&mut c, &Request::Shutdown);
        drop(c);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_frames_inject_and_err_frames_carry_codes() {
        use crate::protocol::{parse_error, ST_ERR};
        let live = crate::engine::LiveOpts {
            recovery: forhdc_fault::WallPolicy {
                max_retries: 2,
                backoff_base_ns: 200_000,
                backoff_cap_ns: 1_000_000,
                deadline_ns: None,
            },
            ..Default::default()
        };
        let (dir, addr, handle) = spawn_server_opts("faults", live, ServerOpts::default());
        let mut c = TcpStream::connect(addr).unwrap();
        // Plant a bad block under file 3; a cold read must fail
        // ERR MediaError after the retry budget.
        let (st, msg) = request(&mut c, &Request::FaultPlant { file: 3, offset: 0 });
        assert_eq!(st, ST_OK);
        assert!(std::str::from_utf8(&msg).unwrap().contains("planted"));
        let (st, payload) = request(
            &mut c,
            &Request::Read {
                file: 3,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_ERR);
        let (code, m) = parse_error(&payload);
        assert_eq!(code, Some(ErrorCode::MediaError));
        assert!(m.contains("after 2 retries"), "{m}");
        // Take both disks offline; reads fail fast with DiskOffline.
        for disk in 0..2 {
            let (st, _) = request(&mut c, &Request::FaultOffline { disk, ms: 60_000 });
            assert_eq!(st, ST_OK);
        }
        let (st, payload) = request(
            &mut c,
            &Request::Read {
                file: 5,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_ERR);
        assert_eq!(parse_error(&payload).0, Some(ErrorCode::DiskOffline));
        // Bring them back; the same read now serves.
        for disk in 0..2 {
            let (st, _) = request(&mut c, &Request::FaultOffline { disk, ms: 0 });
            assert_eq!(st, ST_OK);
        }
        let (st, data) = request(
            &mut c,
            &Request::Read {
                file: 5,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        assert_eq!(&data[..4096], &block_payload(5, 0, 4096)[..]);
        // Admin frames validate their targets.
        let (st, _) = request(&mut c, &Request::FaultOffline { disk: 9, ms: 10 });
        assert_eq!(st, ST_RANGE);
        // The error metrics carry the per-code split.
        let (st, text) = request(&mut c, &Request::Metrics);
        assert_eq!(st, ST_OK);
        let text = String::from_utf8(text).unwrap();
        assert!(
            text.contains("forhdc_errors_total{code=\"media\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("forhdc_errors_total{code=\"offline\"} 1"),
            "{text}"
        );
        assert!(text.contains("forhdc_retries_total 2"), "{text}");
        let _ = request(&mut c, &Request::Shutdown);
        drop(c);
        let report = handle.join().unwrap().unwrap();
        assert!(report.contains("\"errors_by_code\""), "{report}");
        assert!(report.contains("\"media\": 1"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn spawn_mirrored_server(
        tag: &str,
    ) -> (
        std::path::PathBuf,
        std::net::SocketAddr,
        thread::JoinHandle<Result<String, String>>,
    ) {
        let dir =
            std::env::temp_dir().join(format!("forhdc_server_m_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = DiskMeta {
            block_bytes: 4096,
            disks: 4,
            unit_blocks: 4,
            files: 16,
            file_blocks: 2,
            seed: 9,
            fragmentation: 0.0,
            disk_blocks: 0,
            mirrored: true,
        };
        let meta = create_images(&dir, &meta).unwrap();
        let engine = Engine::open(&dir, meta, ReadAheadKind::For, 0).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = ServerOpts::default();
        let handle = thread::spawn(move || run(engine, listener, None, &opts));
        (dir, addr, handle)
    }

    /// Parses the value of a metric line like `name{labels} 42`.
    fn metric_value(text: &str, prefix: &str) -> u64 {
        text.lines()
            .find(|l| l.starts_with(prefix))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no metric {prefix} in:\n{text}"))
    }

    #[test]
    fn mirrored_server_fails_over_and_rebuilds_over_the_wire() {
        let (dir, addr, handle) = spawn_mirrored_server("failover");
        let mut c = TcpStream::connect(addr).unwrap();
        // Take one member of pair 0 offline; every read must still
        // answer OK from the surviving twin.
        let (st, _) = request(
            &mut c,
            &Request::FaultOffline {
                disk: 1,
                ms: 60_000,
            },
        );
        assert_eq!(st, ST_OK);
        for file in 0..16 {
            let (st, data) = request(
                &mut c,
                &Request::Read {
                    file,
                    offset: 0,
                    nblocks: 2,
                },
            );
            assert_eq!(st, ST_OK, "file {file} failed with one replica offline");
            assert_eq!(&data[..4096], &block_payload(file, 0, 4096)[..]);
        }
        let (st, text) = request(&mut c, &Request::Metrics);
        assert_eq!(st, ST_OK);
        let text = String::from_utf8(text).unwrap();
        assert!(
            metric_value(&text, "forhdc_failover_reads_total{disk=\"1\"}") > 0,
            "{text}"
        );
        assert_eq!(
            metric_value(&text, "forhdc_errors_total{code=\"offline\"}"),
            0
        );
        // Clearing the window auto-starts a rebuild from the twin.
        let (st, msg) = request(&mut c, &Request::FaultOffline { disk: 1, ms: 0 });
        assert_eq!(st, ST_OK);
        assert!(
            std::str::from_utf8(&msg)
                .unwrap()
                .contains("rebuild started"),
            "{msg:?}"
        );
        let t0 = Instant::now();
        loop {
            let (st, text) = request(&mut c, &Request::Metrics);
            assert_eq!(st, ST_OK);
            let text = String::from_utf8(text).unwrap();
            if metric_value(&text, "forhdc_rebuild_progress{disk=\"1\"}") == 100 {
                assert!(metric_value(&text, "forhdc_rebuild_blocks_total") > 0);
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "rebuild never finished"
            );
            thread::sleep(Duration::from_millis(5));
        }
        // An explicit REBUILD frame is valid too; out-of-range rejects.
        let (st, _) = request(&mut c, &Request::Rebuild { disk: 1 });
        assert_eq!(st, ST_OK);
        let (st, _) = request(&mut c, &Request::Rebuild { disk: 9 });
        assert_eq!(st, ST_RANGE);
        let (st, data) = request(
            &mut c,
            &Request::Read {
                file: 0,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        assert_eq!(data.len(), 2 * 4096);
        let _ = request(&mut c, &Request::Shutdown);
        drop(c);
        let report = handle.join().unwrap().unwrap();
        assert!(report.contains("\"mirrored\": true"), "{report}");
        assert!(report.contains("\"failover_reads\""), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_inflight_sheds_overload_and_recovers() {
        use crate::protocol::{parse_error, ST_ERR};
        let (dir, addr, handle) = spawn_server_opts(
            "shed",
            crate::engine::LiveOpts::default(),
            ServerOpts {
                max_inflight: 1,
                ..ServerOpts::default()
            },
        );
        // Stall both disks so the first READ holds its admission slot.
        let mut admin = TcpStream::connect(addr).unwrap();
        for disk in 0..2 {
            let (st, _) = request(&mut admin, &Request::FaultStall { disk, ms: 700 });
            assert_eq!(st, ST_OK);
        }
        let slow = thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            request(
                &mut c,
                &Request::Read {
                    file: 1,
                    offset: 0,
                    nblocks: 2,
                },
            )
        });
        // Let the slow READ take the only slot, then overload.
        thread::sleep(Duration::from_millis(250));
        let (st, payload) = request(
            &mut admin,
            &Request::Read {
                file: 2,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_ERR);
        let (code, m) = parse_error(&payload);
        assert_eq!(code, Some(ErrorCode::Overload));
        assert!(m.contains("max-inflight"), "{m}");
        // The stalled READ still completes OK...
        let (st, data) = slow.join().unwrap();
        assert_eq!(st, ST_OK);
        assert_eq!(data.len(), 2 * 4096);
        // ...and the slot is free again.
        let (st, _) = request(
            &mut admin,
            &Request::Read {
                file: 2,
                offset: 0,
                nblocks: 2,
            },
        );
        assert_eq!(st, ST_OK);
        let (st, text) = request(&mut admin, &Request::Metrics);
        assert_eq!(st, ST_OK);
        let text = String::from_utf8(text).unwrap();
        assert!(text.contains("forhdc_shed_total 1"), "{text}");
        assert!(
            text.contains("forhdc_errors_total{code=\"overload\"} 1"),
            "{text}"
        );
        let _ = request(&mut admin, &Request::Shutdown);
        drop(admin);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_frame_gets_bad_request() {
        let (dir, addr, handle) = spawn_server("malformed");
        let mut c = TcpStream::connect(addr).unwrap();
        // 1-byte frame with an unknown opcode.
        c.write_all(&1u32.to_le_bytes()).unwrap();
        c.write_all(&[200u8]).unwrap();
        c.flush().unwrap();
        let (st, msg) = read_response(&mut c).unwrap();
        assert_eq!(st, ST_BAD_REQUEST);
        assert!(std::str::from_utf8(&msg).unwrap().contains("opcode"));
        drop(c);
        let mut c2 = TcpStream::connect(addr).unwrap();
        let _ = request(&mut c2, &Request::Shutdown);
        drop(c2);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
