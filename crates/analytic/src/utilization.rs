//! The service-time / utilization model of §2.1 and §4, and the HDC
//! sizing bound of §5.
//!
//! `T(r) = seek_time + rot_latency + (r × S) / xfer_rate`. FOR reduces
//! `r` for small files — seek, rotation and transfer *rate* are
//! untouched — cutting utilization rather than merely hiding latency.
//! Working the numbers for the Ultrastar 36Z15 and 4-KByte average
//! files, the paper quotes a 29 % utilization reduction versus a
//! conventional 128-KByte read-ahead.

/// Parameters of the closed-form service-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceParams {
    /// Average seek time, milliseconds.
    pub seek_ms: f64,
    /// Average rotational latency, milliseconds.
    pub rot_ms: f64,
    /// Block size, bytes.
    pub block_bytes: u32,
    /// Media transfer rate, bytes/second.
    pub xfer_rate: u64,
}

impl ServiceParams {
    /// Table 1 values: 3.4 ms seek, 2.0 ms rotation, 4-KByte blocks,
    /// 54 MB/s media rate.
    pub fn ultrastar_36z15() -> Self {
        ServiceParams {
            seek_ms: 3.4,
            rot_ms: 2.0,
            block_bytes: 4096,
            xfer_rate: 54_000_000,
        }
    }
}

impl Default for ServiceParams {
    fn default() -> Self {
        ServiceParams::ultrastar_36z15()
    }
}

/// `T(r)` in milliseconds for an `r`-block operation.
///
/// # Panics
///
/// Panics if `r` is zero.
pub fn service_time_ms(r: u32, p: &ServiceParams) -> f64 {
    assert!(r > 0, "operation must move at least one block");
    p.seek_ms + p.rot_ms + (r as u64 * p.block_bytes as u64) as f64 / p.xfer_rate as f64 * 1e3
}

/// Utilization reduction of reading `for_blocks` instead of
/// `blind_blocks` per miss (the paper's 29 % example uses 1 vs 32).
pub fn utilization_reduction(for_blocks: u32, blind_blocks: u32, p: &ServiceParams) -> f64 {
    1.0 - service_time_ms(for_blocks, p) / service_time_ms(blind_blocks, p)
}

/// `H_max = D·c − R_min`: the §5 bound on array-wide HDC memory, in
/// blocks, given the minimum read-ahead reservation `r_min`.
///
/// Returns 0 when the reservation exceeds the total cache.
pub fn hdc_max_blocks(disks: u32, cache_blocks: u32, r_min: u64) -> u64 {
    (disks as u64 * cache_blocks as u64).saturating_sub(r_min)
}

/// `R_min` for blind read-ahead: `t × (c / s)` — every stream needs a
/// whole segment.
pub fn r_min_blind(streams: u32, cache_blocks: u32, segments: u32) -> u64 {
    assert!(segments > 0);
    streams as u64 * (cache_blocks / segments) as u64
}

/// `R_min` for FOR: `t × f` — every stream needs only its file.
pub fn r_min_for(streams: u32, avg_file_blocks: u32) -> u64 {
    streams as u64 * avg_file_blocks as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_components() {
        let p = ServiceParams::ultrastar_36z15();
        // 1 block: 3.4 + 2.0 + 4096/54e6*1e3 ≈ 5.476 ms.
        assert!((service_time_ms(1, &p) - 5.476).abs() < 0.01);
        // 32 blocks: + 2.43 ms of transfer ≈ 7.83 ms.
        assert!((service_time_ms(32, &p) - 7.827).abs() < 0.01);
    }

    #[test]
    fn paper_29_percent_example() {
        // 4-KByte average files: FOR reads 1 block where blind reads 32.
        let p = ServiceParams::ultrastar_36z15();
        let red = utilization_reduction(1, 32, &p);
        assert!((red - 0.29).abs() < 0.02, "reduction {red}");
    }

    #[test]
    fn reduction_shrinks_with_file_size() {
        let p = ServiceParams::ultrastar_36z15();
        let mut prev = 1.0;
        for f in [1u32, 4, 8, 16, 32] {
            let red = utilization_reduction(f, 32, &p);
            assert!(red <= prev);
            prev = red;
        }
        assert_eq!(utilization_reduction(32, 32, &p), 0.0);
    }

    #[test]
    fn hdc_bound() {
        // 8 disks × 1024 blocks, 128 streams of 4-block files under FOR:
        // H_max = 8192 − 512 = 7680 blocks (30 MB of pinnable memory).
        let r = r_min_for(128, 4);
        assert_eq!(r, 512);
        assert_eq!(hdc_max_blocks(8, 1024, r), 7680);
        // Blind read-ahead wants whole segments: 128 × 37 = 4736.
        let r = r_min_blind(128, 1024, 27);
        assert_eq!(r, 128 * 37);
        assert_eq!(hdc_max_blocks(8, 1024, r), 8192 - 4736);
        // Reservation larger than the array cache: clamps to zero.
        assert_eq!(hdc_max_blocks(1, 64, 1_000_000), 0);
    }

    #[test]
    fn for_reserves_less_than_blind_for_small_files() {
        // f < c/s: FOR always leaves more memory for HDC.
        for f in 1..37u32 {
            assert!(r_min_for(100, f) <= r_min_blind(100, 1024, 27));
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = service_time_ms(0, &ServiceParams::default());
    }
}
