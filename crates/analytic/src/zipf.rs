//! `z_α(H, N)`: the accumulated Zipf probability of §5.
//!
//! For an array-wide HDC cache of `H` blocks over a population of `N`
//! blocks whose request distribution is Zipf with coefficient α, the
//! expected HDC hit rate is the probability mass of the `H` most
//! popular blocks:
//!
//! ```text
//! z_α(H, N) = Σ_{i=1..H} i^{−α} / Σ_{i=1..N} i^{−α}
//! ```

/// Exact `z_α(H, N)` by summation.
///
/// # Panics
///
/// Panics if `n` is zero or `alpha` is negative/non-finite.
///
/// # Example
///
/// ```
/// use forhdc_analytic::zipf_cumulative;
///
/// // Uniform distribution: the top 10% of blocks hold 10% of the mass.
/// let z = zipf_cumulative(100, 1_000, 0.0);
/// assert!((z - 0.1).abs() < 1e-12);
/// ```
pub fn zipf_cumulative(h: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "population must be positive");
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be non-negative"
    );
    if h == 0 {
        return 0.0;
    }
    let h = h.min(n);
    partial_harmonic(h, alpha) / partial_harmonic(n, alpha)
}

/// Closed-form approximation of `z_α(H, N)` via the integral
/// `Σ i^{−α} ≈ (x^{1−α} − 1)/(1 − α) + 1` (and `ln x + 1` at α = 1),
/// useful for very large `N` where summation is wasteful.
pub fn zipf_cumulative_approx(h: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "population must be positive");
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be non-negative"
    );
    if h == 0 {
        return 0.0;
    }
    let h = h.min(n) as f64;
    let n = n as f64;
    // Euler–Maclaurin-flavored constants: γ for the harmonic case, a
    // half-step correction otherwise.
    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
    let mass = |x: f64| {
        if (alpha - 1.0).abs() < 1e-9 {
            x.ln() + EULER_GAMMA
        } else {
            (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha) + 0.5 + 0.5 * x.powf(-alpha)
        }
    };
    mass(h) / mass(n)
}

fn partial_harmonic(k: u64, alpha: f64) -> f64 {
    (1..=k).map(|i| (i as f64).powf(-alpha)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(zipf_cumulative(0, 100, 0.8), 0.0);
        assert!((zipf_cumulative(100, 100, 0.8) - 1.0).abs() < 1e-12);
        assert!((zipf_cumulative(500, 100, 0.8) - 1.0).abs() < 1e-12); // saturates
    }

    #[test]
    fn skew_raises_head_mass() {
        let flat = zipf_cumulative(100, 10_000, 0.0);
        let mid = zipf_cumulative(100, 10_000, 0.43);
        let steep = zipf_cumulative(100, 10_000, 1.0);
        assert!(flat < mid && mid < steep);
        assert!((flat - 0.01).abs() < 1e-9);
    }

    #[test]
    fn approximation_tracks_exact() {
        for &alpha in &[0.0, 0.4, 0.43, 0.8, 1.0] {
            for &(h, n) in &[(10u64, 1_000u64), (100, 10_000), (4_096, 1_000_000)] {
                let exact = zipf_cumulative(h, n, alpha);
                let approx = zipf_cumulative_approx(h, n, alpha);
                assert!(
                    (exact - approx).abs() < 0.02,
                    "alpha={alpha} H={h} N={n}: {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_h() {
        let mut prev = 0.0;
        for h in (0..=1000).step_by(100) {
            let z = zipf_cumulative(h, 1_000, 0.43);
            assert!(z >= prev);
            prev = z;
        }
    }

    #[test]
    fn matches_sampler_cumulative() {
        // Cross-check against the workload crate's sampler semantics:
        // the formulas must agree since both normalize i^-alpha.
        let z = zipf_cumulative(50, 500, 0.43);
        let manual: f64 = (1..=50).map(|i| (i as f64).powf(-0.43)).sum::<f64>()
            / (1..=500).map(|i| (i as f64).powf(-0.43)).sum::<f64>();
        assert!((z - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        let _ = zipf_cumulative(1, 0, 0.5);
    }
}
