//! The §4 controller-cache hit-rate formulas.
//!
//! For a server sequentially reading `t` files of average size `f`
//! blocks, with the host requesting `p` blocks per access (p ≥ 1,
//! thanks to file-system prefetching), a controller cache of `c` blocks
//! and `s` segments:
//!
//! ```text
//! h     = (min(f, c/s) − 1) / min(f, c/s)   if t ≤ s      (conventional)
//!       = (p − 1) / p                        if t > s
//!
//! h_FOR = (f − 1) / f                        if t ≤ c/f
//!       = (p − 1) / p                        if t > c/f
//! ```
//!
//! Because `c/f > s` for small files and `f ≥ p`, FOR's hit rate
//! dominates the conventional cache's whenever files are smaller than a
//! segment and there are more streams than segments — the situation of
//! every data-intensive server the paper studies.

/// Hit rate of the conventional (segment, blind read-ahead) cache.
///
/// # Panics
///
/// Panics unless `f ≥ 1`, `p ≥ 1`, `c ≥ s ≥ 1`.
pub fn conventional_hit_rate(f: f64, c: f64, s: f64, p: f64, t: f64) -> f64 {
    assert!(
        f >= 1.0 && p >= 1.0 && s >= 1.0 && c >= s,
        "invalid parameters"
    );
    if t <= s {
        let m = f.min(c / s);
        (m - 1.0) / m
    } else {
        (p - 1.0) / p
    }
}

/// Hit rate of FOR's block-organized, file-bounded read-ahead cache.
///
/// # Panics
///
/// Panics unless `f ≥ 1`, `p ≥ 1`, `c ≥ 1`.
pub fn for_hit_rate(f: f64, c: f64, p: f64, t: f64) -> f64 {
    assert!(f >= 1.0 && p >= 1.0 && c >= 1.0, "invalid parameters");
    if t <= c / f {
        (f - 1.0) / f
    } else {
        (p - 1.0) / p
    }
}

/// The paper's headline comparison: with the IBM Ultrastar 36Z15
/// parameters (4-MByte cache = 1024 blocks, 27 segments), FOR's hit
/// rate exceeds the conventional cache's for average file sizes below
/// 128 KBytes (32 blocks) whenever more than 27 streams are active.
///
/// Returns `(h_conventional, h_for)`.
pub fn ultrastar_comparison(f: f64, p: f64, t: f64) -> (f64, f64) {
    let c = 1024.0;
    let s = 27.0;
    (
        conventional_hit_rate(f, c, s, p, t),
        for_hit_rate(f, c, p, t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_streams_conventional_serves_from_segments() {
        // t <= s: hit rate limited by min(f, segment size).
        let h = conventional_hit_rate(4.0, 1024.0, 27.0, 1.0, 10.0);
        assert!((h - 0.75).abs() < 1e-12); // (4-1)/4
                                           // Large file capped by segment capacity c/s ≈ 37.9.
        let h = conventional_hit_rate(100.0, 1024.0, 27.0, 1.0, 10.0);
        let cap = 1024.0 / 27.0;
        assert!((h - (cap - 1.0) / cap).abs() < 1e-12);
    }

    #[test]
    fn many_streams_conventional_degrades_to_prefetch_only() {
        let h = conventional_hit_rate(4.0, 1024.0, 27.0, 1.0, 100.0);
        assert_eq!(h, 0.0); // p = 1: every access misses
        let h = conventional_hit_rate(4.0, 1024.0, 27.0, 4.0, 100.0);
        assert!((h - 0.75).abs() < 1e-12);
    }

    #[test]
    fn for_supports_c_over_f_streams() {
        // 16-KByte files (4 blocks), 1024-block cache: up to 256 streams.
        let h = for_hit_rate(4.0, 1024.0, 1.0, 256.0);
        assert!((h - 0.75).abs() < 1e-12);
        let h = for_hit_rate(4.0, 1024.0, 1.0, 257.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn for_dominates_for_small_files_many_streams() {
        // The §4 claim: f < 32 blocks and t > 27 ⇒ h_for ≥ h_conv.
        for f in [2.0, 4.0, 8.0, 16.0, 31.0] {
            for t in [28.0, 64.0, 128.0, 1024.0 / 31.0] {
                let (h_conv, h_for) = ultrastar_comparison(f, 1.0, t);
                assert!(
                    h_for >= h_conv,
                    "f={f} t={t}: h_for {h_for} < h_conv {h_conv}"
                );
            }
        }
    }

    #[test]
    fn equal_when_both_overloaded() {
        let (h_conv, h_for) = ultrastar_comparison(4.0, 2.0, 10_000.0);
        assert_eq!(h_conv, h_for);
        assert!((h_conv - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn bad_parameters_panic() {
        let _ = conventional_hit_rate(0.5, 10.0, 1.0, 1.0, 1.0);
    }
}
