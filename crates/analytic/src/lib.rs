//! # forhdc-analytic
//!
//! The closed-form models of *Improving Disk Throughput in
//! Data-Intensive Servers* (Carrera & Bianchini, HPCA 2004), kept
//! separate from the simulator so experiments can check measured
//! behaviour against the paper's own analysis:
//!
//! * [`hitrate`] — the §4 controller-cache hit-rate formulas for the
//!   conventional segment cache and for FOR.
//! * [`frag`] — the expected sequential-run length behind Figure 1.
//! * [`zipf`] — `z_α(H, N)`, the §5 accumulated Zipf probability that
//!   approximates the HDC hit rate.
//! * [`striping`] — the §2.2 striped-response-time model
//!   `T(r) = γ(D) · T(r/D)`.
//! * [`utilization`] — the §2.1/§4 service-time model
//!   `T(r) = seek + rot + r·S/xfer` and the HDC sizing bound
//!   `H_max = D·c − R_min`.
//! * [`model`] — a first-order prediction of Figure 3, used by the
//!   harness's `model-check` to cross-validate simulator and analysis.

pub mod frag;
pub mod hitrate;
pub mod model;
pub mod striping;
pub mod utilization;
pub mod zipf;

pub use frag::expected_sequential_run;
pub use hitrate::{conventional_hit_rate, for_hit_rate};
pub use model::{predict_fig3, Fig3Prediction};
pub use striping::{gamma_uniform, striped_response_time};
pub use utilization::{hdc_max_blocks, service_time_ms, ServiceParams};
pub use zipf::zipf_cumulative;
