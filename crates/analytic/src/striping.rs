//! The §2.2 striped-request response model.
//!
//! In the absence of contention, a request for `r` blocks split into
//! `D` sub-requests responds in `T(r) = γ(D) · T(r/D)`, where `γ(D)`
//! depends on the distribution of the sub-request service time; for a
//! uniform distribution `γ(D) = 2D / (D + 1)` (Simitci & Reed).

/// `γ(D)` for uniformly distributed sub-request times.
///
/// # Panics
///
/// Panics if `d` is zero.
///
/// # Example
///
/// ```
/// use forhdc_analytic::gamma_uniform;
///
/// assert_eq!(gamma_uniform(1), 1.0);
/// assert!((gamma_uniform(4) - 1.6).abs() < 1e-12);
/// ```
pub fn gamma_uniform(d: u32) -> f64 {
    assert!(d > 0, "need at least one sub-request");
    2.0 * d as f64 / (d as f64 + 1.0)
}

/// Response time of an `r`-block request split over `d` disks, given a
/// service-time function `t(blocks)` for a single disk.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn striped_response_time(r: f64, d: u32, t: impl Fn(f64) -> f64) -> f64 {
    assert!(d > 0, "need at least one disk");
    gamma_uniform(d) * t(r / d as f64)
}

/// The fan-out that minimizes the modeled response time for an
/// `r`-block request, searching `1..=max_d`: splitting wider shrinks
/// the transfer but pays the `γ(D)` synchronization factor — the
/// trade-off behind the best-striping-unit curves of Figures 7/9/11.
pub fn optimal_fan_out(r: f64, max_d: u32, t: impl Fn(f64) -> f64) -> u32 {
    assert!(max_d > 0);
    (1..=max_d)
        .min_by(|&a, &b| {
            striped_response_time(r, a, &t)
                .partial_cmp(&striped_response_time(r, b, &t))
                .expect("finite response times")
        })
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stylized T(r): positioning cost + linear transfer.
    fn t(blocks: f64) -> f64 {
        5.4 + 0.074 * blocks
    }

    #[test]
    fn gamma_grows_toward_two() {
        assert_eq!(gamma_uniform(1), 1.0);
        let mut prev = 0.0;
        for d in 1..64 {
            let g = gamma_uniform(d);
            assert!(g > prev && g < 2.0);
            prev = g;
        }
    }

    #[test]
    fn small_requests_prefer_one_disk() {
        // Positioning dominates a 4-block request: never split it.
        assert_eq!(optimal_fan_out(4.0, 8, t), 1);
    }

    #[test]
    fn huge_requests_prefer_wide_stripes() {
        // 16 MB request: transfer dominates, split wide.
        let d = optimal_fan_out(4096.0, 8, t);
        assert!(d >= 4, "fan-out {d}");
    }

    #[test]
    fn response_time_identity_at_d1() {
        assert!((striped_response_time(100.0, 1, t) - t(100.0)).abs() < 1e-12);
    }

    #[test]
    fn crossover_is_monotone_in_r() {
        // The optimal fan-out never decreases as requests grow.
        let mut prev = 1;
        for r in [1.0, 8.0, 32.0, 128.0, 512.0, 2048.0] {
            let d = optimal_fan_out(r, 8, t);
            assert!(d >= prev, "fan-out shrank at r={r}");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_d_panics() {
        let _ = gamma_uniform(0);
    }
}
