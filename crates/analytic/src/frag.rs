//! The expected sequential-run model behind Figure 1.
//!
//! A file of `f` blocks has `f − 1` internal boundaries; if each breaks
//! independently with probability `q`, the file splits into
//! `1 + (f−1)·q` expected runs, so the average sequential read is
//!
//! ```text
//! E[run] = f / (1 + (f − 1) · q)
//! ```
//!
//! The paper's examples: 5 % fragmentation reduces 32-block files from
//! 32 to ≈12.5 sequential blocks (−62 %) and 8-block files from 8 to
//! ≈5.9 (−29 %).

/// Expected sequential-run length of an `f`-block file under
/// per-boundary break probability `q`.
///
/// # Panics
///
/// Panics unless `f ≥ 1` and `q ∈ [0, 1]`.
///
/// # Example
///
/// ```
/// use forhdc_analytic::expected_sequential_run;
///
/// let r = expected_sequential_run(32, 0.05);
/// assert!((r - 12.55).abs() < 0.01);
/// ```
pub fn expected_sequential_run(f: u32, q: f64) -> f64 {
    assert!(f >= 1, "file must have at least one block");
    assert!(
        q.is_finite() && (0.0..=1.0).contains(&q),
        "q must be in [0,1]"
    );
    f as f64 / (1.0 + (f as f64 - 1.0) * q)
}

/// Relative sequentiality loss at fragmentation `q` (the −62 % / −29 %
/// numbers quoted in §4).
pub fn sequentiality_loss(f: u32, q: f64) -> f64 {
    1.0 - expected_sequential_run(f, q) / f as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fragmentation_is_whole_file() {
        for f in [1, 2, 8, 32] {
            assert_eq!(expected_sequential_run(f, 0.0), f as f64);
        }
    }

    #[test]
    fn full_fragmentation_is_single_blocks() {
        for f in [2u32, 8, 32] {
            assert!((expected_sequential_run(f, 1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_examples_hold() {
        // 32-block files at 5%: 32 → ~12.5, a 62% loss.
        assert!((expected_sequential_run(32, 0.05) - 12.5).abs() < 0.1);
        assert!((sequentiality_loss(32, 0.05) - 0.61).abs() < 0.02);
        // 8-block files at 5%: 8 → ~5.9, a 29% loss.
        assert!((expected_sequential_run(8, 0.05) - 5.9).abs() < 0.05);
        assert!((sequentiality_loss(8, 0.05) - 0.26).abs() < 0.03);
    }

    #[test]
    fn monotone_in_q_and_f() {
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let r = expected_sequential_run(16, q);
            assert!(r <= prev);
            prev = r;
        }
        for f in 2..64 {
            assert!(expected_sequential_run(f + 1, 0.1) > expected_sequential_run(f, 0.1));
        }
    }

    #[test]
    fn single_block_file_immune() {
        assert_eq!(expected_sequential_run(1, 0.5), 1.0);
        assert_eq!(sequentiality_loss(1, 0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn bad_q_panics() {
        let _ = expected_sequential_run(8, 1.1);
    }
}
