//! A first-order analytic prediction of Figure 3, built entirely from
//! the paper's formulas — used by the harness's `model-check` to verify
//! that the simulator and the paper's analysis agree.
//!
//! Per whole-file access of `f` blocks with per-boundary coalescing
//! probability `c`, the host issues `r = 1 + (f−1)(1−c)` requests.
//! The first misses; under blind read-ahead the controller then has the
//! whole file (one positioned op of the segment size), under FOR one
//! positioned op of `f` blocks, and with read-ahead disabled every
//! request is a positioned op. Positioned-op cost is the §2.1
//! `T(r) = seek + rot + r·S/xfer`.

use crate::utilization::{service_time_ms, ServiceParams};

/// Predicted per-file-access service costs (milliseconds of disk
/// utilization) for the three §6.2 systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Prediction {
    /// Conventional blind read-ahead (the 1.0 baseline).
    pub segm_ms: f64,
    /// FOR.
    pub for_ms: f64,
    /// Read-ahead disabled.
    pub no_ra_ms: f64,
}

impl Fig3Prediction {
    /// FOR's normalized I/O time (the Figure 3 Y value).
    pub fn for_normalized(&self) -> f64 {
        self.for_ms / self.segm_ms
    }

    /// No-RA's normalized I/O time.
    pub fn no_ra_normalized(&self) -> f64 {
        self.no_ra_ms / self.segm_ms
    }
}

/// Predicts the Figure 3 point for `file_blocks`-block files with
/// coalescing probability `coalesce` and a `ra_blocks` blind read-ahead
/// (32 for the Table 1 drive).
///
/// # Panics
///
/// Panics if `file_blocks` or `ra_blocks` is zero, or `coalesce` is
/// outside `[0, 1]`.
pub fn predict_fig3(
    file_blocks: u32,
    coalesce: f64,
    ra_blocks: u32,
    p: &ServiceParams,
) -> Fig3Prediction {
    assert!(file_blocks > 0 && ra_blocks > 0);
    assert!((0.0..=1.0).contains(&coalesce));
    let f = file_blocks as f64;
    // Host requests per file access.
    let requests = 1.0 + (f - 1.0) * (1.0 - coalesce);
    // Segm: the first miss reads a whole blind window (covering the
    // file when it fits); remaining requests hit the cache. Files
    // larger than the window need ceil(f / window) positioned ops,
    // each moving a full window.
    let positioned_ops = (f / ra_blocks as f64).ceil();
    let segm_ms = positioned_ops * service_time_ms(ra_blocks, p);
    // FOR: the same number of positioned ops, but each moves only what
    // the file justifies (min(f, window) blocks).
    let for_ms = positioned_ops * service_time_ms(file_blocks.min(ra_blocks), p);
    // No-RA: every host request is a positioned op of f/requests blocks.
    let per_req_blocks = (f / requests).ceil().max(1.0) as u32;
    let no_ra_ms = requests * service_time_ms(per_req_blocks, p);
    Fig3Prediction {
        segm_ms,
        for_ms,
        no_ra_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ServiceParams {
        ServiceParams::ultrastar_36z15()
    }

    #[test]
    fn sixteen_kb_point_matches_the_papers_forty_percent() {
        // 4-block files, 87% coalescing: FOR around 0.6 normalized.
        let pred = predict_fig3(4, 0.87, 32, &p());
        let forn = pred.for_normalized();
        assert!((0.55..0.80).contains(&forn), "FOR normalized {forn}");
    }

    #[test]
    fn no_ra_crossover_exists() {
        // Small files: No-RA beats the baseline; large files: loses.
        let small = predict_fig3(2, 0.87, 32, &p());
        assert!(small.no_ra_normalized() < 1.0);
        let large = predict_fig3(32, 0.87, 32, &p());
        assert!(large.no_ra_normalized() > 1.0);
    }

    #[test]
    fn for_converges_to_segm_at_window_size() {
        let pred = predict_fig3(32, 0.87, 32, &p());
        assert!((pred.for_normalized() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_coalescing_makes_no_ra_optimal_for_small_files() {
        let pred = predict_fig3(4, 1.0, 32, &p());
        // One request per file: No-RA == FOR.
        assert!((pred.no_ra_ms - pred.for_ms).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_file_size() {
        let mut prev = 0.0;
        for f in [1u32, 2, 4, 8, 16, 32] {
            let n = predict_fig3(f, 0.87, 32, &p()).for_normalized();
            assert!(n >= prev - 1e-9, "FOR normalized not monotone at {f}");
            prev = n;
        }
    }
}
