//! Offline stand-in for the `rand` crate (rand 0.8 API subset).
//!
//! The build environment has no registry access, so this in-tree crate
//! supplies the surface the workspace actually uses: [`Rng`] with
//! `gen` / `gen_bool` / `gen_range`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed. Note
//! that its streams are **not** the same as upstream `rand`'s
//! ChaCha-based `StdRng`; every seed-dependent expectation in this
//! repository is calibrated against this generator.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: floats are
    /// uniform in `[0, 1)`, integers and `bool` uniform over their
    /// domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain (the subset
/// of rand's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as u128).wrapping_sub(low as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full u64 domain
                }
                low.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        low + f64::sample(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "gen_range: empty range {low}..={high}");
        low + f64::sample(rng) * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion (Blackman & Vigna). Not the
    /// upstream-`rand` ChaCha `StdRng` — streams differ.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random permutation of slices (the `shuffle` subset of rand's
    /// `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u32..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&c));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1u8, 2, 3];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
