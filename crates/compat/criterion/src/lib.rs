//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — as a simple wall-clock timer: each benchmark
//! is warmed up briefly, then timed for a fixed budget, and the mean
//! time per iteration is printed as `<id> ... <time>/iter`. No
//! statistics, baselines, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (set by [`Bencher::iter`]).
    mean_ns: f64,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly within the budget and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed runs.
        for _ in 0..3 {
            black_box(f());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < self.budget || iters == 0 {
            black_box(f());
            iters += 1;
        }
        self.mean_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            budget: self.budget,
        };
        f(&mut b);
        println!("{id:<50} {:>12}/iter", human(b.mean_ns));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`<group>/<id>` naming).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed time budget
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; see [`BenchmarkGroup::sample_size`].
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_chains() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut ran = 0u32;
        c.bench_function("stub/one", |b| b.iter(|| ran += 1))
            .bench_function("stub/two", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran > 0, "the benchmarked closure must actually run");
    }

    #[test]
    fn groups_prefix_names_and_accept_tuning() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn human_units() {
        assert!(human(500.0).ends_with("ns"));
        assert!(human(5_000.0).ends_with("µs"));
        assert!(human(5_000_000.0).ends_with("ms"));
        assert!(human(5e9).ends_with(" s"));
    }
}
