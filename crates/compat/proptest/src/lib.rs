//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace's
//! property tests use: the [`proptest!`] macro, `prop_assert*!`,
//! [`prop_oneof!`], [`any`], range / tuple / vec strategies,
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` independently sampled inputs,
//! deterministically derived from the test's name, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case
//! reports its case index and seed rather than a minimized input.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Deterministic per-test random source.

    use super::*;

    /// FNV-1a 64-bit, used to derive stable seeds from test names.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The random source handed to strategies.
    #[derive(Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seed derived from a test name and case index: stable across
        /// runs, distinct across tests and cases.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let seed =
                fnv1a(test_name.as_bytes()) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub(crate) fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

use test_runner::TestRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulator
        // properties fast while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating an [`Arbitrary`] type from a closure.
pub struct ArbStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for ArbStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = ArbStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbStrategy(|rng| rng.rng().gen())
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`).

    pub mod collection {
        //! Collection strategies.

        use super::super::{Strategy, TestRng};
        use rand::Rng as _;
        use std::ops::Range;

        /// Strategy for `Vec`s of `element` with length drawn from
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.rng().gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling helper types.

        use super::super::{ArbStrategy, Arbitrary};
        use rand::Rng as _;

        /// An opaque index into a collection whose size is only known
        /// at use time.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `0..len`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            type Strategy = ArbStrategy<Index>;
            fn arbitrary() -> Self::Strategy {
                ArbStrategy(|rng| Index(rng.rng().gen()))
            }
        }
    }
}

/// A uniform choice between boxed alternative strategies (the
/// [`prop_oneof!`] backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Stub `prop_assert!`: plain `assert!` (panics instead of returning a
/// `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Stub `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Stub `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block: zero or more `#[test]` functions whose
/// arguments are drawn from strategies, each run
/// [`ProptestConfig::cases`] times with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest stub: {} failed at case {case}/{} \
                         (deterministic; re-run reproduces it; no shrinking)",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*`.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let strat = prop::collection::vec(0u8..5, 2..7);
        let mut rng = TestRng::for_case("vec_len", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| 'a'),
            (0u32..1).prop_map(|_| 'b'),
            (0u32..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let strat = prop::collection::vec(0u64..1_000, 1..50);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        let c = strat.generate(&mut TestRng::for_case("det", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn index_projects_in_bounds() {
        let strat = any::<prop::sample::Index>();
        let mut rng = TestRng::for_case("index", 0);
        for len in [1usize, 2, 17, 1000] {
            let i = strat.generate(&mut rng);
            assert!(i.index(len) < len);
        }
    }

    // The macro itself, end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_arguments(x in 0u32..50, v in prop::collection::vec(0u8..3, 0..10)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 10);
            prop_assert_eq!(v.iter().filter(|&&b| b > 2).count(), 0);
        }
    }
}
