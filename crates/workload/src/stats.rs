//! Trace summaries (the statistics §6.3 reports per workload).

use std::fmt;

use crate::trace::Trace;

/// Headline statistics of a disk-level trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of disk requests.
    pub requests: usize,
    /// Distinct blocks touched.
    pub distinct_blocks: u64,
    /// Footprint (one past the highest block), in blocks.
    pub footprint_blocks: u64,
    /// Footprint in bytes.
    pub footprint_bytes: u64,
    /// Mean request size in KBytes.
    pub mean_request_kb: f64,
    /// Write fraction.
    pub write_fraction: f64,
    /// Accesses to the single most-accessed block (the paper reports
    /// 88 / 78 / 90 for its Web / proxy / file traces).
    pub max_block_accesses: u32,
}

/// Summarizes `trace` given the block size in bytes.
///
/// # Example
///
/// ```
/// use forhdc_workload::{stats::summarize, SyntheticWorkload};
///
/// let wl = SyntheticWorkload::builder().requests(100).files(500).seed(1).build();
/// let s = summarize(&wl.trace, 4096);
/// assert_eq!(s.requests, wl.trace.len());
/// assert!(s.max_block_accesses >= 1);
/// ```
pub fn summarize(trace: &Trace, block_bytes: u32) -> TraceSummary {
    let counts = trace.block_access_counts();
    let distinct = counts.iter().filter(|&&c| c > 0).count() as u64;
    let max = counts.iter().copied().max().unwrap_or(0);
    TraceSummary {
        requests: trace.len(),
        distinct_blocks: distinct,
        footprint_blocks: trace.footprint_blocks(),
        footprint_bytes: trace.footprint_blocks() * block_bytes as u64,
        mean_request_kb: trace.mean_request_blocks() * block_bytes as f64 / 1024.0,
        write_fraction: trace.write_fraction(),
        max_block_accesses: max,
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, {:.2} GB footprint, {:.1} KB mean request, {:.0}% writes, hottest block {}x",
            self.requests,
            self.footprint_bytes as f64 / 1e9,
            self.mean_request_kb,
            self.write_fraction * 100.0,
            self.max_block_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRequest;
    use forhdc_sim::{LogicalBlock, ReadWrite};

    #[test]
    fn summary_of_small_trace() {
        let t = Trace::new(vec![
            TraceRequest {
                start: LogicalBlock::new(0),
                nblocks: 2,
                kind: ReadWrite::Read,
            },
            TraceRequest {
                start: LogicalBlock::new(1),
                nblocks: 2,
                kind: ReadWrite::Write,
            },
        ]);
        let s = summarize(&t, 4096);
        assert_eq!(s.requests, 2);
        assert_eq!(s.distinct_blocks, 3);
        assert_eq!(s.footprint_blocks, 3);
        assert_eq!(s.footprint_bytes, 3 * 4096);
        assert!((s.mean_request_kb - 8.0).abs() < 1e-9);
        assert!((s.write_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.max_block_accesses, 2);
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = summarize(&Trace::default(), 4096);
        assert_eq!(s.requests, 0);
        assert_eq!(s.max_block_accesses, 0);
        assert_eq!(s.distinct_blocks, 0);
    }

    #[test]
    fn display_mentions_requests() {
        let s = summarize(&Trace::default(), 4096);
        assert!(s.to_string().contains("0 requests"));
    }
}
