//! Small numeric helpers: deterministic normal and log-normal sampling
//! (Box–Muller over the crate's uniform RNG — `rand_distr` is not in
//! the approved dependency set).

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (ln(0) = -inf).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one log-normal sample with the given *arithmetic mean* and
/// log-space standard deviation `sigma` (`μ = ln(mean) − σ²/2`).
///
/// # Panics
///
/// Panics if `mean` is not positive or `sigma` is negative.
pub fn lognormal_with_mean<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mu = mean.ln() - sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples a file size in blocks: log-normal with the given mean (in
/// blocks), clamped to `1..=max_blocks`.
///
/// # Panics
///
/// Panics if `mean_blocks` is not positive or `max_blocks` is zero.
pub fn sample_file_blocks<R: Rng + ?Sized>(
    rng: &mut R,
    mean_blocks: f64,
    sigma: f64,
    max_blocks: u32,
) -> u32 {
    assert!(max_blocks > 0);
    let x = lognormal_with_mean(rng, mean_blocks, sigma);
    (x.round() as u64).clamp(1, max_blocks as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let target = 6.0;
        let mean = (0..n)
            .map(|_| lognormal_with_mean(&mut rng, target, 1.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - target).abs() / target < 0.03, "mean {mean}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert!((lognormal_with_mean(&mut rng, 4.0, 0.0) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn file_blocks_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let b = sample_file_blocks(&mut rng, 6.0, 2.0, 64);
            assert!((1..=64).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn bad_mean_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = lognormal_with_mean(&mut rng, 0.0, 1.0);
    }
}
