//! Bradford/Zipf popularity sampling.
//!
//! The paper draws request targets from a "Bradford Zipf distribution"
//! with coefficient α (default 0.4 for the synthetics; Figure 2 fits
//! the real disk logs with α ≈ 0.43). Rank `i` (1-based) is requested
//! with probability proportional to `1 / i^α`; α = 0 degenerates to the
//! uniform distribution and larger α concentrates mass on few ranks.

use rand::Rng;

/// A sampler over ranks `0..n` with Zipf(α) popularity.
///
/// Construction is `O(n)`; sampling is `O(log n)` (binary search over
/// the precomputed CDF).
///
/// # Example
///
/// ```
/// use forhdc_workload::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = ZipfSampler::new(1000, 0.8);
/// let mut rng = StdRng::seed_from_u64(1);
/// let first = z.sample(&mut rng);
/// assert!(first < 1000);
/// // Rank 0 is the most popular.
/// assert!(z.probability(0) > z.probability(999));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    alpha: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with coefficient `alpha ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true — construction
    /// rejects `n = 0` — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The coefficient α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of rank `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Accumulated probability of the `k` most popular ranks — the
    /// `z_α(H, N)` of section 5 (expected HDC hit rate for `H` pinned
    /// blocks). `k` larger than `n` saturates at 1.
    pub fn cumulative(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }

    /// Draws one rank (0-based; rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alpha_zero_is_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        for i in 0..100 {
            assert!((z.probability(i) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for alpha in [0.0, 0.4, 0.43, 1.0, 2.0] {
            let z = ZipfSampler::new(1000, alpha);
            let sum: f64 = (0..1000).map(|i| z.probability(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha {alpha}: sum {sum}");
            assert!((z.cumulative(1000) - 1.0).abs() < 1e-12);
            assert!((z.cumulative(5000) - 1.0).abs() < 1e-12);
            assert_eq!(z.cumulative(0), 0.0);
        }
    }

    #[test]
    fn higher_alpha_concentrates_mass() {
        let lo = ZipfSampler::new(10_000, 0.2);
        let hi = ZipfSampler::new(10_000, 1.0);
        assert!(hi.cumulative(100) > lo.cumulative(100));
        assert!(hi.probability(0) > lo.probability(0));
    }

    #[test]
    fn empirical_frequencies_match() {
        let z = ZipfSampler::new(50, 0.8);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 10, 49] {
            let emp = counts[i] as f64 / n as f64;
            let exp = z.probability(i);
            assert!((emp - exp).abs() < 0.01, "rank {i}: {emp} vs {exp}");
        }
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let z = ZipfSampler::new(500, 0.43);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = ZipfSampler::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_panics() {
        let _ = ZipfSampler::new(10, -0.1);
    }
}
