//! Statistically calibrated clones of the paper's three real server
//! workloads.
//!
//! The original traces (Rutgers Web, AT&T Hummingbird proxy, HP file
//! server) are proprietary; the clones reproduce every statistic §6.3
//! reports:
//!
//! | | Web | Proxy | File |
//! |---|---|---|---|
//! | server requests | 1.7 M | 750 K | 9.5 M |
//! | distinct files | ~70 K | 440 K | ~30 K |
//! | footprint | 1.7 GB | 4.9 GB | 16 GB |
//! | mean requested size | 21.5 KB | 8.3 KB | 3.1 KB (partial) |
//! | disk-level writes | 2 % | 19 % | 20 % |
//! | concurrent streams | 16 | 128 | 128 |
//! | disk-level popularity | Zipf α ≈ 0.43 (Figure 2) | | |
//!
//! The traces fed to the simulator are *disk-level* logs (below the
//! buffer cache), exactly like the paper's instrumented-kernel logs, so
//! the clone generates them directly at a scaled-down request count
//! (`scale`) — the paper replays its logs at maximum speed, so I/O time
//! scales linearly with log length and the comparison *shape* is
//! preserved.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use forhdc_layout::{FileId, LayoutBuilder};
use forhdc_sim::ReadWrite;

use crate::synth::emit_file_access;
use crate::trace::{Trace, TraceRequest, Workload};
use crate::util::sample_file_blocks;
use crate::zipf::ZipfSampler;

/// Which of the paper's three servers a spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// PRESS Web server replaying the Rutgers trace.
    Web,
    /// Web proxy replaying the AT&T Hummingbird trace.
    Proxy,
    /// File server replaying the HP Labs trace.
    File,
}

impl ServerKind {
    /// Short lowercase label (`web`, `proxy`, `file`).
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Web => "web",
            ServerKind::Proxy => "proxy",
            ServerKind::File => "file",
        }
    }
}

impl std::fmt::Display for ServerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Calibration parameters of one server clone.
#[derive(Debug, Clone)]
pub struct ServerWorkloadSpec {
    /// Which server this models.
    pub kind: ServerKind,
    /// Disk-level requests to generate (already scaled for simulation
    /// runtime; see [`ServerWorkloadSpec::scale`]).
    pub requests: usize,
    /// Distinct files in the footprint.
    pub files: usize,
    /// Mean file size in 4-KByte blocks (log-normal).
    pub mean_file_blocks: f64,
    /// Log-space standard deviation of the file-size distribution.
    pub sigma: f64,
    /// File-size cap in blocks.
    pub max_file_blocks: u32,
    /// Disk-level popularity skew (Figure 2 fits α ≈ 0.43).
    pub zipf_alpha: f64,
    /// Fraction of disk accesses that are writes.
    pub write_fraction: f64,
    /// Request-coalescing probability (the paper measured 87 %).
    pub coalesce_prob: f64,
    /// Concurrent I/O streams.
    pub streams: u32,
    /// `true` when accesses read whole files (Web, proxy); `false` when
    /// requests touch a fraction of the file (file server, mean
    /// 3.1 KBytes).
    pub whole_file: bool,
    /// Mean partial-access size in blocks (only when `!whole_file`).
    pub mean_access_blocks: f64,
    /// Layout fragmentation probability.
    pub fragmentation: f64,
    /// Session continuation probability: each access continues its
    /// stream's current *session* (a burst of accesses confined to a
    /// small spatial region, e.g. one client fetching a page's files or
    /// a directory scan) with this probability, and starts a fresh
    /// session at a Zipf-drawn base otherwise. Real server traces have
    /// this burst locality, and it is what makes large striping units
    /// lose load balance (§6.3: "larger striping units lead to disk
    /// load unbalances"): a session confined to one striping unit
    /// serializes on one disk.
    pub locality: f64,
    /// Spatial extent of a session, in layout-order files.
    pub locality_window: u32,
    /// Popularity clustering: Zipf ranks are assigned to files in
    /// spatially contiguous groups of this many files, so hot files sit
    /// next to each other on disk (popular site sections / directories
    /// are allocated together). 1 disables clustering.
    pub hot_cluster_files: u32,
    /// Non-stationary popularity: probability that a fresh session
    /// starts inside the current *epoch hot set* (the handful of
    /// popular regions "of the hour"). Real disk logs have this
    /// structure — the same blocks re-miss the buffer cache while they
    /// are hot (the premise of HDC's top-miss planning), yet the
    /// full-trace histogram stays flat. A hot set confined to a few
    /// striping units is the sustained source of large-unit load
    /// imbalance. 0 disables epochs.
    pub hot_fraction: f64,
    /// Number of files in each epoch's hot set.
    pub hot_set_files: u32,
    /// Requests per epoch (hot set re-drawn at epoch boundaries).
    pub epoch_requests: u32,
    /// Frontier writes (proxy): writes create *new* objects allocated
    /// sequentially at the end of the used space (a proxy fills its
    /// cache with newly fetched URLs), instead of updating existing
    /// files. At large striping units the frontier unit lives on one
    /// disk, so write bursts serialize there — a real source of the
    /// §6.3 large-unit load imbalance.
    pub frontier_writes: bool,
    /// Fraction of reads that target recently written objects (a
    /// proxy's hottest content is what it just fetched). Only
    /// meaningful with `frontier_writes`.
    pub recent_read_fraction: f64,
    /// How many of the most recently written objects count as
    /// "recent".
    pub recent_window: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ServerWorkloadSpec {
    /// The Web-server clone (Rutgers trace / PRESS, §6.3).
    pub fn web() -> Self {
        ServerWorkloadSpec {
            kind: ServerKind::Web,
            requests: 120_000,
            files: 70_000,
            mean_file_blocks: 6.0, // 1.7 GB / 70 K files ≈ 24 KB; requested mean 21.5 KB
            sigma: 1.3,
            max_file_blocks: 2_048,
            zipf_alpha: 0.60,
            write_fraction: 0.02,
            coalesce_prob: 0.87,
            streams: 16,
            whole_file: true,
            mean_access_blocks: 0.0,
            fragmentation: 0.02,
            locality: 0.35,
            locality_window: 8,
            hot_cluster_files: 4,
            hot_fraction: 0.15,
            hot_set_files: 2_000,
            epoch_requests: 20_000,
            frontier_writes: false,
            recent_read_fraction: 0.0,
            recent_window: 0,
            seed: 0x3EB,
        }
    }

    /// The proxy-server clone (AT&T Hummingbird trace, §6.3).
    pub fn proxy() -> Self {
        ServerWorkloadSpec {
            kind: ServerKind::Proxy,
            requests: 150_000,
            files: 440_000,
            mean_file_blocks: 2.7, // 4.9 GB / 440 K files; requested mean 8.3 KB
            sigma: 1.2,
            max_file_blocks: 1_024,
            zipf_alpha: 0.65,
            write_fraction: 0.19,
            coalesce_prob: 0.87,
            streams: 128,
            whole_file: true,
            mean_access_blocks: 0.0,
            fragmentation: 0.03,
            locality: 0.3,
            locality_window: 6,
            hot_cluster_files: 4,
            hot_fraction: 0.10,
            hot_set_files: 3_000,
            epoch_requests: 25_000,
            frontier_writes: true,
            recent_read_fraction: 0.25,
            recent_window: 400,
            seed: 0x9047,
        }
    }

    /// The file-server clone (HP Labs trace, §6.3). Requests touch
    /// fractions of files (mean 3.1 KBytes), not whole files.
    pub fn file_server() -> Self {
        ServerWorkloadSpec {
            kind: ServerKind::File,
            requests: 250_000,
            files: 30_000,
            mean_file_blocks: 133.0, // 16 GB / 30 K files
            sigma: 1.4,
            max_file_blocks: 16_384,
            zipf_alpha: 0.43,
            write_fraction: 0.20,
            coalesce_prob: 0.87,
            streams: 128,
            whole_file: false,
            mean_access_blocks: 1.0, // 3.1 KB < one 4-KB block
            fragmentation: 0.03,
            locality: 0.2,
            locality_window: 4,
            hot_cluster_files: 1,
            hot_fraction: 0.08,
            hot_set_files: 1_000,
            epoch_requests: 30_000,
            frontier_writes: false,
            recent_read_fraction: 0.0,
            recent_window: 0,
            seed: 0xF17E,
        }
    }

    /// Scales the request count (e.g. `0.1` for a quick run). Minimum
    /// one request.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        self.requests = ((self.requests as f64 * factor).round() as usize).max(1);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the layout and disk-level trace.
    pub fn generate(&self) -> ServerWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5E4E_1253);
        // File sizes: log-normal around the calibrated mean.
        let sizes: Vec<u32> = (0..self.files)
            .map(|_| {
                sample_file_blocks(
                    &mut rng,
                    self.mean_file_blocks,
                    self.sigma,
                    self.max_file_blocks,
                )
            })
            .collect();
        let base_layout = LayoutBuilder::new()
            .fragmentation(self.fragmentation)
            .seed(self.seed)
            .build(&sizes);
        // Frontier area: pre-plan the objects future writes will
        // allocate, laid out sequentially past the existing space.
        let expected_writes = if self.frontier_writes {
            (self.requests as f64 * self.write_fraction * 1.10).ceil() as usize + 8
        } else {
            0
        };
        let layout = {
            let mut extents: Vec<Vec<forhdc_layout::Extent>> = (0..self.files as u32)
                .map(|f| base_layout.extents(FileId::new(f)).to_vec())
                .collect();
            let mut cursor = base_layout.total_blocks();
            for _ in 0..expected_writes {
                let len = sample_file_blocks(
                    &mut rng,
                    self.mean_file_blocks,
                    self.sigma,
                    self.max_file_blocks,
                );
                extents.push(vec![forhdc_layout::Extent {
                    start: forhdc_sim::LogicalBlock::new(cursor),
                    len,
                    file_offset: 0,
                }]);
                cursor += len as u64;
            }
            forhdc_layout::FileMap::from_extents(extents)
        };
        let zipf = ZipfSampler::new(self.files, self.zipf_alpha);
        // Spatial order: files sorted by their first block's position,
        // so "nearby in this order" means "physically adjacent".
        let mut spatial: Vec<u32> = (0..self.files as u32)
            .filter(|&f| !layout.extents(FileId::new(f)).is_empty())
            .collect();
        spatial.sort_by_key(|&f| layout.extents(FileId::new(f))[0].start);
        let mut pos_of = vec![0u32; self.files];
        for (pos, &f) in spatial.iter().enumerate() {
            pos_of[f as usize] = pos as u32;
        }
        // Popularity ↔ position correlation: consecutive Zipf ranks map
        // to spatially contiguous clusters of files, in shuffled
        // cluster order.
        let cluster = self.hot_cluster_files.max(1) as usize;
        let mut cluster_ids: Vec<usize> = (0..spatial.len().div_ceil(cluster)).collect();
        cluster_ids.shuffle(&mut rng);
        let mut rank_to_file: Vec<u32> = Vec::with_capacity(spatial.len());
        for c in cluster_ids {
            let end = ((c + 1) * cluster).min(spatial.len());
            rank_to_file.extend_from_slice(&spatial[c * cluster..end]);
        }

        let mut requests = Vec::with_capacity(self.requests);
        let mut job_lens = Vec::with_capacity(self.requests);
        // One active session per stream, interleaved at random — the
        // in-flight window of the replay then covers ~`streams`
        // concurrent spatial regions, as in a real server. A session
        // *scans* distinct physically adjacent files (a client fetching
        // a page's resources, a directory walk): re-reads of the same
        // file within a burst would be absorbed by the buffer cache and
        // never reach the disk, so sessions visit each file once.
        let w = self.locality_window.max(1);
        // (base position in spatial order, remaining offsets to visit
        // in shuffled order — distinct files, non-sequential arrival)
        let mut sessions: Vec<Option<(u32, Vec<u32>)>> = vec![None; self.streams.max(1) as usize];
        // Epoch hot set: spatial positions of the currently hot files.
        let epoch = self.epoch_requests.max(1) as usize;
        let hot_clusters = (self.hot_set_files.max(1)).div_ceil(w) as usize;
        let mut hot_positions: Vec<u32> = Vec::new();
        let mut frontier_next = 0usize;
        for i in 0..self.requests {
            if self.hot_fraction > 0.0 && i % epoch == 0 {
                hot_positions.clear();
                for _ in 0..hot_clusters {
                    // Uniform bases: hot sets churn, so the full-trace
                    // histogram stays as flat as Figure 2's.
                    let base = rng.gen_range(0..spatial.len() as u32);
                    for k in 0..self.hot_set_files.min(w.max(1) * hot_clusters as u32)
                        / hot_clusters as u32
                    {
                        hot_positions.push((base + k) % spatial.len() as u32);
                    }
                }
            }
            // Frontier writes allocate the next future object; recent
            // reads target the most recently written ones.
            if self.frontier_writes
                && rng.gen_bool(self.write_fraction.min(1.0))
                && (self.files + frontier_next) < layout.file_count() as usize
            {
                let f = FileId::new((self.files + frontier_next) as u32);
                frontier_next += 1;
                let before = requests.len();
                emit_file_access(
                    &layout,
                    f,
                    ReadWrite::Write,
                    self.coalesce_prob,
                    &mut rng,
                    &mut requests,
                );
                if requests.len() > before {
                    job_lens.push((requests.len() - before) as u32);
                }
                continue;
            }
            if self.frontier_writes
                && frontier_next > 0
                && self.recent_read_fraction > 0.0
                && rng.gen_bool(self.recent_read_fraction)
            {
                let window = (self.recent_window.max(1) as usize).min(frontier_next);
                let pick = frontier_next - 1 - rng.gen_range(0..window);
                let f = FileId::new((self.files + pick) as u32);
                let before = requests.len();
                emit_file_access(
                    &layout,
                    f,
                    ReadWrite::Read,
                    self.coalesce_prob,
                    &mut rng,
                    &mut requests,
                );
                if requests.len() > before {
                    job_lens.push((requests.len() - before) as u32);
                }
                continue;
            }
            let slot = rng.gen_range(0..sessions.len());
            let continued = match &mut sessions[slot] {
                Some((base, remaining))
                    if !remaining.is_empty()
                        && self.locality > 0.0
                        && rng.gen_bool(self.locality) =>
                {
                    let off = remaining.pop().expect("checked non-empty");
                    let pos = (*base as u64 + off as u64) % spatial.len() as u64;
                    Some(FileId::new(spatial[pos as usize]))
                }
                _ => None,
            };
            let file = match continued {
                Some(f) => f,
                None => {
                    // Fresh session: inside the epoch hot set with
                    // probability `hot_fraction`, else a Zipf draw.
                    let pos = if !hot_positions.is_empty()
                        && self.hot_fraction > 0.0
                        && rng.gen_bool(self.hot_fraction)
                    {
                        hot_positions[rng.gen_range(0..hot_positions.len())]
                    } else {
                        pos_of[rank_to_file[zipf.sample(&mut rng)] as usize]
                    };
                    let mut remaining: Vec<u32> = (1..w).collect();
                    remaining.shuffle(&mut rng);
                    sessions[slot] = Some((pos, remaining));
                    FileId::new(spatial[pos as usize])
                }
            };
            let kind = if !self.frontier_writes
                && self.write_fraction > 0.0
                && rng.gen_bool(self.write_fraction)
            {
                ReadWrite::Write
            } else {
                ReadWrite::Read
            };
            let before = requests.len();
            if self.whole_file {
                emit_file_access(
                    &layout,
                    file,
                    kind,
                    self.coalesce_prob,
                    &mut rng,
                    &mut requests,
                );
            } else {
                self.emit_partial_access(&layout, file, kind, &mut rng, &mut requests);
            }
            if requests.len() > before {
                job_lens.push((requests.len() - before) as u32);
            }
        }
        ServerWorkload {
            workload: Workload {
                name: format!("{}-server", self.kind),
                layout,
                trace: Trace::with_jobs(requests, job_lens),
                streams: self.streams,
            },
            spec: self.clone(),
        }
    }

    /// Emits one partial-file access: a short run at a random offset.
    fn emit_partial_access<R: Rng + ?Sized>(
        &self,
        layout: &forhdc_layout::FileMap,
        file: FileId,
        kind: ReadWrite,
        rng: &mut R,
        out: &mut Vec<TraceRequest>,
    ) {
        let fsize = layout.file_blocks(file);
        if fsize == 0 {
            return;
        }
        // Geometric-ish access length with the calibrated mean.
        let p = 1.0 / self.mean_access_blocks.max(1.0);
        let mut len = 1u64;
        while len < fsize && rng.gen_bool(1.0 - p) {
            len += 1;
        }
        let offset = rng.gen_range(0..=(fsize - len));
        // Walk the file's extents: the access may straddle extent
        // boundaries, in which case it splits (no logical contiguity).
        let mut emitted = 0u64;
        while emitted < len {
            let Some(start_block) = layout.block_at(file, offset + emitted) else {
                break;
            };
            // Extend while logically contiguous.
            let mut run = 1u64;
            while emitted + run < len {
                match layout.block_at(file, offset + emitted + run) {
                    Some(b) if b == start_block.offset(run) => run += 1,
                    _ => break,
                }
            }
            out.push(TraceRequest {
                start: start_block,
                nblocks: run as u32,
                kind,
            });
            emitted += run;
        }
    }
}

/// A generated server clone: the spec used and the simulator input.
#[derive(Debug, Clone)]
pub struct ServerWorkload {
    /// The calibration parameters.
    pub spec: ServerWorkloadSpec,
    /// The simulator input (layout + trace + streams).
    pub workload: Workload,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ServerKind) -> ServerWorkload {
        match kind {
            ServerKind::Web => ServerWorkloadSpec::web(),
            ServerKind::Proxy => ServerWorkloadSpec::proxy(),
            ServerKind::File => ServerWorkloadSpec::file_server(),
        }
        .scale(0.02)
        .generate()
    }

    #[test]
    fn web_clone_statistics() {
        let s = quick(ServerKind::Web);
        let wf = s.workload.trace.write_fraction();
        assert!((wf - 0.02).abs() < 0.01, "write fraction {wf}");
        assert_eq!(s.workload.streams, 16);
        // Footprint near 1.7 GB: 70 K files × ~6 blocks × 4 KB.
        let gb = s.workload.layout.total_blocks() as f64 * 4096.0 / 1e9;
        assert!((1.2..2.4).contains(&gb), "web footprint {gb} GB");
    }

    #[test]
    fn proxy_clone_statistics() {
        let s = quick(ServerKind::Proxy);
        let wf = s.workload.trace.write_fraction();
        assert!((wf - 0.19).abs() < 0.03, "write fraction {wf}");
        assert_eq!(s.workload.streams, 128);
        let gb = s.workload.layout.total_blocks() as f64 * 4096.0 / 1e9;
        assert!((3.5..6.5).contains(&gb), "proxy footprint {gb} GB");
    }

    #[test]
    fn file_clone_statistics() {
        let s = quick(ServerKind::File);
        let wf = s.workload.trace.write_fraction();
        assert!((wf - 0.20).abs() < 0.03, "write fraction {wf}");
        // Partial accesses: mean request size close to one block.
        let mean = s.workload.trace.mean_request_blocks();
        assert!(mean < 2.0, "file-server mean request {mean} blocks");
        let gb = s.workload.layout.total_blocks() as f64 * 4096.0 / 1e9;
        assert!((10.0..24.0).contains(&gb), "file footprint {gb} GB");
    }

    #[test]
    fn scale_changes_request_count_only() {
        let full = ServerWorkloadSpec::web();
        let tenth = ServerWorkloadSpec::web().scale(0.1);
        assert_eq!(tenth.requests, full.requests / 10);
        assert_eq!(tenth.files, full.files);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ServerWorkloadSpec::web().scale(0.01).generate();
        let b = ServerWorkloadSpec::web().scale(0.01).generate();
        assert_eq!(a.workload.trace.requests(), b.workload.trace.requests());
    }

    #[test]
    fn partial_access_never_exceeds_file() {
        let s = quick(ServerKind::File);
        for r in s.workload.trace.requests() {
            let owner = s
                .workload
                .layout
                .owner(r.start)
                .expect("request into a file");
            let fsize = s.workload.layout.file_blocks(owner.file);
            assert!(owner.offset + (r.nblocks as u64) <= fsize + r.nblocks as u64);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = ServerWorkloadSpec::web().scale(0.0);
    }
}
