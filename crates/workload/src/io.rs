//! Plain-text serialization of traces and layouts.
//!
//! The formats are deliberately trivial (one record per line,
//! whitespace-separated) so real disk logs — e.g. from `blktrace` or an
//! instrumented kernel, which is how the paper captured its inputs —
//! can be converted with a few lines of awk and replayed through the
//! simulator.
//!
//! Trace format (`#forhdc-trace v1`):
//!
//! ```text
//! #forhdc-trace v1
//! <start_block> <nblocks> <R|W> <job_id>
//! ```
//!
//! Layout format (`#forhdc-layout v1`):
//!
//! ```text
//! #forhdc-layout v1
//! <file_id> <start_block> <len> <file_offset>
//! ```

use std::fmt;
use std::io::{BufRead, Write};

use forhdc_layout::{Extent, FileId, FileMap};
use forhdc_sim::{LogicalBlock, ReadWrite};

use crate::trace::{Trace, TraceRequest};

/// Error from parsing a trace or layout file.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from reading: I/O or parse.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse(ParseError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

/// Writes `trace` in the v1 text format. A `W: Write` can be passed as
/// `&mut w` thanks to the blanket impl.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "#forhdc-trace v1")?;
    for (job_id, job) in trace.jobs().enumerate() {
        for r in job {
            writeln!(
                w,
                "{} {} {} {}",
                r.start.index(),
                r.nblocks,
                if r.kind.is_write() { 'W' } else { 'R' },
                job_id
            )?;
        }
    }
    Ok(())
}

/// Reads a v1 trace. Blank lines and `#` comments are skipped; job ids
/// must be non-decreasing (consecutive equal ids form one job).
///
/// # Errors
///
/// Returns [`ReadError`] on I/O failure or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ReadError> {
    let mut requests: Vec<TraceRequest> = Vec::new();
    let mut job_lens: Vec<u32> = Vec::new();
    let mut last_job: Option<u64> = None;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: idx + 1,
            message,
        };
        let mut parts = line.split_whitespace();
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| err(format!("missing field: {what}")))
        };
        let start: u64 = next("start")?
            .parse()
            .map_err(|e| err(format!("bad start block: {e}")))?;
        let nblocks: u32 = next("nblocks")?
            .parse()
            .map_err(|e| err(format!("bad block count: {e}")))?;
        if nblocks == 0 {
            return Err(err("zero-length request".into()).into());
        }
        let kind = match next("kind")? {
            "R" | "r" => ReadWrite::Read,
            "W" | "w" => ReadWrite::Write,
            other => return Err(err(format!("bad kind '{other}' (want R or W)")).into()),
        };
        let job: u64 = next("job")?
            .parse()
            .map_err(|e| err(format!("bad job id: {e}")))?;
        match last_job {
            Some(j) if j == job => *job_lens.last_mut().expect("job in progress") += 1,
            Some(j) if job < j => {
                return Err(err(format!("job ids must be non-decreasing ({job} after {j})")).into())
            }
            _ => job_lens.push(1),
        }
        last_job = Some(job);
        requests.push(TraceRequest {
            start: LogicalBlock::new(start),
            nblocks,
            kind,
        });
    }
    Ok(Trace::with_jobs(requests, job_lens))
}

/// Writes `layout` in the v1 text format.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_layout<W: Write>(layout: &FileMap, mut w: W) -> std::io::Result<()> {
    writeln!(w, "#forhdc-layout v1")?;
    for f in 0..layout.file_count() {
        for e in layout.extents(FileId::new(f)) {
            writeln!(w, "{} {} {} {}", f, e.start.index(), e.len, e.file_offset)?;
        }
    }
    Ok(())
}

/// Reads a v1 layout.
///
/// # Errors
///
/// Returns [`ReadError`] on I/O failure or malformed lines.
///
/// # Panics
///
/// Panics if the extents are inconsistent (overlaps or offset gaps) —
/// the same invariants [`FileMap::from_extents`] enforces.
pub fn read_layout<R: BufRead>(r: R) -> Result<FileMap, ReadError> {
    let mut extents: Vec<Vec<Extent>> = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: idx + 1,
            message,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(err(format!("expected 4 fields, got {}", fields.len())).into());
        }
        let file: usize = fields[0]
            .parse()
            .map_err(|e| err(format!("bad file id: {e}")))?;
        let start: u64 = fields[1]
            .parse()
            .map_err(|e| err(format!("bad start: {e}")))?;
        let len: u32 = fields[2]
            .parse()
            .map_err(|e| err(format!("bad len: {e}")))?;
        let file_offset: u64 = fields[3]
            .parse()
            .map_err(|e| err(format!("bad offset: {e}")))?;
        if extents.len() <= file {
            extents.resize_with(file + 1, Vec::new);
        }
        extents[file].push(Extent {
            start: LogicalBlock::new(start),
            len,
            file_offset,
        });
    }
    Ok(FileMap::from_extents(extents))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(start: u64, n: u32, kind: ReadWrite) -> TraceRequest {
        TraceRequest {
            start: LogicalBlock::new(start),
            nblocks: n,
            kind,
        }
    }

    #[test]
    fn trace_roundtrip_preserves_jobs() {
        let trace = Trace::with_jobs(
            vec![
                req(0, 4, ReadWrite::Read),
                req(4, 2, ReadWrite::Read),
                req(100, 1, ReadWrite::Write),
            ],
            vec![2, 1],
        );
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), trace.requests());
        assert_eq!(back.job_count(), 2);
        let lens: Vec<usize> = back.jobs().map(<[TraceRequest]>::len).collect();
        assert_eq!(lens, vec![2, 1]);
    }

    #[test]
    fn trace_parse_errors_are_located() {
        let bad = "#forhdc-trace v1\n12 0 R 0\n";
        let e = read_trace(bad.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("zero-length"));

        let bad = "5 1 X 0\n";
        let e = read_trace(bad.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad kind"));

        let bad = "5 1 R 3\n6 1 R 1\n";
        let e = read_trace(bad.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-decreasing"));
    }

    #[test]
    fn trace_skips_comments_and_blanks() {
        let text = "#forhdc-trace v1\n\n# a comment\n7 2 R 0\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].start, LogicalBlock::new(7));
    }

    #[test]
    fn layout_roundtrip() {
        let layout = forhdc_layout::LayoutBuilder::new()
            .fragmentation(0.2)
            .seed(5)
            .build(&[6; 40]);
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).unwrap();
        let back = read_layout(buf.as_slice()).unwrap();
        assert_eq!(back.file_count(), layout.file_count());
        assert_eq!(back.total_blocks(), layout.total_blocks());
        for f in 0..40 {
            assert_eq!(back.extents(FileId::new(f)), layout.extents(FileId::new(f)));
        }
    }

    #[test]
    fn layout_parse_errors() {
        let e = read_layout("1 2 3\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("expected 4 fields"));
        let e = read_layout("x 2 3 4\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad file id"));
    }

    #[test]
    fn empty_inputs_give_empty_structures() {
        assert!(read_trace("".as_bytes()).unwrap().is_empty());
        assert_eq!(read_layout("".as_bytes()).unwrap().file_count(), 0);
    }
}
