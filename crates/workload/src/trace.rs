//! Disk-level access traces.
//!
//! A [`Trace`] is the stream of logical-block requests that reaches the
//! disk array — what remains *after* the application and file-system
//! buffer caches (the paper instruments Linux 2.4.18 to log exactly
//! this). Requests are replayed by the closed-loop stream driver "as
//! fast as possible" to find the maximum throughput.

use forhdc_layout::FileMap;
use forhdc_sim::{LogicalBlock, ReadWrite};

/// One logged disk access: a contiguous logical extent, read or written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// First logical block.
    pub start: LogicalBlock,
    /// Extent length in blocks.
    pub nblocks: u32,
    /// Read or write.
    pub kind: ReadWrite,
}

/// An ordered disk-access log, optionally grouped into *jobs*.
///
/// A job is the request sequence of one server-level operation (e.g.
/// all the disk requests of one whole-file read). The stream driver
/// issues a job's requests sequentially on one stream — a server
/// worker handles one file at a time — while different jobs run
/// concurrently across streams.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    requests: Vec<TraceRequest>,
    /// Length of each job; empty means every request is its own job.
    job_lens: Vec<u32>,
}

impl Trace {
    /// Creates a trace where every request is an independent job.
    pub fn new(requests: Vec<TraceRequest>) -> Self {
        Trace {
            requests,
            job_lens: Vec::new(),
        }
    }

    /// Creates a trace with explicit job grouping.
    ///
    /// # Panics
    ///
    /// Panics if the job lengths do not sum to the request count or any
    /// job is empty.
    pub fn with_jobs(requests: Vec<TraceRequest>, job_lens: Vec<u32>) -> Self {
        let total: u64 = job_lens.iter().map(|&l| l as u64).sum();
        assert_eq!(
            total,
            requests.len() as u64,
            "job lengths must cover the requests"
        );
        assert!(job_lens.iter().all(|&l| l > 0), "jobs must be non-empty");
        Trace { requests, job_lens }
    }

    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        if self.job_lens.is_empty() {
            self.requests.len()
        } else {
            self.job_lens.len()
        }
    }

    /// Iterates over the jobs as request slices.
    pub fn jobs(&self) -> impl Iterator<Item = &[TraceRequest]> + '_ {
        JobIter {
            trace: self,
            req_idx: 0,
            job_idx: 0,
        }
    }

    /// The logged requests, in arrival order.
    pub fn requests(&self) -> &[TraceRequest] {
        &self.requests
    }

    /// Per-job request counts; an empty slice means every request is
    /// its own job. Lets replay drivers index jobs as ranges over
    /// [`Trace::requests`] instead of materializing per-job queues.
    pub fn job_lens(&self) -> &[u32] {
        &self.job_lens
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total blocks accessed (with repetition).
    pub fn total_blocks(&self) -> u64 {
        self.requests.iter().map(|r| r.nblocks as u64).sum()
    }

    /// Fraction of requests that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|r| r.kind.is_write()).count() as f64
            / self.requests.len() as f64
    }

    /// Mean request size in blocks.
    pub fn mean_request_blocks(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.total_blocks() as f64 / self.requests.len() as f64
    }

    /// One-past-the-highest logical block touched (0 for an empty trace).
    pub fn footprint_blocks(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.start.index() + r.nblocks as u64)
            .max()
            .unwrap_or(0)
    }

    /// Per-block access counts over the whole trace, indexed by logical
    /// block up to the footprint. This is the raw data of Figure 2 and
    /// the input to the HDC planner ("the blocks that cause the most
    /// misses in the buffer cache").
    pub fn block_access_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.footprint_blocks() as usize];
        for r in &self.requests {
            for i in 0..r.nblocks as u64 {
                counts[(r.start.index() + i) as usize] += 1;
            }
        }
        counts
    }

    /// Access counts of the `top` most-accessed blocks, descending —
    /// the Figure 2 curve.
    pub fn popularity_curve(&self, top: usize) -> Vec<u32> {
        let mut counts = self.block_access_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.truncate(top);
        counts
    }
}

struct JobIter<'a> {
    trace: &'a Trace,
    req_idx: usize,
    job_idx: usize,
}

impl<'a> Iterator for JobIter<'a> {
    type Item = &'a [TraceRequest];

    fn next(&mut self) -> Option<&'a [TraceRequest]> {
        if self.req_idx >= self.trace.requests.len() {
            return None;
        }
        let len = if self.trace.job_lens.is_empty() {
            1
        } else {
            self.trace.job_lens[self.job_idx] as usize
        };
        let slice = &self.trace.requests[self.req_idx..self.req_idx + len];
        self.req_idx += len;
        self.job_idx += 1;
        Some(slice)
    }
}

impl FromIterator<TraceRequest> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRequest>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl Extend<TraceRequest> for Trace {
    fn extend<I: IntoIterator<Item = TraceRequest>>(&mut self, iter: I) {
        let before = self.requests.len();
        self.requests.extend(iter);
        if !self.job_lens.is_empty() {
            // Appended requests become singleton jobs.
            self.job_lens
                .extend(std::iter::repeat_n(1, self.requests.len() - before));
        }
    }
}

/// A complete simulator input: the file layout, the disk-access trace
/// over it, and the number of concurrent I/O streams replaying it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable label (appears in reports).
    pub name: String,
    /// The host file system's placement of files.
    pub layout: FileMap,
    /// The disk-access log.
    pub trace: Trace,
    /// Concurrent streams replaying the log (the paper's server worker
    /// count: 16 for the Web server, 128 for proxy and file server).
    pub streams: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(start: u64, n: u32, kind: ReadWrite) -> TraceRequest {
        TraceRequest {
            start: LogicalBlock::new(start),
            nblocks: n,
            kind,
        }
    }

    #[test]
    fn basic_statistics() {
        let t = Trace::new(vec![
            req(0, 4, ReadWrite::Read),
            req(8, 2, ReadWrite::Write),
            req(0, 4, ReadWrite::Read),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_blocks(), 10);
        assert!((t.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_request_blocks() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.footprint_blocks(), 10);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.write_fraction(), 0.0);
        assert_eq!(t.mean_request_blocks(), 0.0);
        assert_eq!(t.footprint_blocks(), 0);
        assert!(t.popularity_curve(10).is_empty());
    }

    #[test]
    fn access_counts_and_popularity() {
        let t = Trace::new(vec![
            req(0, 2, ReadWrite::Read),
            req(1, 2, ReadWrite::Read),
            req(1, 1, ReadWrite::Write),
        ]);
        assert_eq!(t.block_access_counts(), vec![1, 3, 1]);
        assert_eq!(t.popularity_curve(2), vec![3, 1]);
        assert_eq!(t.popularity_curve(10), vec![3, 1, 1]);
    }

    #[test]
    fn default_jobs_are_singletons() {
        let t = Trace::new(vec![req(0, 1, ReadWrite::Read); 3]);
        assert_eq!(t.job_count(), 3);
        let jobs: Vec<usize> = t.jobs().map(|j| j.len()).collect();
        assert_eq!(jobs, vec![1, 1, 1]);
    }

    #[test]
    fn explicit_jobs_group_requests() {
        let t = Trace::with_jobs(vec![req(0, 1, ReadWrite::Read); 5], vec![2, 1, 2]);
        assert_eq!(t.job_count(), 3);
        let jobs: Vec<usize> = t.jobs().map(|j| j.len()).collect();
        assert_eq!(jobs, vec![2, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cover the requests")]
    fn mismatched_job_lengths_panic() {
        let _ = Trace::with_jobs(vec![req(0, 1, ReadWrite::Read); 3], vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_job_panics() {
        let _ = Trace::with_jobs(vec![req(0, 1, ReadWrite::Read); 2], vec![2, 0]);
    }

    #[test]
    fn extend_keeps_job_invariant() {
        let mut t = Trace::with_jobs(vec![req(0, 1, ReadWrite::Read); 2], vec![2]);
        t.extend([req(5, 1, ReadWrite::Write)]);
        assert_eq!(t.job_count(), 2);
        assert_eq!(t.jobs().last().unwrap().len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = (0..5).map(|i| req(i, 1, ReadWrite::Read)).collect();
        assert_eq!(t.len(), 5);
        let mut t2 = t.clone();
        t2.extend([req(9, 1, ReadWrite::Write)]);
        assert_eq!(t2.len(), 6);
    }
}
