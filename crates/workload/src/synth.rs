//! The controlled synthetic workloads of section 6.2.
//!
//! Each trace contains a fixed number of requests (the paper uses
//! 10 000); every request reads (or writes) one complete file of a
//! fixed size, with the target file drawn from a Bradford/Zipf
//! distribution (default α = 0.4). Host-side request coalescing is
//! modeled per block boundary: consecutive blocks of one file access
//! are merged into a single disk request with the coalescing
//! probability (87 %, the average the paper measured on its real
//! workloads).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use forhdc_layout::{FileId, FileMap, LayoutBuilder};
use forhdc_sim::ReadWrite;

use crate::trace::{Trace, TraceRequest, Workload};
use crate::zipf::ZipfSampler;

/// Entry point for building synthetic workloads.
///
/// # Example
///
/// ```
/// use forhdc_workload::SyntheticWorkload;
///
/// let wl = SyntheticWorkload::builder()
///     .requests(1_000)
///     .file_blocks(4)       // 16-KByte files
///     .files(5_000)
///     .zipf_alpha(0.4)
///     .write_fraction(0.1)
///     .seed(7)
///     .build();
/// assert_eq!(wl.trace.requests().len() >= 1_000, true); // splits may add requests
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyntheticWorkload;

impl SyntheticWorkload {
    /// Starts a builder with the paper's defaults: 10 000 requests,
    /// 16-KByte files, Zipf α = 0.4, no writes, 87 % coalescing, no
    /// fragmentation, 128 streams.
    pub fn builder() -> SyntheticWorkloadBuilder {
        SyntheticWorkloadBuilder::default()
    }
}

/// Builder for the synthetic traces (see [`SyntheticWorkload`]).
#[derive(Debug, Clone)]
pub struct SyntheticWorkloadBuilder {
    requests: usize,
    file_blocks: u32,
    files: usize,
    zipf_alpha: f64,
    write_fraction: f64,
    coalesce_prob: f64,
    fragmentation: f64,
    align_blocks: u32,
    streams: u32,
    seed: u64,
}

impl Default for SyntheticWorkloadBuilder {
    fn default() -> Self {
        SyntheticWorkloadBuilder {
            requests: 10_000,
            file_blocks: 4,
            files: 20_000,
            zipf_alpha: 0.4,
            write_fraction: 0.0,
            coalesce_prob: 0.87,
            fragmentation: 0.0,
            align_blocks: 32,
            streams: 128,
            seed: 0,
        }
    }
}

impl SyntheticWorkloadBuilder {
    /// Number of whole-file accesses in the trace (paper: 10 000).
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// File size in 4-KByte blocks (all files identical, as in §6.2).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn file_blocks(mut self, blocks: u32) -> Self {
        assert!(blocks > 0, "files must have at least one block");
        self.file_blocks = blocks;
        self
    }

    /// Size of the file population.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn files(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one file");
        self.files = n;
        self
    }

    /// Bradford/Zipf coefficient for target selection (0 = uniform).
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Fraction of accesses that are writes, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn write_fraction(mut self, w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w));
        self.write_fraction = w;
        self
    }

    /// Probability that two consecutive blocks of one file access are
    /// coalesced into the same disk request.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn coalesce_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.coalesce_prob = p;
        self
    }

    /// Per-boundary layout fragmentation probability (see
    /// [`forhdc_layout::LayoutBuilder::fragmentation`]).
    pub fn fragmentation(mut self, q: f64) -> Self {
        self.fragmentation = q;
        self
    }

    /// Layout alignment in blocks. The paper pairs the synthetic
    /// striping unit with the largest sequential access so small files
    /// never straddle units; the default (32 blocks = the 128-KByte
    /// default unit) reproduces that. Set to 1 to disable.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn align_blocks(mut self, align: u32) -> Self {
        assert!(align > 0, "alignment must be positive");
        self.align_blocks = align;
        self
    }

    /// Concurrent I/O streams replaying the trace.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn streams(mut self, s: u32) -> Self {
        assert!(s > 0, "need at least one stream");
        self.streams = s;
        self
    }

    /// Deterministic RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the layout and trace.
    pub fn build(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_5EED);
        let sizes = vec![self.file_blocks; self.files];
        let layout = LayoutBuilder::new()
            .fragmentation(self.fragmentation)
            .align_blocks(self.align_blocks)
            .seed(self.seed)
            .build(&sizes);
        // Decorrelate popularity rank from disk position: popular files
        // should not be physically adjacent, or blind read-ahead would
        // accidentally prefetch other hot files.
        let mut rank_to_file: Vec<u32> = (0..self.files as u32).collect();
        rank_to_file.shuffle(&mut rng);
        let zipf = ZipfSampler::new(self.files, self.zipf_alpha);

        let mut requests = Vec::with_capacity(self.requests);
        let mut job_lens = Vec::with_capacity(self.requests);
        for _ in 0..self.requests {
            let file = FileId::new(rank_to_file[zipf.sample(&mut rng)]);
            let kind = if self.write_fraction > 0.0 && rng.gen_bool(self.write_fraction) {
                ReadWrite::Write
            } else {
                ReadWrite::Read
            };
            let before = requests.len();
            emit_file_access(
                &layout,
                file,
                kind,
                self.coalesce_prob,
                &mut rng,
                &mut requests,
            );
            job_lens.push((requests.len() - before) as u32);
        }
        Workload {
            name: format!(
                "synthetic(f={}blk, a={}, w={:.0}%)",
                self.file_blocks,
                self.zipf_alpha,
                self.write_fraction * 100.0
            ),
            layout,
            trace: Trace::with_jobs(requests, job_lens),
            streams: self.streams,
        }
    }
}

/// Appends the disk requests of one whole-file access: the file's
/// blocks in offset order, split at extent boundaries (non-contiguous
/// logical space cannot coalesce) and, within an extent, at each block
/// boundary with probability `1 − coalesce_prob`.
pub(crate) fn emit_file_access<R: Rng + ?Sized>(
    layout: &FileMap,
    file: FileId,
    kind: ReadWrite,
    coalesce_prob: f64,
    rng: &mut R,
    out: &mut Vec<TraceRequest>,
) {
    for extent in layout.extents(file) {
        let mut run_start = extent.start;
        let mut run_len = 1u32;
        for i in 1..extent.len {
            if coalesce_prob >= 1.0 || rng.gen_bool(coalesce_prob) {
                run_len += 1;
            } else {
                out.push(TraceRequest {
                    start: run_start,
                    nblocks: run_len,
                    kind,
                });
                run_start = extent.start.offset(i as u64);
                run_len = 1;
            }
        }
        out.push(TraceRequest {
            start: run_start,
            nblocks: run_len,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_synthetic() {
        let b = SyntheticWorkloadBuilder::default();
        assert_eq!(b.requests, 10_000);
        assert_eq!(b.file_blocks, 4);
        assert!((b.zipf_alpha - 0.4).abs() < 1e-12);
        assert!((b.coalesce_prob - 0.87).abs() < 1e-12);
    }

    #[test]
    fn perfect_coalescing_gives_one_request_per_file() {
        let wl = SyntheticWorkload::builder()
            .requests(500)
            .file_blocks(8)
            .files(1_000)
            .coalesce_prob(1.0)
            .seed(3)
            .build();
        assert_eq!(wl.trace.len(), 500);
        assert!(wl.trace.requests().iter().all(|r| r.nblocks == 8));
    }

    #[test]
    fn zero_coalescing_gives_block_requests() {
        let wl = SyntheticWorkload::builder()
            .requests(100)
            .file_blocks(4)
            .files(1_000)
            .coalesce_prob(0.0)
            .seed(3)
            .build();
        assert_eq!(wl.trace.len(), 400);
        assert!(wl.trace.requests().iter().all(|r| r.nblocks == 1));
    }

    #[test]
    fn blocks_conserved_under_partial_coalescing() {
        let wl = SyntheticWorkload::builder()
            .requests(1_000)
            .file_blocks(6)
            .files(2_000)
            .coalesce_prob(0.87)
            .seed(5)
            .build();
        assert_eq!(wl.trace.total_blocks(), 6_000);
        assert!(wl.trace.len() >= 1_000);
    }

    #[test]
    fn write_fraction_respected() {
        let wl = SyntheticWorkload::builder()
            .requests(5_000)
            .files(2_000)
            .write_fraction(0.3)
            .coalesce_prob(1.0)
            .seed(7)
            .build();
        let w = wl.trace.write_fraction();
        assert!((w - 0.3).abs() < 0.03, "write fraction {w}");
    }

    #[test]
    fn zipf_concentrates_accesses() {
        let wl = |alpha: f64| {
            SyntheticWorkload::builder()
                .requests(20_000)
                .files(5_000)
                .zipf_alpha(alpha)
                .coalesce_prob(1.0)
                .seed(11)
                .build()
        };
        let top_uniform = wl(0.0).trace.popularity_curve(1)[0];
        let top_skewed = wl(1.0).trace.popularity_curve(1)[0];
        assert!(
            top_skewed > 4 * top_uniform,
            "alpha=1 top {top_skewed} vs uniform top {top_uniform}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            SyntheticWorkload::builder()
                .requests(200)
                .files(500)
                .seed(seed)
                .build()
        };
        assert_eq!(build(9).trace.requests(), build(9).trace.requests());
        assert_ne!(build(9).trace.requests(), build(10).trace.requests());
    }

    #[test]
    fn fragmented_access_splits_at_extent_boundaries() {
        let wl = SyntheticWorkload::builder()
            .requests(300)
            .file_blocks(16)
            .files(500)
            .fragmentation(0.3)
            .coalesce_prob(1.0)
            .seed(13)
            .build();
        // With heavy fragmentation even perfect coalescing cannot merge
        // across extent gaps, so there are more requests than accesses.
        assert!(wl.trace.len() > 300);
        assert_eq!(wl.trace.total_blocks(), 300 * 16);
    }
}
