//! # forhdc-workload
//!
//! Workload generation for the paper's evaluation:
//!
//! * [`ZipfSampler`] — the Bradford/Zipf popularity distribution the
//!   paper draws request targets from (`p_i ∝ 1/i^α`, α = 0 uniform).
//! * [`SyntheticWorkload`] — the controlled synthetic traces of §6.2:
//!   10 000 whole-file reads of a fixed file size, Zipf-distributed over
//!   the file population, with tunable write fraction, coalescing
//!   probability and fragmentation.
//! * [`ServerWorkload`] — statistically calibrated clones of the
//!   paper's three real traces (Rutgers Web server, AT&T Hummingbird
//!   proxy, HP file server). The originals are proprietary; the clones
//!   match every statistic the paper reports (see `DESIGN.md` §3).
//! * [`Trace`] — the disk-level access log fed to the simulator, plus
//!   popularity statistics (Figure 2).
//! * [`io`] — plain-text trace/layout serialization, so real logs can
//!   be converted and replayed.

pub mod io;
pub mod server;
pub mod stats;
pub mod synth;
pub mod trace;
pub mod util;
pub mod zipf;

pub use server::{ServerKind, ServerWorkload, ServerWorkloadSpec};
pub use synth::{SyntheticWorkload, SyntheticWorkloadBuilder};
pub use trace::{Trace, TraceRequest, Workload};
pub use zipf::ZipfSampler;
