//! Property-based invariants of the workload crate: the trace text
//! format round-trips arbitrary traces, the Zipf sampler's CDF is
//! coherent, and the generators conserve what they promise.

use proptest::prelude::*;

use forhdc_sim::{LogicalBlock, ReadWrite};
use forhdc_workload::io::{read_trace, write_trace};
use forhdc_workload::{SyntheticWorkload, Trace, TraceRequest, ZipfSampler};

fn arb_request() -> impl Strategy<Value = TraceRequest> {
    (0u64..1_000_000, 1u32..200, any::<bool>()).prop_map(|(start, n, w)| TraceRequest {
        start: LogicalBlock::new(start),
        nblocks: n,
        kind: if w { ReadWrite::Write } else { ReadWrite::Read },
    })
}

/// Random job partition of `n` requests.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_request(), 0..80).prop_flat_map(|reqs| {
        let n = reqs.len();
        prop::collection::vec(1u32..5, 0..n.max(1)).prop_map(move |cuts| {
            // Build job lengths summing exactly to n.
            let mut lens: Vec<u32> = Vec::new();
            let mut left = n as u32;
            for c in cuts {
                if left == 0 {
                    break;
                }
                let take = c.min(left);
                lens.push(take);
                left -= take;
            }
            if left > 0 {
                lens.push(left);
            }
            Trace::with_jobs(reqs.clone(), lens)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write_trace → read_trace is the identity (requests and jobs).
    #[test]
    fn trace_text_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.requests(), trace.requests());
        prop_assert_eq!(back.job_count(), trace.job_count());
        let a: Vec<usize> = trace.jobs().map(<[TraceRequest]>::len).collect();
        let b: Vec<usize> = back.jobs().map(<[TraceRequest]>::len).collect();
        prop_assert_eq!(a, b);
    }

    /// The Zipf CDF is monotone, normalized, and sampling stays in
    /// range.
    #[test]
    fn zipf_cdf_coherent(n in 1usize..2_000, alpha in 0.0f64..2.0, seed in 0u64..500) {
        let z = ZipfSampler::new(n, alpha);
        let mut acc = 0.0;
        for i in 0..n {
            let p = z.probability(i);
            prop_assert!(p >= 0.0);
            if i > 0 {
                prop_assert!(p <= z.probability(i - 1) + 1e-12, "not non-increasing at {i}");
            }
            acc += p;
        }
        prop_assert!((acc - 1.0).abs() < 1e-6);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        // cumulative() matches the probability prefix sums.
        let k = (n / 2).max(1);
        let prefix: f64 = (0..k).map(|i| z.probability(i)).sum();
        prop_assert!((z.cumulative(k) - prefix).abs() < 1e-9);
    }

    /// Synthetic generation: every request stays within the layout and
    /// reads whole files exactly.
    #[test]
    fn synthetic_requests_stay_in_bounds(
        requests in 1usize..50,
        file_blocks in 1u32..16,
        coalesce in 0.0f64..1.0,
        seed in 0u64..200,
    ) {
        let wl = SyntheticWorkload::builder()
            .requests(requests)
            .files(300)
            .file_blocks(file_blocks)
            .coalesce_prob(coalesce)
            .seed(seed)
            .build();
        let footprint = wl.layout.total_blocks();
        for r in wl.trace.requests() {
            prop_assert!(r.start.index() + r.nblocks as u64 <= footprint);
            // Every request lies entirely within one file.
            let owner = wl.layout.owner(r.start).expect("request into a file");
            let last = wl.layout
                .owner(LogicalBlock::new(r.start.index() + r.nblocks as u64 - 1))
                .expect("request end in a file");
            prop_assert_eq!(owner.file, last.file);
        }
        // Each job covers exactly one whole file's worth of blocks.
        for job in wl.trace.jobs() {
            let blocks: u64 = job.iter().map(|r| r.nblocks as u64).sum();
            prop_assert_eq!(blocks, file_blocks as u64);
        }
    }
}
