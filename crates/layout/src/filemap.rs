//! Ownership map from logical blocks to files.

use std::fmt;

use forhdc_sim::LogicalBlock;

/// Identifier of a file in the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(u32);

impl FileId {
    /// Creates a file id from its raw index.
    pub const fn new(raw: u32) -> Self {
        FileId(raw)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the raw index widened to `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// A physically contiguous run of one file's blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical block of the run.
    pub start: LogicalBlock,
    /// Length in blocks.
    pub len: u32,
    /// Offset (in blocks) of the run within its file.
    pub file_offset: u64,
}

impl Extent {
    /// One-past-the-end logical block.
    pub fn end(&self) -> LogicalBlock {
        self.start.offset(self.len as u64)
    }
}

/// Which file, and which offset within it, owns a logical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOwner {
    /// The owning file.
    pub file: FileId,
    /// The block's offset within the file, in blocks.
    pub offset: u64,
}

/// The host file system's placement of files in the logical block space.
///
/// Built by [`crate::LayoutBuilder`]; queried by the FOR bitmap builder
/// and by the workload generators (to turn "read file F" into logical
/// block requests).
///
/// # Example
///
/// ```
/// use forhdc_layout::LayoutBuilder;
/// use forhdc_sim::LogicalBlock;
///
/// // Two files of 4 blocks each, no fragmentation: laid back-to-back.
/// let map = LayoutBuilder::new().build(&[4, 4]);
/// let owner = map.owner(LogicalBlock::new(5)).unwrap();
/// assert_eq!(owner.file.index(), 1);
/// assert_eq!(owner.offset, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FileMap {
    extents: Vec<Vec<Extent>>, // per file, ordered by file_offset
    owner: Vec<Option<BlockOwner>>,
    total_blocks: u64,
}

impl FileMap {
    /// Assembles a map from per-file extent lists.
    ///
    /// # Panics
    ///
    /// Panics if extents overlap, a file's extents do not cover offsets
    /// `0..size` exactly, or an extent has zero length.
    pub fn from_extents(extents: Vec<Vec<Extent>>) -> Self {
        let total_blocks = extents
            .iter()
            .flatten()
            .map(|e| e.end().index())
            .max()
            .unwrap_or(0);
        let mut owner: Vec<Option<BlockOwner>> = vec![None; total_blocks as usize];
        for (fi, file) in extents.iter().enumerate() {
            let mut covered = 0u64;
            let mut sorted = file.clone();
            sorted.sort_by_key(|e| e.file_offset);
            for e in &sorted {
                assert!(
                    e.len > 0,
                    "zero-length extent in {}",
                    FileId::new(fi as u32)
                );
                assert_eq!(
                    e.file_offset,
                    covered,
                    "extent gap in {}: expected offset {covered}",
                    FileId::new(fi as u32)
                );
                covered += e.len as u64;
                for i in 0..e.len as u64 {
                    let slot = &mut owner[(e.start.index() + i) as usize];
                    assert!(
                        slot.is_none(),
                        "overlapping extents at {}",
                        e.start.offset(i)
                    );
                    *slot = Some(BlockOwner {
                        file: FileId::new(fi as u32),
                        offset: e.file_offset + i,
                    });
                }
            }
        }
        FileMap {
            extents,
            owner,
            total_blocks,
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> u32 {
        self.extents.len() as u32
    }

    /// Size of a file in blocks.
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn file_blocks(&self, file: FileId) -> u64 {
        self.extents[file.as_usize()]
            .iter()
            .map(|e| e.len as u64)
            .sum()
    }

    /// The file's extents in file-offset order.
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn extents(&self, file: FileId) -> &[Extent] {
        &self.extents[file.as_usize()]
    }

    /// The logical block holding offset `offset` of `file`, or `None`
    /// past the end of the file.
    pub fn block_at(&self, file: FileId, offset: u64) -> Option<LogicalBlock> {
        let exts = self.extents.get(file.as_usize())?;
        let e = exts
            .iter()
            .find(|e| offset >= e.file_offset && offset < e.file_offset + e.len as u64)?;
        Some(e.start.offset(offset - e.file_offset))
    }

    /// Ownership of a logical block, or `None` for unallocated space.
    pub fn owner(&self, block: LogicalBlock) -> Option<BlockOwner> {
        self.owner.get(block.index() as usize).copied().flatten()
    }

    /// The whole ownership table, indexed by logical block, for bulk
    /// scans (the FOR bitmap builder walks every allocated block and
    /// must not pay a bounds-checked call per lookup).
    pub fn owners(&self) -> &[Option<BlockOwner>] {
        &self.owner
    }

    /// One-past-the-last allocated logical block (the footprint).
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Whether `block` continues, within a file, the logically
    /// preceding block — the FOR bitmap predicate for a single-disk
    /// (unstriped) layout: same file, strictly later file offset (so a
    /// whole-file sequential reader will still want the data).
    pub fn is_continuation(&self, block: LogicalBlock) -> bool {
        if block.index() == 0 {
            return false;
        }
        let (Some(cur), Some(prev)) = (
            self.owner(block),
            self.owner(LogicalBlock::new(block.index() - 1)),
        ) else {
            return false;
        };
        cur.file == prev.file && cur.offset > prev.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(start: u64, len: u32, file_offset: u64) -> Extent {
        Extent {
            start: LogicalBlock::new(start),
            len,
            file_offset,
        }
    }

    #[test]
    fn contiguous_two_files() {
        let map = FileMap::from_extents(vec![vec![ext(0, 4, 0)], vec![ext(4, 2, 0)]]);
        assert_eq!(map.file_count(), 2);
        assert_eq!(map.file_blocks(FileId::new(0)), 4);
        assert_eq!(map.total_blocks(), 6);
        assert_eq!(
            map.owner(LogicalBlock::new(3)),
            Some(BlockOwner {
                file: FileId::new(0),
                offset: 3
            })
        );
        assert_eq!(
            map.owner(LogicalBlock::new(4)),
            Some(BlockOwner {
                file: FileId::new(1),
                offset: 0
            })
        );
        assert_eq!(map.owner(LogicalBlock::new(6)), None);
    }

    #[test]
    fn fragmented_file_continuation_bits() {
        // File 0: blocks 0..2 then 6..8; file 1: blocks 2..6.
        let map = FileMap::from_extents(vec![vec![ext(0, 2, 0), ext(6, 2, 2)], vec![ext(2, 4, 0)]]);
        assert!(!map.is_continuation(LogicalBlock::new(0)));
        assert!(map.is_continuation(LogicalBlock::new(1)));
        assert!(!map.is_continuation(LogicalBlock::new(2))); // file boundary
        assert!(map.is_continuation(LogicalBlock::new(3)));
        assert!(!map.is_continuation(LogicalBlock::new(6))); // jump in file 0
        assert!(map.is_continuation(LogicalBlock::new(7)));
    }

    #[test]
    fn block_at_walks_extents() {
        let map = FileMap::from_extents(vec![vec![ext(0, 2, 0), ext(6, 2, 2)]]);
        assert_eq!(map.block_at(FileId::new(0), 0), Some(LogicalBlock::new(0)));
        assert_eq!(map.block_at(FileId::new(0), 1), Some(LogicalBlock::new(1)));
        assert_eq!(map.block_at(FileId::new(0), 2), Some(LogicalBlock::new(6)));
        assert_eq!(map.block_at(FileId::new(0), 3), Some(LogicalBlock::new(7)));
        assert_eq!(map.block_at(FileId::new(0), 4), None);
        assert_eq!(map.block_at(FileId::new(9), 0), None);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let _ = FileMap::from_extents(vec![vec![ext(0, 4, 0)], vec![ext(3, 2, 0)]]);
    }

    #[test]
    #[should_panic(expected = "extent gap")]
    fn offset_gap_panics() {
        let _ = FileMap::from_extents(vec![vec![ext(0, 2, 0), ext(4, 2, 3)]]);
    }

    #[test]
    fn empty_map() {
        let map = FileMap::from_extents(vec![]);
        assert_eq!(map.file_count(), 0);
        assert_eq!(map.total_blocks(), 0);
        assert!(!map.is_continuation(LogicalBlock::new(0)));
    }
}
