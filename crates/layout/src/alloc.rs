//! Laying files onto the logical block space with controllable
//! fragmentation.
//!
//! Fragmentation is modeled per within-file block boundary: each of a
//! file's `f − 1` internal boundaries independently *breaks* with
//! probability `q`, splitting the file into `1 + (f−1)·q` expected
//! physically scattered runs. The runs of all files are then placed in
//! a deterministic shuffled order, so broken runs land far from their
//! predecessors — exactly the "logically consecutive but not physically
//! consecutive" blocks of section 4.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use forhdc_sim::LogicalBlock;

use crate::filemap::{Extent, FileMap};

/// Builder for [`FileMap`] layouts.
///
/// # Example
///
/// ```
/// use forhdc_layout::LayoutBuilder;
///
/// // 5%-fragmented layout of a thousand 8-block files.
/// let sizes = vec![8u32; 1000];
/// let map = LayoutBuilder::new().fragmentation(0.05).seed(7).build(&sizes);
/// assert_eq!(map.file_count(), 1000);
/// assert_eq!(map.total_blocks(), 8000);
/// ```
#[derive(Debug, Clone)]
pub struct LayoutBuilder {
    fragmentation: f64,
    seed: u64,
    align_blocks: u32,
    spacing_blocks: u64,
}

impl LayoutBuilder {
    /// Creates a builder with no fragmentation, no alignment, no
    /// spacing, seed 0.
    pub fn new() -> Self {
        LayoutBuilder {
            fragmentation: 0.0,
            seed: 0,
            align_blocks: 1,
            spacing_blocks: 0,
        }
    }

    /// Sets the per-boundary break probability `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or not finite.
    pub fn fragmentation(mut self, q: f64) -> Self {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "fragmentation must be in [0,1]"
        );
        self.fragmentation = q;
        self
    }

    /// Sets the deterministic RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the allocator boundary-aware: a run that fits within one
    /// `align`-block span never straddles an `align` boundary (the
    /// cursor skips to the next boundary instead, leaving a gap).
    ///
    /// The paper's synthetic evaluation pairs the striping unit with
    /// the largest sequential access "to avoid fragmentation that could
    /// increase the FOR gains"; aligning file starts the same way keeps
    /// each small file on one disk.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn align_blocks(mut self, align: u32) -> Self {
        assert!(align > 0, "alignment must be positive");
        self.align_blocks = align;
        self
    }

    /// Leaves an unallocated gap of `gap` blocks after every placed
    /// run. Used to build *sparse* layouts whose files are "located
    /// randomly on a disk" (the paper's §6.1 validation
    /// micro-benchmarks) — dense layouts make random seeks artificially
    /// short.
    pub fn spacing_blocks(mut self, gap: u64) -> Self {
        self.spacing_blocks = gap;
        self
    }

    /// Lays out one file of `file_sizes[i]` blocks per entry and
    /// returns the resulting map. Sizes of zero are allowed (empty
    /// files own no blocks).
    pub fn build(&self, file_sizes: &[u32]) -> FileMap {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF0_4D_15_C0);
        // 1. Split each file into runs at broken boundaries.
        //    Runs are (file, file_offset, len).
        let mut runs: Vec<(u32, u64, u32)> = Vec::new();
        for (fi, &size) in file_sizes.iter().enumerate() {
            if size == 0 {
                continue;
            }
            let mut run_start = 0u32;
            for b in 1..size {
                if self.fragmentation > 0.0 && rng.gen_bool(self.fragmentation) {
                    runs.push((fi as u32, run_start as u64, b - run_start));
                    run_start = b;
                }
            }
            runs.push((fi as u32, run_start as u64, size - run_start));
        }
        // 2. Place runs. With no fragmentation the order is file order
        //    (contiguous files back-to-back); with fragmentation the
        //    runs are shuffled so broken pieces scatter.
        if self.fragmentation > 0.0 {
            runs.shuffle(&mut rng);
        }
        let mut extents: Vec<Vec<Extent>> = vec![Vec::new(); file_sizes.len()];
        let mut cursor = 0u64;
        let align = self.align_blocks as u64;
        for (fi, file_offset, len) in runs {
            if align > 1 && len as u64 <= align {
                let span_left = align - cursor % align;
                if (len as u64) > span_left {
                    cursor += span_left; // skip to the next boundary
                }
            }
            extents[fi as usize].push(Extent {
                start: LogicalBlock::new(cursor),
                len,
                file_offset,
            });
            cursor += len as u64 + self.spacing_blocks;
        }
        for file in &mut extents {
            file.sort_by_key(|e| e.file_offset);
        }
        FileMap::from_extents(extents)
    }
}

impl Default for LayoutBuilder {
    fn default() -> Self {
        LayoutBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filemap::FileId;

    #[test]
    fn unfragmented_layout_is_contiguous() {
        let map = LayoutBuilder::new().build(&[3, 5, 2]);
        assert_eq!(map.extents(FileId::new(0)).len(), 1);
        assert_eq!(map.extents(FileId::new(1)).len(), 1);
        assert_eq!(map.extents(FileId::new(1))[0].start, LogicalBlock::new(3));
        assert_eq!(map.total_blocks(), 10);
        // All internal boundaries are continuations.
        for b in [1u64, 2, 4, 5, 6, 7, 9] {
            assert!(map.is_continuation(LogicalBlock::new(b)), "block {b}");
        }
        for b in [0u64, 3, 8] {
            assert!(!map.is_continuation(LogicalBlock::new(b)), "block {b}");
        }
    }

    #[test]
    fn full_fragmentation_breaks_every_boundary() {
        let map = LayoutBuilder::new()
            .fragmentation(1.0)
            .seed(3)
            .build(&[8; 50]);
        for f in 0..50 {
            assert_eq!(map.extents(FileId::new(f)).len(), 8);
        }
        // With single-block runs shuffled, continuations are vanishingly
        // rare (only if two consecutive offsets of one file land adjacent
        // by chance, in the right order).
        let cont = (1..map.total_blocks())
            .filter(|&b| map.is_continuation(LogicalBlock::new(b)))
            .count();
        assert!(cont < 10, "expected near-zero continuations, got {cont}");
    }

    #[test]
    fn layout_conserves_blocks_under_fragmentation() {
        let sizes: Vec<u32> = (1..40).collect();
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        for q in [0.0, 0.05, 0.3, 0.9] {
            let map = LayoutBuilder::new().fragmentation(q).seed(11).build(&sizes);
            assert_eq!(map.total_blocks(), total);
            for (i, &s) in sizes.iter().enumerate() {
                assert_eq!(
                    map.file_blocks(FileId::new(i as u32)),
                    s as u64,
                    "q={q} file {i}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = LayoutBuilder::new()
            .fragmentation(0.2)
            .seed(9)
            .build(&[16; 100]);
        let b = LayoutBuilder::new()
            .fragmentation(0.2)
            .seed(9)
            .build(&[16; 100]);
        for f in 0..100 {
            assert_eq!(a.extents(FileId::new(f)), b.extents(FileId::new(f)));
        }
        let c = LayoutBuilder::new()
            .fragmentation(0.2)
            .seed(10)
            .build(&[16; 100]);
        let differs = (0..100).any(|f| a.extents(FileId::new(f)) != c.extents(FileId::new(f)));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn empty_and_zero_sized_files() {
        let map = LayoutBuilder::new().build(&[0, 3, 0]);
        assert_eq!(map.file_blocks(FileId::new(0)), 0);
        assert_eq!(map.file_blocks(FileId::new(1)), 3);
        assert_eq!(map.total_blocks(), 3);
    }

    #[test]
    fn spacing_spreads_files() {
        let map = LayoutBuilder::new().spacing_blocks(100).build(&[2, 2]);
        assert_eq!(map.extents(FileId::new(0))[0].start, LogicalBlock::new(0));
        assert_eq!(map.extents(FileId::new(1))[0].start, LogicalBlock::new(102));
        // The gap is unowned.
        assert_eq!(map.owner(LogicalBlock::new(50)), None);
    }

    #[test]
    fn alignment_prevents_straddling() {
        // 3-block files with 4-block alignment: a file that would cross
        // a boundary skips to the next one.
        let map = LayoutBuilder::new().align_blocks(4).build(&[3, 3, 3]);
        for f in 0..3u32 {
            let e = map.extents(FileId::new(f))[0];
            let first_unit = e.start.index() / 4;
            let last_unit = (e.end().index() - 1) / 4;
            assert_eq!(first_unit, last_unit, "file {f} straddles");
        }
    }

    #[test]
    #[should_panic(expected = "fragmentation must be in [0,1]")]
    fn bad_fragmentation_panics() {
        let _ = LayoutBuilder::new().fragmentation(1.5);
    }
}
