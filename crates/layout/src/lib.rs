//! # forhdc-layout
//!
//! The file-system layout model behind FOR (File-Oriented Read-ahead).
//!
//! The disk controller has no notion of files; the host file system
//! determines where each file's blocks land in the logical block space.
//! This crate models that placement:
//!
//! * [`FileMap`] — which file (and which offset within it) owns each
//!   logical block.
//! * [`LayoutBuilder`] — lays a population of files onto the logical
//!   space with a tunable *fragmentation* probability: each within-file
//!   block boundary independently breaks with probability `q`,
//!   splitting the file into physically scattered runs (the model
//!   behind Figure 1 of the paper).
//! * [`ForBitmap`] — the paper's per-disk continuation bitmap: one bit
//!   per physical block, set iff that block is the logical continuation
//!   within a file of the physically preceding block. 0.003 % space
//!   overhead; a read-ahead decision is just counting 1-bits.
//! * [`frag`] — sequential-run statistics (the Figure 1 measurement).

pub mod alloc;
pub mod bitmap;
pub mod filemap;
pub mod frag;

pub use alloc::LayoutBuilder;
pub use bitmap::{build_disk_bitmaps, check_bitmap_consistency, ForBitmap};
pub use filemap::{Extent, FileId, FileMap};
