//! Sequential-run statistics: the measurement behind Figure 1.
//!
//! Figure 1 plots the *average sequential read* — the mean number of
//! physically consecutive, logically in-order blocks a reader of whole
//! files encounters — as a function of the fragmentation degree, for
//! several file sizes. A file of `f` blocks whose `f − 1` boundaries
//! each break with probability `q` splits into `1 + (f−1)·q` expected
//! runs, giving an expected run length of `f / (1 + (f−1)·q)`
//! (the closed form lives in `forhdc-analytic`; this module measures
//! the same quantity empirically on a real layout).

use crate::filemap::{FileId, FileMap};

/// Per-layout sequentiality measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Total file blocks in the layout.
    pub total_blocks: u64,
    /// Total physically contiguous runs across all files.
    pub total_runs: u64,
    /// Mean run length (`total_blocks / total_runs`).
    pub mean_run_blocks: f64,
}

/// Measures the average sequential run length over every file of the
/// layout.
///
/// # Example
///
/// ```
/// use forhdc_layout::{frag::measure_runs, LayoutBuilder};
///
/// let map = LayoutBuilder::new().build(&[32; 100]);
/// let stats = measure_runs(&map);
/// assert_eq!(stats.mean_run_blocks, 32.0); // unfragmented
/// ```
pub fn measure_runs(map: &FileMap) -> RunStats {
    let mut total_blocks = 0u64;
    let mut total_runs = 0u64;
    for f in 0..map.file_count() {
        let file = FileId::new(f);
        total_blocks += map.file_blocks(file);
        total_runs += count_runs(map, file);
    }
    let mean = if total_runs == 0 {
        0.0
    } else {
        total_blocks as f64 / total_runs as f64
    };
    RunStats {
        total_blocks,
        total_runs,
        mean_run_blocks: mean,
    }
}

/// Number of physically contiguous runs a whole-file sequential read of
/// `file` breaks into. Extents that happen to land adjacently on disk
/// (in file order) count as one run.
pub fn count_runs(map: &FileMap, file: FileId) -> u64 {
    let extents = map.extents(file);
    if extents.is_empty() {
        return 0;
    }
    let mut runs = 1u64;
    for pair in extents.windows(2) {
        if pair[0].end() != pair[1].start {
            runs += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::LayoutBuilder;

    #[test]
    fn unfragmented_runs_equal_file_size() {
        let map = LayoutBuilder::new().build(&[8; 500]);
        let s = measure_runs(&map);
        assert_eq!(s.total_blocks, 4000);
        assert_eq!(s.total_runs, 500);
        assert_eq!(s.mean_run_blocks, 8.0);
    }

    #[test]
    fn five_percent_fragmentation_matches_paper_figure1() {
        // Paper: 5% fragmentation cuts 32-block files from 32 to ~12.5
        // sequential blocks and 8-block files from 8 to ~5.9.
        let map32 = LayoutBuilder::new()
            .fragmentation(0.05)
            .seed(1)
            .build(&[32; 4000]);
        let m32 = measure_runs(&map32).mean_run_blocks;
        assert!((m32 - 12.5).abs() < 1.0, "32-block mean run {m32}");

        let map8 = LayoutBuilder::new()
            .fragmentation(0.05)
            .seed(2)
            .build(&[8; 4000]);
        let m8 = measure_runs(&map8).mean_run_blocks;
        assert!((m8 - 5.9).abs() < 0.5, "8-block mean run {m8}");
    }

    #[test]
    fn empirical_tracks_closed_form() {
        // f / (1 + (f-1) q) across a grid.
        for &f in &[2u32, 4, 16] {
            for &q in &[0.02f64, 0.1, 0.3] {
                let map = LayoutBuilder::new()
                    .fragmentation(q)
                    .seed((f as u64) << 8 | (q * 100.0) as u64)
                    .build(&vec![f; 6000]);
                let measured = measure_runs(&map).mean_run_blocks;
                let expect = f as f64 / (1.0 + (f as f64 - 1.0) * q);
                let rel = (measured - expect).abs() / expect;
                assert!(
                    rel < 0.08,
                    "f={f} q={q}: measured {measured}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn empty_layout() {
        let map = LayoutBuilder::new().build(&[]);
        let s = measure_runs(&map);
        assert_eq!(s.total_runs, 0);
        assert_eq!(s.mean_run_blocks, 0.0);
    }

    #[test]
    fn single_block_files_are_single_runs() {
        let map = LayoutBuilder::new()
            .fragmentation(0.5)
            .seed(3)
            .build(&[1; 100]);
        let s = measure_runs(&map);
        assert_eq!(s.total_runs, 100);
        assert_eq!(s.mean_run_blocks, 1.0);
    }
}
