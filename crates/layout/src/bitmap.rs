//! The FOR continuation bitmap (section 4 of the paper).
//!
//! One bit per physical disk block; bit `p` is set iff block `p` is the
//! logical continuation *within a file* of the physically preceding
//! block `p − 1` on the same disk. The read-ahead decision is then a
//! run of 1-bits: "from the location of the block that missed in the
//! cache, we only need to count the number of bits until a 0 bit is
//! found."
//!
//! With striping, two physically adjacent blocks on one disk are
//! logically adjacent only inside a striping unit; across unit
//! boundaries the next physical block holds the file data one full
//! stripe later. The bitmap builder therefore sets the bit whenever the
//! two blocks belong to the same file *and* the later block holds a
//! later file offset — the precise condition for the read-ahead data to
//! be useful to the stream.

use forhdc_sim::{PhysBlock, StripingMap};

use crate::filemap::FileMap;

/// A per-disk continuation bitmap.
///
/// # Example
///
/// ```
/// use forhdc_layout::ForBitmap;
/// use forhdc_sim::PhysBlock;
///
/// let mut bm = ForBitmap::new(16);
/// for i in 1..8 {
///     bm.set(PhysBlock::new(i), true);
/// }
/// // A miss at block 0 may read ahead 7 more blocks (1..8 continue it).
/// assert_eq!(bm.run_ahead(PhysBlock::new(0), 32), 7);
/// // Capped by the read-ahead limit.
/// assert_eq!(bm.run_ahead(PhysBlock::new(0), 4), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ForBitmap {
    /// Grown on demand as bits are set; words past `words.len()` read
    /// as zero. A server's workload footprint is typically a small
    /// prefix of the disk, so materializing (and zeroing) the full
    /// ~550 KB per-disk table up front would be almost entirely wasted.
    words: Vec<u64>,
    nblocks: u64,
}

impl ForBitmap {
    /// Creates an all-zero bitmap covering `nblocks` physical blocks.
    /// No storage is allocated until a bit is set.
    pub fn new(nblocks: u64) -> Self {
        ForBitmap {
            words: Vec::new(),
            nblocks,
        }
    }

    /// Number of blocks covered.
    pub fn len(&self) -> u64 {
        self.nblocks
    }

    /// Whether the bitmap covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.nblocks == 0
    }

    /// Size of the bitmap in bytes (the controller-memory overhead the
    /// paper prices at 0.003 %).
    pub fn size_bytes(&self) -> u64 {
        self.nblocks.div_ceil(8)
    }

    /// Sets or clears the continuation bit of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set(&mut self, block: PhysBlock, continued: bool) {
        let i = block.index();
        assert!(
            i < self.nblocks,
            "block {block} beyond bitmap ({})",
            self.nblocks
        );
        let widx = (i / 64) as usize;
        let bit = 1u64 << (i % 64);
        if continued {
            if widx >= self.words.len() {
                self.words.resize(widx + 1, 0);
            }
            self.words[widx] |= bit;
        } else if let Some(word) = self.words.get_mut(widx) {
            *word &= !bit;
        }
    }

    /// The continuation bit of `block`; blocks out of range read as 0
    /// (no continuation past the end of the disk).
    pub fn get(&self, block: PhysBlock) -> bool {
        let i = block.index();
        if i >= self.nblocks {
            return false;
        }
        match self.words.get((i / 64) as usize) {
            Some(w) => w & (1u64 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Number of set bits (for stats and tests).
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// FOR's read-ahead decision: how many blocks after `last` (the
    /// last block of the demanded run) continue the same file, capped
    /// at `max` blocks. Counts consecutive 1-bits starting at
    /// `last + 1`, a word at a time.
    pub fn run_ahead(&self, last: PhysBlock, max: u32) -> u32 {
        let mut i = last.index() + 1;
        if i >= self.nblocks || max == 0 {
            return 0;
        }
        // Bits past `nblocks` in the last word are never set, so capping
        // at the bitmap end keeps the scan in bounds.
        let limit = (self.nblocks - i).min(max as u64) as u32;
        let mut n = 0u32;
        while n < limit {
            let shift = (i % 64) as u32;
            let avail = 64 - shift;
            // Consecutive 1-bits from bit `i` to the end of its word.
            let word = self.words.get((i / 64) as usize).copied().unwrap_or(0);
            let run = (!(word >> shift)).trailing_zeros();
            let take = run.min(limit - n);
            n += take;
            i += take as u64;
            if run < avail {
                break; // a 0-bit inside the word ends the run
            }
        }
        n
    }

    /// Sets bit `i` without range checking (builder-internal; callers
    /// guarantee `i < nblocks`).
    #[inline]
    fn set_bit(&mut self, i: u64) {
        debug_assert!(i < self.nblocks);
        let widx = (i / 64) as usize;
        if widx >= self.words.len() {
            self.words.resize(widx + 1, 0);
        }
        self.words[widx] |= 1u64 << (i % 64);
    }
}

/// Builds the per-disk FOR bitmaps for a striped layout: one bitmap per
/// disk, each `disk_blocks` long.
///
/// Bit `p` on disk `d` is set iff the logical blocks mapped to physical
/// blocks `p − 1` and `p` of disk `d` belong to the same file with
/// increasing file offsets.
///
/// # Example
///
/// ```
/// use forhdc_layout::{build_disk_bitmaps, LayoutBuilder};
/// use forhdc_sim::StripingMap;
///
/// let map = LayoutBuilder::new().build(&[64; 10]);
/// let striping = StripingMap::new(4, 8);
/// let bitmaps = build_disk_bitmaps(&map, &striping, 1 << 16);
/// assert_eq!(bitmaps.len(), 4);
/// ```
pub fn build_disk_bitmaps(
    map: &FileMap,
    striping: &StripingMap,
    disk_blocks: u64,
) -> Vec<ForBitmap> {
    let mut bitmaps: Vec<ForBitmap> = (0..striping.disks())
        .map(|_| ForBitmap::new(disk_blocks))
        .collect();
    // Walk the allocated logical space one striping unit at a time.
    // Within a unit, logically adjacent blocks are physically adjacent
    // on one disk, so the physical predecessor of logical `l` is
    // simply `l - 1`; only the unit's first block needs the striping
    // inverse (the predecessor is the last block of the previous unit
    // row on the same disk). This removes the per-block locate /
    // logical_of division work of the naive walk.
    let disks = striping.disks() as u64;
    let unit = striping.unit_blocks() as u64;
    let owners = map.owners();
    let total = map.total_blocks();
    let continues = |prev: u64, cur: u64| match (owners[prev as usize], owners[cur as usize]) {
        (Some(p), Some(c)) => c.file == p.file && c.offset > p.offset,
        _ => false,
    };
    let mut l = 0u64;
    while l < total {
        let unit_idx = l / unit;
        let disk = (unit_idx % disks) as usize;
        let row = unit_idx / disks;
        let pbase = row * unit; // physical block of logical `l`
        if pbase >= disk_blocks {
            l += unit;
            continue;
        }
        let bm = &mut bitmaps[disk];
        // Unit-boundary bit: physical predecessor is the last block of
        // the previous row, logically one full stripe minus a unit back.
        if row > 0 && continues(l - (disks - 1) * unit - 1, l) {
            bm.set_bit(pbase);
        }
        let n = unit.min(total - l).min(disk_blocks - pbase);
        for k in 1..n {
            if continues(l + k - 1, l + k) {
                bm.set_bit(pbase + k);
            }
        }
        l += unit;
    }
    bitmaps
}

/// Checked-mode validation (DESIGN.md §6.5): recomputes the expected
/// continuation bit of every allocated logical block from the filemap
/// and compares it against the bits actually held in `bitmaps`. Bits
/// covering unallocated physical space are expected clear. Returns the
/// first mismatch as an `Err` naming the disk and physical block.
pub fn check_bitmap_consistency(
    map: &FileMap,
    striping: &StripingMap,
    bitmaps: &[ForBitmap],
) -> Result<(), String> {
    if bitmaps.len() != striping.disks() as usize {
        return Err(format!(
            "{} bitmaps cover a {}-disk striping map",
            bitmaps.len(),
            striping.disks()
        ));
    }
    for l in 0..map.total_blocks() {
        let logical = forhdc_sim::LogicalBlock::new(l);
        let (disk, phys) = striping.locate(logical);
        let bm = &bitmaps[disk.as_usize()];
        if phys.index() >= bm.len() {
            continue;
        }
        let expected = phys.index() > 0 && {
            let prev_logical = striping.logical_of(disk, PhysBlock::new(phys.index() - 1));
            match (map.owner(logical), map.owner(prev_logical)) {
                (Some(cur), Some(prev)) => cur.file == prev.file && cur.offset > prev.offset,
                _ => false,
            }
        };
        if bm.get(phys) != expected {
            return Err(format!(
                "disk {} phys block {phys}: bitmap says {}, filemap says {expected} \
                 (logical block {logical})",
                disk.as_usize(),
                bm.get(phys),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::LayoutBuilder;
    use forhdc_sim::LogicalBlock;

    #[test]
    fn bitmap_set_get_roundtrip() {
        let mut bm = ForBitmap::new(200);
        for i in (0..200).step_by(3) {
            bm.set(PhysBlock::new(i), true);
        }
        for i in 0..200 {
            assert_eq!(bm.get(PhysBlock::new(i)), i % 3 == 0);
        }
        assert_eq!(bm.count_ones(), 67);
        bm.set(PhysBlock::new(0), false);
        assert!(!bm.get(PhysBlock::new(0)));
    }

    #[test]
    fn out_of_range_reads_zero() {
        let bm = ForBitmap::new(10);
        assert!(!bm.get(PhysBlock::new(10)));
        assert!(!bm.get(PhysBlock::new(1_000_000)));
    }

    #[test]
    fn run_ahead_stops_at_zero_bit() {
        let mut bm = ForBitmap::new(64);
        // Continuations at 5,6,7 only.
        for i in 5..8 {
            bm.set(PhysBlock::new(i), true);
        }
        assert_eq!(bm.run_ahead(PhysBlock::new(4), 32), 3);
        assert_eq!(bm.run_ahead(PhysBlock::new(5), 32), 2);
        assert_eq!(bm.run_ahead(PhysBlock::new(8), 32), 0);
        assert_eq!(bm.run_ahead(PhysBlock::new(60), 32), 0); // hits the end
    }

    #[test]
    fn size_matches_one_bit_per_block() {
        // An 18 GB disk of 4-KByte blocks: ~4.4M blocks = ~549 KB.
        let bm = ForBitmap::new(4_396_000);
        let kb = bm.size_bytes() / 1024;
        assert!((530..560).contains(&kb), "bitmap {kb} KB");
    }

    #[test]
    fn single_disk_bitmap_matches_filemap_continuations() {
        let map = LayoutBuilder::new()
            .fragmentation(0.15)
            .seed(5)
            .build(&[16; 200]);
        let striping = StripingMap::new(1, 32);
        let bm = &build_disk_bitmaps(&map, &striping, map.total_blocks())[0];
        for l in 1..map.total_blocks() {
            assert_eq!(
                bm.get(PhysBlock::new(l)),
                map.is_continuation(LogicalBlock::new(l)),
                "mismatch at block {l}"
            );
        }
    }

    #[test]
    fn striping_unit_boundary_breaks_small_files() {
        // 4 disks, 8-block units, 8-block files laid contiguously: each
        // file exactly fills one unit, so no continuation bit survives —
        // adjacent physical blocks on one disk straddle unit boundaries
        // and belong to different files.
        let map = LayoutBuilder::new().build(&[8; 40]);
        let striping = StripingMap::new(4, 8);
        let bms = build_disk_bitmaps(&map, &striping, 128);
        // Bits within each unit (offsets 1..8 of a unit) are set when the
        // same file owns them; at unit boundaries (phys offset % 8 == 0)
        // the owning files differ (file i vs file i+4).
        for bm in &bms {
            for p in 0..80u64 {
                let expect = p % 8 != 0 && p < 80;
                if bm.get(PhysBlock::new(p)) != expect && p < 72 {
                    panic!("unexpected bit at phys {p}: {}", bm.get(PhysBlock::new(p)));
                }
            }
        }
    }

    #[test]
    fn large_file_spanning_stripe_keeps_forward_continuation() {
        // One 64-block file over 2 disks with 8-block units: physical
        // blocks of disk 0 hold offsets 0..8, 16..24, 32..40, 48..56 —
        // all increasing, same file, so every bit (except phys 0) is set.
        let map = LayoutBuilder::new().build(&[64]);
        let striping = StripingMap::new(2, 8);
        let bms = build_disk_bitmaps(&map, &striping, 64);
        for (d, bm) in bms.iter().enumerate() {
            for p in 1..32u64 {
                assert!(bm.get(PhysBlock::new(p)), "disk {d} phys {p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond bitmap")]
    fn set_out_of_range_panics() {
        ForBitmap::new(4).set(PhysBlock::new(4), true);
    }

    #[test]
    fn consistency_check_accepts_builder_output_and_catches_a_flip() {
        let map = LayoutBuilder::new()
            .fragmentation(0.1)
            .seed(7)
            .build(&[12; 120]);
        let striping = StripingMap::new(4, 8);
        let mut bms = build_disk_bitmaps(&map, &striping, 1 << 12);
        check_bitmap_consistency(&map, &striping, &bms).unwrap();
        // One flipped bit anywhere in the allocated space is caught.
        let (disk, phys) = striping.locate(LogicalBlock::new(9));
        let cur = bms[disk.as_usize()].get(phys);
        bms[disk.as_usize()].set(phys, !cur);
        let err = check_bitmap_consistency(&map, &striping, &bms).unwrap_err();
        assert!(err.contains("bitmap says"), "{err}");
        // A disk-count mismatch is caught before any bit is compared.
        assert!(check_bitmap_consistency(&map, &striping, &bms[..2]).is_err());
    }
}
