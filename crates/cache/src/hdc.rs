//! The Host-guided Device Caching (HDC) region of section 5.
//!
//! The host controls part of each controller cache through three
//! commands: `pin_blk()` reads a block and marks it non-replaceable,
//! `unpin_blk()` clears the flag, and `flush_hdc()` writes all dirty
//! pinned blocks to the media. Dirty pinned blocks are *not* updated on
//! disk automatically — the host decides when to sync (e.g. the Unix
//! 30-second policy, whose throughput effect the paper measured at
//! under 1 %).

use std::fmt;

use forhdc_sim::PhysBlock;

use crate::fx::{fx_map_with_capacity, FxHashMap};

/// Counters for the HDC region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HdcStats {
    /// Read lookups that found a pinned block.
    pub read_hits: u64,
    /// Read lookups that missed.
    pub read_misses: u64,
    /// Writes absorbed by a pinned block (marked dirty, no media op).
    pub write_hits: u64,
    /// Writes that missed.
    pub write_misses: u64,
    /// Blocks pinned over the region's lifetime.
    pub pins: u64,
    /// Blocks unpinned.
    pub unpins: u64,
    /// Dirty blocks written back by flushes.
    pub flushed: u64,
}

impl HdcStats {
    /// Total lookups (reads + writes).
    pub fn lookups(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Overall hit rate (reads and writes) in `[0, 1]`, as the paper
    /// reports it: "accesses (reads and writes) that hit in the HDC
    /// caches divided by the total number of accesses".
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / lookups as f64
        }
    }

    /// Merges another region's counters (array-wide aggregation).
    pub fn merge(&mut self, other: &HdcStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.pins += other.pins;
        self.unpins += other.unpins;
        self.flushed += other.flushed;
    }
}

impl fmt::Display for HdcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HDC hits {}/{} ({:.1}%), {} pinned over lifetime, {} flushed",
            self.read_hits + self.write_hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.pins,
            self.flushed
        )
    }
}

/// Error returned by [`HdcRegion::pin`] when the region is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinError {
    /// The configured capacity that was exhausted.
    pub capacity: u32,
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HDC region full ({} blocks)", self.capacity)
    }
}

impl std::error::Error for PinError {}

/// The host-managed, non-replaceable portion of one controller cache.
///
/// # Example
///
/// ```
/// use forhdc_cache::HdcRegion;
/// use forhdc_sim::PhysBlock;
///
/// let mut hdc = HdcRegion::new(512); // 2 MB of 4-KByte blocks
/// hdc.pin(PhysBlock::new(42))?;
/// assert!(hdc.read(PhysBlock::new(42)));
/// assert!(hdc.write(PhysBlock::new(42))); // absorbed, marked dirty
/// assert_eq!(hdc.flush(), vec![PhysBlock::new(42)]);
/// # Ok::<(), forhdc_cache::PinError>(())
/// ```
#[derive(Debug)]
pub struct HdcRegion {
    pinned: FxHashMap<PhysBlock, bool>, // value = dirty
    /// Blocks appended as their dirty bit turns on, so a flush visits
    /// only dirty candidates instead of sweeping every pinned block.
    /// May hold stale entries (a block unpinned, or unpinned and
    /// re-dirtied, since the append); the flush filters against the
    /// live dirty bits.
    dirty_list: Vec<PhysBlock>,
    /// Live dirty-block count (kept exact; `dirty_list` may over-count).
    dirty: u32,
    capacity: u32,
    stats: HdcStats,
    /// Clean→dirty transitions over the region's lifetime. Every such
    /// transition must end as a flushed write-back, a dirty unpin
    /// (caller-owned write-back), or a lost write under fault
    /// injection — the conservation invariant the property tests hold.
    dirtied: u64,
    /// Dirty blocks handed back to the caller by [`HdcRegion::unpin`].
    dirty_unpins: u64,
}

impl HdcRegion {
    /// Creates an empty region able to pin `capacity` blocks.
    /// A zero capacity creates a permanently empty region (HDC off).
    pub fn new(capacity: u32) -> Self {
        HdcRegion {
            pinned: fx_map_with_capacity(capacity as usize),
            dirty_list: Vec::new(),
            dirty: 0,
            capacity,
            stats: HdcStats::default(),
            dirtied: 0,
            dirty_unpins: 0,
        }
    }

    /// Pins `block` into the region (the `pin_blk()` command). Pinning
    /// an already pinned block is a no-op that preserves its dirty bit.
    ///
    /// The caller is responsible for the media read that loads the
    /// block's contents (the system simulation charges it).
    ///
    /// # Errors
    ///
    /// Returns [`PinError`] if the region is at capacity.
    pub fn pin(&mut self, block: PhysBlock) -> Result<(), PinError> {
        if self.pinned.contains_key(&block) {
            return Ok(());
        }
        if self.pinned.len() as u32 >= self.capacity {
            return Err(PinError {
                capacity: self.capacity,
            });
        }
        self.pinned.insert(block, false);
        self.stats.pins += 1;
        Ok(())
    }

    /// Unpins `block` (the `unpin_blk()` command). Returns the dirty
    /// bit if the block was pinned — a dirty unpinned block must be
    /// written back by the caller.
    pub fn unpin(&mut self, block: PhysBlock) -> Option<bool> {
        let dirty = self.pinned.remove(&block);
        if dirty.is_some() {
            self.stats.unpins += 1;
        }
        if dirty == Some(true) {
            // The block's `dirty_list` entry goes stale; the flush
            // filter discards it.
            self.dirty -= 1;
            self.dirty_unpins += 1;
        }
        dirty
    }

    /// Whether `block` is pinned (no stats update).
    pub fn contains(&self, block: PhysBlock) -> bool {
        self.pinned.contains_key(&block)
    }

    /// Read lookup: returns `true` (and counts a hit) when pinned.
    pub fn read(&mut self, block: PhysBlock) -> bool {
        if self.pinned.contains_key(&block) {
            self.stats.read_hits += 1;
            true
        } else {
            self.stats.read_misses += 1;
            false
        }
    }

    /// Batched miss accounting: counts `reads` read lookups and
    /// `writes` write lookups that all missed. The controller's
    /// empty-region fast path uses this to keep [`HdcStats`] identical
    /// to per-block lookups without paying a hash probe per block.
    pub fn note_misses(&mut self, reads: u64, writes: u64) {
        self.stats.read_misses += reads;
        self.stats.write_misses += writes;
    }

    /// Write lookup: when pinned, absorbs the write (marks the block
    /// dirty) and returns `true`; the media is not touched until
    /// [`HdcRegion::flush`].
    pub fn write(&mut self, block: PhysBlock) -> bool {
        if let Some(dirty) = self.pinned.get_mut(&block) {
            if !*dirty {
                *dirty = true;
                self.dirty += 1;
                self.dirtied += 1;
                self.dirty_list.push(block);
            }
            self.stats.write_hits += 1;
            true
        } else {
            self.stats.write_misses += 1;
            false
        }
    }

    /// The `flush_hdc()` command: clears all dirty bits and returns the
    /// blocks that must be written to the media, in ascending order
    /// (deterministic).
    pub fn flush(&mut self) -> Vec<PhysBlock> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// Allocation-free [`HdcRegion::flush`]: clears `out` and fills it
    /// with the dirty blocks, ascending. Cost is proportional to the
    /// dirty set, not the pinned set.
    pub fn flush_into(&mut self, out: &mut Vec<PhysBlock>) {
        out.clear();
        for b in self.dirty_list.drain(..) {
            if let Some(d) = self.pinned.get_mut(&b) {
                // Clearing the bit as we go also drops duplicate list
                // entries from unpin/re-pin/re-dirty cycles.
                if *d {
                    *d = false;
                    out.push(b);
                }
            }
        }
        out.sort_unstable();
        self.dirty = 0;
        self.stats.flushed += out.len() as u64;
    }

    /// Undoes a failed flush write-back: the media never received
    /// `blocks`, so their "flushed" accounting is reverted and each
    /// block still pinned is re-marked dirty for a later flush. Blocks
    /// unpinned since the flush drained them have nowhere to live —
    /// their count is returned as *lost writes*.
    pub fn unflush(&mut self, blocks: &[PhysBlock]) -> u64 {
        self.stats.flushed = self.stats.flushed.saturating_sub(blocks.len() as u64);
        let mut lost = 0;
        for &b in blocks {
            match self.pinned.get_mut(&b) {
                Some(dirty) => {
                    if !*dirty {
                        *dirty = true;
                        self.dirty += 1;
                        // Not a new clean→dirty transition: `dirtied`
                        // already counted this write when it happened.
                        self.dirty_list.push(b);
                    } else {
                        // The host re-dirtied the block while its flush
                        // was in flight: the flush's (older) version is
                        // superseded in memory and never reached media,
                        // so that data version is a lost write.
                        lost += 1;
                    }
                }
                None => lost += 1,
            }
        }
        lost
    }

    /// Controller power loss: volatile contents vanish, so every dirty
    /// pinned block's unsynced data is gone. Clears all dirty bits
    /// (the pins themselves survive — the host re-loads them) and
    /// returns the number of lost dirty blocks.
    pub fn discard_dirty(&mut self) -> u64 {
        let mut lost = 0;
        for b in self.dirty_list.drain(..) {
            if let Some(d) = self.pinned.get_mut(&b) {
                if *d {
                    *d = false;
                    lost += 1;
                }
            }
        }
        self.dirty = 0;
        lost
    }

    /// Deep structural validation for checked mode (DESIGN.md §6.5):
    /// occupancy ≤ capacity, the O(1) dirty counter matching the live
    /// dirty bits, every dirty pinned block reachable through
    /// `dirty_list` (so a flush cannot strand one), and the local
    /// conservation bound `dirtied ≥ flushed + dirty-unpins + dirty`
    /// (the remainder is lost writes, tallied by the caller under
    /// fault injection). O(pinned + dirty-list) — called only from
    /// audit points behind `Auditor::enabled()`.
    pub fn check_coherence(&self) -> Result<(), String> {
        if self.pinned.len() as u32 > self.capacity {
            return Err(format!(
                "{} pinned blocks exceed capacity {}",
                self.pinned.len(),
                self.capacity
            ));
        }
        let live_dirty = self.pinned.values().filter(|&&d| d).count() as u32;
        if live_dirty != self.dirty {
            return Err(format!(
                "dirty counter {} but {live_dirty} dirty bits set",
                self.dirty
            ));
        }
        for (&block, &dirty) in &self.pinned {
            if dirty && !self.dirty_list.contains(&block) {
                return Err(format!("dirty block {block} missing from the flush list"));
            }
        }
        let accounted = self.stats.flushed + self.dirty_unpins + self.dirty as u64;
        if self.dirtied < accounted {
            return Err(format!(
                "dirtied {} < flushed {} + dirty-unpins {} + still-dirty {}",
                self.dirtied, self.stats.flushed, self.dirty_unpins, self.dirty
            ));
        }
        Ok(())
    }

    /// Clean→dirty transitions over the region's lifetime.
    pub fn dirtied(&self) -> u64 {
        self.dirtied
    }

    /// Dirty blocks returned to the caller by unpins.
    pub fn dirty_unpins(&self) -> u64 {
        self.dirty_unpins
    }

    /// Number of blocks currently pinned.
    pub fn len(&self) -> u32 {
        self.pinned.len() as u32
    }

    /// Whether nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty()
    }

    /// Number of currently dirty blocks (O(1)).
    pub fn dirty_count(&self) -> u32 {
        self.dirty
    }

    /// Configured capacity in blocks.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HdcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> PhysBlock {
        PhysBlock::new(n)
    }

    #[test]
    fn pin_read_write_flush_cycle() {
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        assert!(h.read(b(1)));
        assert!(!h.read(b(3)));
        assert!(h.write(b(2)));
        assert!(!h.write(b(3)));
        assert_eq!(h.dirty_count(), 1);
        assert_eq!(h.flush(), vec![b(2)]);
        assert_eq!(h.dirty_count(), 0);
        assert_eq!(h.stats().flushed, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut h = HdcRegion::new(2);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        assert_eq!(h.pin(b(3)), Err(PinError { capacity: 2 }));
        // Re-pinning an existing block is fine even at capacity.
        assert_eq!(h.pin(b(1)), Ok(()));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn repin_preserves_dirty_bit() {
        let mut h = HdcRegion::new(2);
        h.pin(b(1)).unwrap();
        h.write(b(1));
        h.pin(b(1)).unwrap();
        assert_eq!(h.dirty_count(), 1);
    }

    #[test]
    fn unpin_returns_dirty_state() {
        let mut h = HdcRegion::new(2);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        h.write(b(2));
        assert_eq!(h.unpin(b(1)), Some(false));
        assert_eq!(h.unpin(b(2)), Some(true));
        assert_eq!(h.unpin(b(9)), None);
        assert!(h.is_empty());
    }

    #[test]
    fn zero_capacity_region_rejects_everything() {
        let mut h = HdcRegion::new(0);
        assert!(h.pin(b(1)).is_err());
        assert!(!h.read(b(1)));
        assert_eq!(h.stats().read_misses, 1);
    }

    #[test]
    fn hit_rate_counts_reads_and_writes() {
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.read(b(1)); // hit
        h.read(b(2)); // miss
        h.write(b(1)); // hit
        h.write(b(3)); // miss
        assert!((h.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(h.stats().lookups(), 4);
    }

    #[test]
    fn flush_is_sorted_and_repeatable() {
        let mut h = HdcRegion::new(8);
        for i in [5u64, 3, 7, 1] {
            h.pin(b(i)).unwrap();
            h.write(b(i));
        }
        assert_eq!(h.flush(), vec![b(1), b(3), b(5), b(7)]);
        assert!(h.flush().is_empty());
    }

    #[test]
    fn unpin_repin_redirty_flushes_once() {
        // The dirty list may carry duplicates through an
        // unpin/re-pin/re-dirty cycle; the flush must not.
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.write(b(1));
        h.unpin(b(1));
        assert_eq!(h.dirty_count(), 0);
        h.pin(b(1)).unwrap();
        h.write(b(1));
        h.pin(b(2)).unwrap();
        h.write(b(2));
        h.unpin(b(2)); // dirty entry goes stale
        assert_eq!(h.dirty_count(), 1);
        assert_eq!(h.flush(), vec![b(1)]);
        assert_eq!(h.stats().flushed, 1);
        assert_eq!(h.dirty_count(), 0);
    }

    #[test]
    fn flush_into_reuses_buffer() {
        let mut h = HdcRegion::new(4);
        h.pin(b(3)).unwrap();
        h.write(b(3));
        let mut buf = vec![b(99)]; // stale content must be cleared
        h.flush_into(&mut buf);
        assert_eq!(buf, vec![b(3)]);
        h.flush_into(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn unflush_re_dirties_and_reverts_accounting() {
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        h.write(b(1));
        h.write(b(2));
        assert_eq!(h.dirtied(), 2);
        let flushed = h.flush();
        assert_eq!(h.stats().flushed, 2);
        // The write-back failed: both blocks still pinned, so nothing
        // is lost and both are dirty again for the next flush.
        assert_eq!(h.unflush(&flushed), 0);
        assert_eq!(h.stats().flushed, 0);
        assert_eq!(h.dirty_count(), 2);
        assert_eq!(h.dirtied(), 2); // not re-counted
        assert_eq!(h.flush(), vec![b(1), b(2)]);
        assert_eq!(h.stats().flushed, 2);
        // Conservation: dirtied == flushed + lost + dirty unpins.
        assert_eq!(h.dirtied(), h.stats().flushed + h.dirty_unpins());
    }

    #[test]
    fn unflush_counts_unpinned_blocks_as_lost() {
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        h.write(b(1));
        h.write(b(2));
        let flushed = h.flush();
        h.unpin(b(2)); // clean at unpin time: not a dirty unpin
        assert_eq!(h.unflush(&flushed), 1);
        assert_eq!(h.dirty_count(), 1);
        assert_eq!(h.dirtied(), h.stats().flushed + h.dirty_count() as u64 + 1);
    }

    #[test]
    fn discard_dirty_loses_unsynced_writes_but_keeps_pins() {
        let mut h = HdcRegion::new(4);
        h.pin(b(1)).unwrap();
        h.pin(b(2)).unwrap();
        h.write(b(1));
        assert_eq!(h.discard_dirty(), 1);
        assert_eq!(h.dirty_count(), 0);
        assert_eq!(h.len(), 2); // pins survive the power cycle
        assert!(h.flush().is_empty());
        // Re-dirtying after the loss is a fresh transition.
        h.write(b(1));
        assert_eq!(h.dirtied(), 2);
    }

    #[test]
    fn stats_merge() {
        let mut a = HdcStats {
            read_hits: 1,
            ..HdcStats::default()
        };
        let b = HdcStats {
            read_hits: 2,
            write_misses: 3,
            ..HdcStats::default()
        };
        a.merge(&b);
        assert_eq!(a.read_hits, 3);
        assert_eq!(a.write_misses, 3);
    }
}
