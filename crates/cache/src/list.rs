//! Slab-backed intrusive doubly-linked lists: the O(1) recency
//! bookkeeping under the hot-path caches.
//!
//! A [`Slab`] owns the nodes (payload plus `prev`/`next` links) in one
//! contiguous `Vec`; any number of [`List`] handles thread disjoint
//! chains through it. Every operation — allocate, link, unlink,
//! release — is O(1) with no per-operation allocation: freed nodes go
//! on an internal free chain and are reused. This replaces the
//! `BTreeSet<(stamp, key)>` recency sets the caches started with
//! (O(log n) churn per touch) with the classic constant-time list
//! discipline of LRU/MRU/ARC-style policies.
//!
//! Determinism: a list is a total order maintained explicitly by the
//! caller's `push_front` calls, so recency order — and therefore
//! eviction order — is identical to what a stamp-ordered set yields, as
//! long as stamps were unique (the caches' monotonic clocks guarantee
//! that).
//!
//! # Example
//!
//! ```
//! use forhdc_cache::list::{List, Slab};
//!
//! let mut slab: Slab<&str> = Slab::with_capacity(4);
//! let mut lru = List::new();
//! let a = slab.alloc("a");
//! let b = slab.alloc("b");
//! slab.push_front(&mut lru, a);
//! slab.push_front(&mut lru, b); // b is now most recent
//! assert_eq!(slab.tail(&lru), Some(a));
//! slab.remove(&mut lru, a);
//! slab.release(a);
//! assert_eq!(slab.tail(&lru), Some(b));
//! ```

/// Sentinel index marking "no node".
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    prev: u32,
    next: u32,
    value: T,
}

/// A chain head/tail pair. The nodes live in a [`Slab`]; an empty list
/// is just two [`NIL`]s, so handles are `Copy` and cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct List {
    head: u32,
    tail: u32,
}

impl List {
    /// Creates an empty list.
    pub fn new() -> Self {
        List {
            head: NIL,
            tail: NIL,
        }
    }

    /// Whether no node is linked.
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

impl Default for List {
    fn default() -> Self {
        List::new()
    }
}

/// The node arena shared by one structure's lists.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    nodes: Vec<Node<T>>,
    /// Head of the free chain (threaded through `next`).
    free: u32,
}

impl<T> Slab<T> {
    /// Creates an empty slab pre-sized for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            nodes: Vec::with_capacity(capacity),
            free: NIL,
        }
    }

    /// Allocates an unlinked node holding `value` and returns its
    /// index, reusing a released node when one exists.
    pub fn alloc(&mut self, value: T) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.prev = NIL;
            node.next = NIL;
            node.value = value;
            return idx;
        }
        let idx = self.nodes.len() as u32;
        assert!(idx < NIL, "slab full");
        self.nodes.push(Node {
            prev: NIL,
            next: NIL,
            value,
        });
        idx
    }

    /// Returns an unlinked node to the free chain. The caller must have
    /// removed it from its list first; the stale payload stays in place
    /// until the node is reused.
    pub fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        debug_assert!(
            node.prev == NIL && node.next == NIL,
            "released node still linked"
        );
        node.next = self.free;
        self.free = idx;
    }

    /// The payload of node `idx`.
    pub fn get(&self, idx: u32) -> &T {
        &self.nodes[idx as usize].value
    }

    /// The payload of node `idx`, mutably.
    pub fn get_mut(&mut self, idx: u32) -> &mut T {
        &mut self.nodes[idx as usize].value
    }

    /// Links node `idx` at the front (most-recent end) of `list`.
    pub fn push_front(&mut self, list: &mut List, idx: u32) {
        let old_head = list.head;
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        } else {
            list.tail = idx;
        }
        list.head = idx;
    }

    /// Unlinks node `idx` from `list` (it stays allocated).
    pub fn remove(&mut self, list: &mut List, idx: u32) {
        let (prev, next) = {
            let node = &mut self.nodes[idx as usize];
            let links = (node.prev, node.next);
            node.prev = NIL;
            node.next = NIL;
            links
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            debug_assert_eq!(list.head, idx, "node not on this list");
            list.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            debug_assert_eq!(list.tail, idx, "node not on this list");
            list.tail = prev;
        }
    }

    /// The most recently pushed node, if any.
    pub fn head(&self, list: &List) -> Option<u32> {
        (list.head != NIL).then_some(list.head)
    }

    /// The least recently pushed node, if any.
    pub fn tail(&self, list: &List) -> Option<u32> {
        (list.tail != NIL).then_some(list.tail)
    }

    /// Iterates node indices front (most recent) to back.
    pub fn iter<'a>(&'a self, list: &List) -> ListIter<'a, T> {
        ListIter {
            slab: self,
            cur: list.head,
        }
    }
}

/// Iterator over a [`List`]'s node indices, front to back.
#[derive(Debug)]
pub struct ListIter<'a, T> {
    slab: &'a Slab<T>,
    cur: u32,
}

impl<T> Iterator for ListIter<'_, T> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let idx = self.cur;
        self.cur = self.slab.nodes[idx as usize].next;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remove_maintains_order() {
        let mut slab: Slab<u64> = Slab::with_capacity(8);
        let mut list = List::new();
        let ids: Vec<u32> = (0..5u64).map(|v| slab.alloc(v)).collect();
        for &id in &ids {
            slab.push_front(&mut list, id);
        }
        // Front to back = most to least recent = 4,3,2,1,0.
        let order: Vec<u64> = slab.iter(&list).map(|i| *slab.get(i)).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
        assert_eq!(slab.head(&list), Some(ids[4]));
        assert_eq!(slab.tail(&list), Some(ids[0]));

        // Remove the middle, the head, and the tail.
        slab.remove(&mut list, ids[2]);
        slab.remove(&mut list, ids[4]);
        slab.remove(&mut list, ids[0]);
        let order: Vec<u64> = slab.iter(&list).map(|i| *slab.get(i)).collect();
        assert_eq!(order, vec![3, 1]);
        assert_eq!(slab.tail(&list), Some(ids[1]));
    }

    #[test]
    fn release_reuses_nodes() {
        let mut slab: Slab<u32> = Slab::with_capacity(2);
        let mut list = List::new();
        let a = slab.alloc(1);
        slab.push_front(&mut list, a);
        slab.remove(&mut list, a);
        slab.release(a);
        let b = slab.alloc(2);
        assert_eq!(a, b, "released node is reused");
        assert_eq!(*slab.get(b), 2);
        assert_eq!(slab.nodes.len(), 1);
    }

    #[test]
    fn empty_list_accessors() {
        let slab: Slab<u8> = Slab::with_capacity(0);
        let list = List::new();
        assert!(list.is_empty());
        assert_eq!(slab.head(&list), None);
        assert_eq!(slab.tail(&list), None);
        assert_eq!(slab.iter(&list).count(), 0);
    }

    #[test]
    fn two_lists_share_one_slab() {
        let mut slab: Slab<char> = Slab::with_capacity(4);
        let mut used = List::new();
        let mut unused = List::new();
        let a = slab.alloc('a');
        let b = slab.alloc('b');
        slab.push_front(&mut used, a);
        slab.push_front(&mut unused, b);
        // Move b from unused to used.
        slab.remove(&mut unused, b);
        slab.push_front(&mut used, b);
        assert!(unused.is_empty());
        let order: Vec<char> = slab.iter(&used).map(|i| *slab.get(i)).collect();
        assert_eq!(order, vec!['b', 'a']);
    }
}
