//! # forhdc-cache
//!
//! Disk-controller cache organizations from *Improving Disk Throughput
//! in Data-Intensive Servers* (Carrera & Bianchini, HPCA 2004):
//!
//! * [`SegmentCache`] — the conventional organization: the cache is
//!   divided into fixed-count segments, each holding one sequential
//!   stream; the whole victim segment is replaced at once (LRU by
//!   default; FIFO/random/round-robin for ablation, after
//!   [Soloviev 94, Ganger 95, Shriver 97]).
//! * [`BlockCache`] — the paper's block-based organization: blocks are
//!   assigned to streams on demand from a free pool and replaced
//!   individually (MRU for FOR, per §4; LRU available for ablation).
//! * [`HdcRegion`] — the host-guided portion of the controller cache:
//!   pinned, non-replaceable blocks with dirty tracking and the
//!   `pin_blk()` / `unpin_blk()` / `flush_hdc()` command set of §5.
//!
//! Both read-ahead caches implement the common [`ControllerCache`]
//! trait so the system simulation can swap organizations freely.

pub mod block;
pub mod fx;
pub mod hdc;
pub mod list;
pub mod segment;
pub mod stats;

pub use block::{BlockCache, BlockReplacement};
pub use hdc::{HdcRegion, HdcStats, PinError};
pub use segment::{SegmentCache, SegmentReplacement};
pub use stats::CacheStats;

use forhdc_sim::PhysBlock;

/// Common interface of the read-ahead portion of a controller cache.
///
/// An *extent* is a contiguous run of physical blocks; a read request
/// hits only if **every** block of its extent is cached (a partial hit
/// still needs the media, so the controller treats it as a miss).
pub trait ControllerCache: std::fmt::Debug {
    /// Whether `block` is currently cached (no recency update, no stats).
    fn contains(&self, block: PhysBlock) -> bool;

    /// Looks up one block, updating recency and per-block stats.
    /// Returns `true` on a hit.
    fn touch(&mut self, block: PhysBlock) -> bool;

    /// Inserts a run of `nblocks` blocks starting at `start`. The first
    /// `requested` blocks were demanded by the host; the remainder are
    /// speculative read-ahead (tracked separately in the stats).
    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32);

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u32;

    /// Blocks currently resident.
    fn resident_blocks(&self) -> u32;

    /// Accumulated statistics.
    fn stats(&self) -> &CacheStats;

    /// Looks up a whole extent: touches every block, returns `true` only
    /// if all were hits, and records one extent-level lookup.
    fn lookup_extent(&mut self, start: PhysBlock, nblocks: u32) -> bool {
        let mut all = true;
        for i in 0..nblocks as u64 {
            if !self.touch(start.offset(i)) {
                all = false;
            }
        }
        self.record_extent(all);
        all
    }

    /// Records an extent-level lookup outcome (implementation hook for
    /// [`ControllerCache::lookup_extent`]).
    fn record_extent(&mut self, hit: bool);
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(cache: &mut dyn ControllerCache) {
        assert_eq!(cache.resident_blocks(), 0);
        cache.insert_run(PhysBlock::new(100), 8, 4);
        assert!(cache.contains(PhysBlock::new(100)));
        assert!(cache.contains(PhysBlock::new(107)));
        assert!(!cache.contains(PhysBlock::new(108)));
        assert!(cache.lookup_extent(PhysBlock::new(100), 8));
        assert!(!cache.lookup_extent(PhysBlock::new(100), 9));
        assert_eq!(cache.stats().extent_lookups, 2);
        assert_eq!(cache.stats().extent_hits, 1);
    }

    #[test]
    fn block_cache_satisfies_trait_contract() {
        let mut c = BlockCache::new(64, BlockReplacement::Mru);
        exercise(&mut c);
    }

    #[test]
    fn segment_cache_satisfies_trait_contract() {
        let mut c = SegmentCache::new(4, 32, SegmentReplacement::Lru);
        exercise(&mut c);
    }
}
