//! The conventional segment-based controller-cache organization.
//!
//! The cache is divided into a fixed number of segments, each assigned
//! to one sequential stream; an entire segment is the minimum unit of
//! allocation and replacement (§2.1 of the paper). Stream detection is
//! positional: a run that continues or overlaps an existing segment's
//! range belongs to that segment's stream and recycles it; anything
//! else allocates a free segment or evicts a victim whole.
//!
//! Lookups no longer scan every slot: a sorted extent index (one
//! `(start, slot)` entry per occupied segment) is binary-searched, and
//! because segment length is bounded by `seg_blocks`, only the entries
//! whose start falls inside one segment-length window of the probe can
//! cover it — O(log n + k) where k is the (normally 0 or 1) segments
//! in that window. The LRU/FIFO victim comes from an intrusive recency
//! list over the slots rather than a full `min_by_key` sweep. Where
//! overlapping segments both cover a block, the minimum covering slot
//! wins, which is exactly the first-matching-slot semantics of the
//! original linear scan (DESIGN.md §6.2).

use forhdc_sim::PhysBlock;

use crate::list::{List, Slab};
use crate::stats::CacheStats;
use crate::ControllerCache;

/// Victim-selection policy when all segments are busy.
///
/// LRU is the usual choice; FIFO, random and round-robin have also been
/// proposed (Soloviev 94, Ganger 95, Shriver 97) and are kept for the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SegmentReplacement {
    /// Evict the least recently used segment.
    #[default]
    Lru,
    /// Evict the oldest-allocated segment.
    Fifo,
    /// Evict a pseudo-random segment (deterministic xorshift).
    Random,
    /// Evict segments in rotating order.
    RoundRobin,
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: PhysBlock,
    len: u32,
    last_used: u64,
    /// Bit i set ⇒ block `start + i` was inserted by read-ahead.
    ra_mask: u128,
    /// Bit i set ⇒ block `start + i` has been demanded since insertion.
    used_mask: u128,
}

impl Segment {
    fn covers(&self, block: PhysBlock) -> Option<u32> {
        let b = block.index();
        let s = self.start.index();
        if b >= s && b < s + self.len as u64 {
            Some((b - s) as u32)
        } else {
            None
        }
    }
}

/// A fixed-count segment cache.
///
/// # Example
///
/// ```
/// use forhdc_cache::{ControllerCache, SegmentCache, SegmentReplacement};
/// use forhdc_sim::PhysBlock;
///
/// // Table 1 default: 27 segments of 32 blocks (128 KB).
/// let mut c = SegmentCache::new(27, 32, SegmentReplacement::Lru);
/// c.insert_run(PhysBlock::new(0), 32, 4);
/// assert!(c.lookup_extent(PhysBlock::new(4), 4)); // read-ahead hit
/// ```
#[derive(Debug)]
pub struct SegmentCache {
    segments: Vec<Option<Segment>>,
    /// One `(start block, slot)` entry per occupied slot, sorted. A
    /// probe binary-searches to the window of starts that could cover
    /// it (segment length never exceeds `seg_blocks`) and checks the
    /// handful of entries there. A sorted `Vec` beats a tree here: the
    /// whole index for a Table-1 cache is a couple of cache lines, and
    /// the O(n) insert memmove is dwarfed by the per-block mask work an
    /// insertion already does.
    extents: Vec<(u64, u32)>,
    /// Recency chain over occupied slots (node index == slot). Head =
    /// most recent; the LRU/FIFO victim is the tail. LRU promotes on
    /// touch and insert, FIFO on insert only.
    order: List,
    order_nodes: Slab<u32>,
    /// Slots fill in index order and never vacate, so the first free
    /// slot is simply the fill count.
    filled: usize,
    seg_blocks: u32,
    policy: SegmentReplacement,
    clock: u64,
    rr_cursor: usize,
    rng_state: u64,
    stats: CacheStats,
}

impl SegmentCache {
    /// Creates a cache of `segments` segments holding `seg_blocks`
    /// blocks each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `seg_blocks` exceeds 128
    /// (the per-segment bookkeeping uses 128-bit masks).
    pub fn new(segments: u32, seg_blocks: u32, policy: SegmentReplacement) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(
            (1..=128).contains(&seg_blocks),
            "segment blocks must be 1..=128"
        );
        let mut order_nodes = Slab::with_capacity(segments as usize);
        for slot in 0..segments {
            // Allocated in slot order with no frees, so node index ==
            // slot; nodes join the chain when their slot first fills.
            let idx = order_nodes.alloc(slot);
            debug_assert_eq!(idx, slot);
        }
        SegmentCache {
            segments: vec![None; segments as usize],
            extents: Vec::with_capacity(segments as usize),
            order: List::new(),
            order_nodes,
            filled: 0,
            seg_blocks,
            policy,
            clock: 0,
            rr_cursor: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::new(),
        }
    }

    /// Number of segments.
    pub fn segment_count(&self) -> u32 {
        self.segments.len() as u32
    }

    /// Blocks per segment.
    pub fn segment_blocks(&self) -> u32 {
        self.seg_blocks
    }

    /// The victim-selection policy.
    pub fn policy(&self) -> SegmentReplacement {
        self.policy
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Adds slot's `(start, slot)` entry to the sorted extent index.
    fn index_insert(&mut self, slot: u32) {
        let seg = self.segments[slot as usize].expect("indexing an empty slot");
        let key = (seg.start.index(), slot);
        match self.extents.binary_search(&key) {
            Ok(_) => debug_assert!(false, "slot {slot} indexed twice"),
            Err(pos) => self.extents.insert(pos, key),
        }
    }

    /// Removes slot's entry from the extent index.
    fn index_remove(&mut self, slot: u32) {
        let seg = self.segments[slot as usize].expect("unindexing an empty slot");
        let key = (seg.start.index(), slot);
        match self.extents.binary_search(&key) {
            Ok(pos) => {
                self.extents.remove(pos);
            }
            Err(_) => debug_assert!(false, "slot {slot} missing from index"),
        }
    }

    /// The entries whose start lies in `[lo, hi]` — the only ones whose
    /// segment can satisfy a probe derived from that window. One binary
    /// search finds the window's left edge; the right edge is reached
    /// by scanning, since a window spans at most a few entries.
    fn extents_in(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, u32)> + '_ {
        let from = self.extents.partition_point(|&(s, _)| s < lo);
        self.extents[from..]
            .iter()
            .copied()
            .take_while(move |&(s, _)| s <= hi)
    }

    /// The lowest slot covering `block` — what the original
    /// first-match scan over the slot vector returned.
    fn slot_covering(&self, block: PhysBlock) -> Option<u32> {
        let b = block.index();
        // A covering segment starts in (b - len, b], and len is at most
        // seg_blocks.
        let lo = b.saturating_sub(self.seg_blocks as u64 - 1);
        let mut found: Option<u32> = None;
        for (_, slot) in self.extents_in(lo, b) {
            let seg = self.segments[slot as usize].expect("indexed slot is occupied");
            if seg.covers(block).is_some() && found.is_none_or(|f| slot < f) {
                found = Some(slot);
            }
        }
        found
    }

    /// Deep structural validation for checked mode (DESIGN.md §6.5):
    /// slots fill in index order with `filled` exact, the sorted
    /// extent index carries exactly one matching entry per occupied
    /// slot, segment lengths stay within `seg_blocks` with their masks
    /// confined to the occupied bits, and the recency chain holds each
    /// occupied slot exactly once. O(slots) — called only from audit
    /// points behind `Auditor::enabled()`.
    pub fn check_coherence(&self) -> Result<(), String> {
        let occupied = self.segments.iter().filter(|s| s.is_some()).count();
        if occupied != self.filled {
            return Err(format!(
                "filled = {} but {occupied} occupied slots",
                self.filled
            ));
        }
        if self.segments[..self.filled].iter().any(|s| s.is_none()) {
            return Err(format!("hole below the fill mark ({})", self.filled));
        }
        if !self.extents.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("extent index out of order: {:?}", self.extents));
        }
        if self.extents.len() != self.filled {
            return Err(format!(
                "{} extent entries for {} occupied slots",
                self.extents.len(),
                self.filled
            ));
        }
        for &(start, slot) in &self.extents {
            let Some(Some(seg)) = self.segments.get(slot as usize) else {
                return Err(format!(
                    "extent entry ({start}, {slot}) points at an empty slot"
                ));
            };
            if seg.start.index() != start {
                return Err(format!(
                    "extent entry ({start}, {slot}) disagrees with segment start {}",
                    seg.start
                ));
            }
        }
        let mut chained = vec![false; self.segments.len()];
        for slot in self.order_nodes.iter(&self.order) {
            if self.segments[slot as usize].is_none() {
                return Err(format!("empty slot {slot} on the recency chain"));
            }
            if std::mem::replace(&mut chained[slot as usize], true) {
                return Err(format!("slot {slot} chained twice"));
            }
        }
        if chained.iter().filter(|&&c| c).count() != self.filled {
            return Err(format!(
                "{} chained slots for {} occupied",
                chained.iter().filter(|&&c| c).count(),
                self.filled
            ));
        }
        for (slot, seg) in self.segments.iter().enumerate() {
            let Some(seg) = seg else { continue };
            if seg.len == 0 || seg.len > self.seg_blocks {
                return Err(format!(
                    "slot {slot} holds {} blocks (max {})",
                    seg.len, self.seg_blocks
                ));
            }
            let valid = if seg.len >= 128 {
                !0
            } else {
                (1u128 << seg.len) - 1
            };
            if seg.ra_mask & !valid != 0 || seg.used_mask & !valid != 0 {
                return Err(format!(
                    "slot {slot} has mask bits beyond its {} blocks",
                    seg.len
                ));
            }
        }
        Ok(())
    }

    /// Picks the slot to (re)fill for a run starting at `start`:
    /// continuation/overlap of an existing stream first, then a free
    /// slot, then the policy victim.
    fn slot_for(&mut self, start: PhysBlock, nblocks: u32) -> usize {
        let run_end = start.index() + nblocks as u64;
        // Same stream: run overlaps or directly continues (is adjacent
        // to, on either side) a segment: start <= seg_end && run_end >=
        // seg_start. Such a segment starts no lower than start -
        // seg_blocks and no higher than run_end; ties go to the lowest
        // slot, matching the original first-match scan.
        let lo = start.index().saturating_sub(self.seg_blocks as u64);
        let mut same_stream: Option<u32> = None;
        for (s0, slot) in self.extents_in(lo, run_end) {
            let seg = self.segments[slot as usize].expect("indexed slot is occupied");
            if start.index() <= s0 + seg.len as u64 && same_stream.is_none_or(|s| slot < s) {
                same_stream = Some(slot);
            }
        }
        if let Some(slot) = same_stream {
            return slot as usize;
        }
        if self.filled < self.segments.len() {
            return self.filled;
        }
        match self.policy {
            // Both list tails are the stamp-minimal slot: LRU promotes
            // on every touch/insert, FIFO only on insert, matching the
            // original min-by last_used / created sweeps.
            SegmentReplacement::Lru | SegmentReplacement::Fifo => {
                self.order_nodes
                    .tail(&self.order)
                    .expect("all slots filled, none on the recency chain") as usize
            }
            SegmentReplacement::Random => (self.xorshift() % self.segments.len() as u64) as usize,
            SegmentReplacement::RoundRobin => {
                let i = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.segments.len();
                i
            }
        }
    }
}

impl ControllerCache for SegmentCache {
    fn contains(&self, block: PhysBlock) -> bool {
        self.slot_covering(block).is_some()
    }

    fn touch(&mut self, block: PhysBlock) -> bool {
        self.stats.block_lookups += 1;
        let stamp = self.tick();
        let Some(slot) = self.slot_covering(block) else {
            return false;
        };
        let seg = self.segments[slot as usize]
            .as_mut()
            .expect("indexed slot is occupied");
        let i = seg.covers(block).expect("indexed slot covers the block");
        self.stats.block_hits += 1;
        seg.last_used = stamp;
        let bit = 1u128 << i;
        if seg.ra_mask & bit != 0 && seg.used_mask & bit == 0 {
            self.stats.ra_used += 1;
        }
        seg.used_mask |= bit;
        if self.policy == SegmentReplacement::Lru {
            self.order_nodes.remove(&mut self.order, slot);
            self.order_nodes.push_front(&mut self.order, slot);
        }
        true
    }

    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        debug_assert!(requested <= nblocks);
        // A run longer than a segment keeps only its tail (the freshest
        // data, matching a circular segment buffer).
        let (start, nblocks, requested) = if nblocks > self.seg_blocks {
            let drop = (nblocks - self.seg_blocks) as u64;
            (
                start.offset(drop),
                self.seg_blocks,
                requested.saturating_sub(drop as u32),
            )
        } else {
            (start, nblocks, requested)
        };
        let slot = self.slot_for(start, nblocks);
        let stamp = self.tick();
        if let Some(old) = self.segments[slot] {
            self.stats.evictions += old.len as u64;
            self.index_remove(slot as u32);
            self.order_nodes.remove(&mut self.order, slot as u32);
        } else {
            self.filled += 1;
        }
        // Bits [requested, nblocks) in one shot (nblocks <= 128, so the
        // full-width case needs the shift-overflow guard).
        let bits_below = |n: u32| -> u128 {
            if n >= 128 {
                !0
            } else {
                (1u128 << n) - 1
            }
        };
        let ra_mask = bits_below(nblocks) & !bits_below(requested);
        self.stats.insertions += nblocks as u64;
        self.stats.ra_inserted += (nblocks - requested) as u64;
        self.segments[slot] = Some(Segment {
            start,
            len: nblocks,
            last_used: stamp,
            ra_mask,
            used_mask: 0,
        });
        self.index_insert(slot as u32);
        self.order_nodes.push_front(&mut self.order, slot as u32);
        // Every insertion/eviction above keeps these counters exact, so
        // their difference is the resident-block count without an O(slots)
        // rescan.
        self.stats
            .note_occupancy(self.stats.insertions - self.stats.evictions);
    }

    fn capacity_blocks(&self) -> u32 {
        self.segments.len() as u32 * self.seg_blocks
    }

    fn resident_blocks(&self) -> u32 {
        self.segments.iter().flatten().map(|s| s.len).sum()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_extent(&mut self, hit: bool) {
        self.stats.extent_lookups += 1;
        if hit {
            self.stats.extent_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> PhysBlock {
        PhysBlock::new(n)
    }

    #[test]
    fn whole_segment_replaced_at_once() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 8);
        c.insert_run(b(100), 8, 8);
        assert_eq!(c.resident_blocks(), 16);
        // Third stream evicts the LRU segment (blocks 0..8) entirely.
        c.insert_run(b(200), 8, 8);
        assert!(!c.contains(b(0)));
        assert!(!c.contains(b(7)));
        assert!(c.contains(b(100)));
        assert!(c.contains(b(200)));
        assert_eq!(c.stats().evictions, 8);
    }

    #[test]
    fn continuation_reuses_stream_segment() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 8);
        c.insert_run(b(100), 8, 8);
        // Run continuing stream 1 (blocks 8..16) recycles its segment,
        // not the LRU victim.
        c.insert_run(b(8), 8, 8);
        assert!(c.contains(b(8)));
        assert!(!c.contains(b(0)));
        assert!(c.contains(b(100)));
    }

    #[test]
    fn lru_picks_least_recent() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Lru);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.touch(b(0)); // stream A now more recent
        c.insert_run(b(200), 4, 4);
        assert!(c.contains(b(0)));
        assert!(!c.contains(b(100)));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Fifo);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.touch(b(0)); // does not save stream A under FIFO
        c.insert_run(b(200), 4, 4);
        assert!(!c.contains(b(0)));
        assert!(c.contains(b(100)));
    }

    #[test]
    fn round_robin_rotates() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::RoundRobin);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.insert_run(b(200), 4, 4); // evicts slot 0
        c.insert_run(b(300), 4, 4); // evicts slot 1
        assert!(!c.contains(b(0)));
        assert!(!c.contains(b(100)));
        assert!(c.contains(b(200)));
        assert!(c.contains(b(300)));
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = SegmentCache::new(3, 4, SegmentReplacement::Random);
            for i in 0..20u64 {
                c.insert_run(b(i * 50), 4, 4);
            }
            (0..20u64)
                .map(|i| c.contains(b(i * 50)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_run_keeps_tail() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Lru);
        c.insert_run(b(0), 10, 10);
        assert!(!c.contains(b(5)));
        assert!(c.contains(b(6)));
        assert!(c.contains(b(9)));
        assert_eq!(c.resident_blocks(), 4);
    }

    #[test]
    fn ra_tracking_within_segment() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 2); // 6 RA blocks
        assert_eq!(c.stats().ra_inserted, 6);
        c.touch(b(2));
        c.touch(b(2));
        c.touch(b(0)); // demanded block, not RA
        assert_eq!(c.stats().ra_used, 1);
    }

    #[test]
    fn overlapping_segments_keep_first_match_semantics() {
        // Slot 0 = [0,8), slot 1 = [20,28); a run [6,14) overlaps slot
        // 0 and replaces it, leaving slots [6,14) and [20,28). A run
        // [12,20) then overlaps slot 0 again (block 12..14) — and after
        // the replace, [12,20) grazes slot 1's start (block 20 is
        // adjacent), exercising index updates under overlap.
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 8);
        c.insert_run(b(20), 8, 8);
        c.insert_run(b(6), 8, 8); // replaces slot 0
        assert!(!c.contains(b(0)));
        assert!(c.contains(b(6)));
        assert!(c.contains(b(13)));
        assert!(c.contains(b(20)));
        c.insert_run(b(12), 8, 8); // continues slot 0's stream
        assert!(c.contains(b(12)));
        assert!(c.contains(b(19)));
        assert!(!c.contains(b(6)));
        assert!(c.contains(b(27)));
        assert_eq!(c.resident_blocks(), 16);
    }

    #[test]
    fn capacity_accounts_all_segments() {
        let c = SegmentCache::new(27, 32, SegmentReplacement::Lru);
        assert_eq!(c.capacity_blocks(), 27 * 32);
        assert_eq!(c.segment_count(), 27);
        assert_eq!(c.segment_blocks(), 32);
    }

    #[test]
    #[should_panic(expected = "segment blocks")]
    fn oversized_segment_panics() {
        let _ = SegmentCache::new(1, 129, SegmentReplacement::Lru);
    }
}
