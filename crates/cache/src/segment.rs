//! The conventional segment-based controller-cache organization.
//!
//! The cache is divided into a fixed number of segments, each assigned
//! to one sequential stream; an entire segment is the minimum unit of
//! allocation and replacement (§2.1 of the paper). Stream detection is
//! positional: a run that continues or overlaps an existing segment's
//! range belongs to that segment's stream and recycles it; anything
//! else allocates a free segment or evicts a victim whole.

use forhdc_sim::PhysBlock;

use crate::stats::CacheStats;
use crate::ControllerCache;

/// Victim-selection policy when all segments are busy.
///
/// LRU is the usual choice; FIFO, random and round-robin have also been
/// proposed (Soloviev 94, Ganger 95, Shriver 97) and are kept for the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SegmentReplacement {
    /// Evict the least recently used segment.
    #[default]
    Lru,
    /// Evict the oldest-allocated segment.
    Fifo,
    /// Evict a pseudo-random segment (deterministic xorshift).
    Random,
    /// Evict segments in rotating order.
    RoundRobin,
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: PhysBlock,
    len: u32,
    created: u64,
    last_used: u64,
    /// Bit i set ⇒ block `start + i` was inserted by read-ahead.
    ra_mask: u128,
    /// Bit i set ⇒ block `start + i` has been demanded since insertion.
    used_mask: u128,
}

impl Segment {
    fn covers(&self, block: PhysBlock) -> Option<u32> {
        let b = block.index();
        let s = self.start.index();
        if b >= s && b < s + self.len as u64 {
            Some((b - s) as u32)
        } else {
            None
        }
    }

    fn end(&self) -> PhysBlock {
        self.start.offset(self.len as u64)
    }
}

/// A fixed-count segment cache.
///
/// # Example
///
/// ```
/// use forhdc_cache::{ControllerCache, SegmentCache, SegmentReplacement};
/// use forhdc_sim::PhysBlock;
///
/// // Table 1 default: 27 segments of 32 blocks (128 KB).
/// let mut c = SegmentCache::new(27, 32, SegmentReplacement::Lru);
/// c.insert_run(PhysBlock::new(0), 32, 4);
/// assert!(c.lookup_extent(PhysBlock::new(4), 4)); // read-ahead hit
/// ```
#[derive(Debug)]
pub struct SegmentCache {
    segments: Vec<Option<Segment>>,
    seg_blocks: u32,
    policy: SegmentReplacement,
    clock: u64,
    rr_cursor: usize,
    rng_state: u64,
    stats: CacheStats,
}

impl SegmentCache {
    /// Creates a cache of `segments` segments holding `seg_blocks`
    /// blocks each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `seg_blocks` exceeds 128
    /// (the per-segment bookkeeping uses 128-bit masks).
    pub fn new(segments: u32, seg_blocks: u32, policy: SegmentReplacement) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(
            (1..=128).contains(&seg_blocks),
            "segment blocks must be 1..=128"
        );
        SegmentCache {
            segments: vec![None; segments as usize],
            seg_blocks,
            policy,
            clock: 0,
            rr_cursor: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::new(),
        }
    }

    /// Number of segments.
    pub fn segment_count(&self) -> u32 {
        self.segments.len() as u32
    }

    /// Blocks per segment.
    pub fn segment_blocks(&self) -> u32 {
        self.seg_blocks
    }

    /// The victim-selection policy.
    pub fn policy(&self) -> SegmentReplacement {
        self.policy
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Picks the slot to (re)fill for a run starting at `start`:
    /// continuation/overlap of an existing stream first, then a free
    /// slot, then the policy victim.
    fn slot_for(&mut self, start: PhysBlock, nblocks: u32) -> usize {
        let run_end = start.index() + nblocks as u64;
        // Same stream: run overlaps or directly continues the segment.
        if let Some(i) = self.segments.iter().position(|s| {
            s.is_some_and(|seg| {
                let s0 = seg.start.index();
                let s1 = seg.end().index();
                start.index() <= s1 && run_end >= s0
            })
        }) {
            return i;
        }
        if let Some(i) = self.segments.iter().position(Option::is_none) {
            return i;
        }
        match self.policy {
            SegmentReplacement::Lru => self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|seg| seg.last_used).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("non-empty segment vector"),
            SegmentReplacement::Fifo => self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|seg| seg.created).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("non-empty segment vector"),
            SegmentReplacement::Random => (self.xorshift() % self.segments.len() as u64) as usize,
            SegmentReplacement::RoundRobin => {
                let i = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.segments.len();
                i
            }
        }
    }
}

impl ControllerCache for SegmentCache {
    fn contains(&self, block: PhysBlock) -> bool {
        self.segments
            .iter()
            .flatten()
            .any(|s| s.covers(block).is_some())
    }

    fn touch(&mut self, block: PhysBlock) -> bool {
        self.stats.block_lookups += 1;
        let stamp = self.tick();
        for seg in self.segments.iter_mut().flatten() {
            if let Some(i) = seg.covers(block) {
                self.stats.block_hits += 1;
                seg.last_used = stamp;
                let bit = 1u128 << i;
                if seg.ra_mask & bit != 0 && seg.used_mask & bit == 0 {
                    self.stats.ra_used += 1;
                }
                seg.used_mask |= bit;
                return true;
            }
        }
        false
    }

    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        debug_assert!(requested <= nblocks);
        // A run longer than a segment keeps only its tail (the freshest
        // data, matching a circular segment buffer).
        let (start, nblocks, requested) = if nblocks > self.seg_blocks {
            let drop = (nblocks - self.seg_blocks) as u64;
            (
                start.offset(drop),
                self.seg_blocks,
                requested.saturating_sub(drop as u32),
            )
        } else {
            (start, nblocks, requested)
        };
        let slot = self.slot_for(start, nblocks);
        let stamp = self.tick();
        if let Some(old) = self.segments[slot] {
            self.stats.evictions += old.len as u64;
        }
        let mut ra_mask = 0u128;
        for i in requested..nblocks {
            ra_mask |= 1u128 << i;
        }
        self.stats.insertions += nblocks as u64;
        self.stats.ra_inserted += (nblocks - requested) as u64;
        self.segments[slot] = Some(Segment {
            start,
            len: nblocks,
            created: stamp,
            last_used: stamp,
            ra_mask,
            used_mask: 0,
        });
    }

    fn capacity_blocks(&self) -> u32 {
        self.segments.len() as u32 * self.seg_blocks
    }

    fn resident_blocks(&self) -> u32 {
        self.segments.iter().flatten().map(|s| s.len).sum()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_extent(&mut self, hit: bool) {
        self.stats.extent_lookups += 1;
        if hit {
            self.stats.extent_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> PhysBlock {
        PhysBlock::new(n)
    }

    #[test]
    fn whole_segment_replaced_at_once() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 8);
        c.insert_run(b(100), 8, 8);
        assert_eq!(c.resident_blocks(), 16);
        // Third stream evicts the LRU segment (blocks 0..8) entirely.
        c.insert_run(b(200), 8, 8);
        assert!(!c.contains(b(0)));
        assert!(!c.contains(b(7)));
        assert!(c.contains(b(100)));
        assert!(c.contains(b(200)));
        assert_eq!(c.stats().evictions, 8);
    }

    #[test]
    fn continuation_reuses_stream_segment() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 8);
        c.insert_run(b(100), 8, 8);
        // Run continuing stream 1 (blocks 8..16) recycles its segment,
        // not the LRU victim.
        c.insert_run(b(8), 8, 8);
        assert!(c.contains(b(8)));
        assert!(!c.contains(b(0)));
        assert!(c.contains(b(100)));
    }

    #[test]
    fn lru_picks_least_recent() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Lru);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.touch(b(0)); // stream A now more recent
        c.insert_run(b(200), 4, 4);
        assert!(c.contains(b(0)));
        assert!(!c.contains(b(100)));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Fifo);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.touch(b(0)); // does not save stream A under FIFO
        c.insert_run(b(200), 4, 4);
        assert!(!c.contains(b(0)));
        assert!(c.contains(b(100)));
    }

    #[test]
    fn round_robin_rotates() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::RoundRobin);
        c.insert_run(b(0), 4, 4);
        c.insert_run(b(100), 4, 4);
        c.insert_run(b(200), 4, 4); // evicts slot 0
        c.insert_run(b(300), 4, 4); // evicts slot 1
        assert!(!c.contains(b(0)));
        assert!(!c.contains(b(100)));
        assert!(c.contains(b(200)));
        assert!(c.contains(b(300)));
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = SegmentCache::new(3, 4, SegmentReplacement::Random);
            for i in 0..20u64 {
                c.insert_run(b(i * 50), 4, 4);
            }
            (0..20u64)
                .map(|i| c.contains(b(i * 50)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_run_keeps_tail() {
        let mut c = SegmentCache::new(2, 4, SegmentReplacement::Lru);
        c.insert_run(b(0), 10, 10);
        assert!(!c.contains(b(5)));
        assert!(c.contains(b(6)));
        assert!(c.contains(b(9)));
        assert_eq!(c.resident_blocks(), 4);
    }

    #[test]
    fn ra_tracking_within_segment() {
        let mut c = SegmentCache::new(2, 8, SegmentReplacement::Lru);
        c.insert_run(b(0), 8, 2); // 6 RA blocks
        assert_eq!(c.stats().ra_inserted, 6);
        c.touch(b(2));
        c.touch(b(2));
        c.touch(b(0)); // demanded block, not RA
        assert_eq!(c.stats().ra_used, 1);
    }

    #[test]
    fn capacity_accounts_all_segments() {
        let c = SegmentCache::new(27, 32, SegmentReplacement::Lru);
        assert_eq!(c.capacity_blocks(), 27 * 32);
        assert_eq!(c.segment_count(), 27);
        assert_eq!(c.segment_blocks(), 32);
    }

    #[test]
    #[should_panic(expected = "segment blocks")]
    fn oversized_segment_panics() {
        let _ = SegmentCache::new(1, 129, SegmentReplacement::Lru);
    }
}
