//! A fast, non-cryptographic hasher for the hot-path maps.
//!
//! The caches key their maps by dense integer ids (block numbers), for
//! which SipHash's HashDoS resistance buys nothing and costs a large
//! slice of every lookup. This is the Fx algorithm (rustc's internal
//! hasher: rotate, xor, multiply per word) — a handful of cycles per
//! `u64` key. Only use it for keys an adversary cannot choose.
//!
//! Determinism note: none of the hot-path structures iterate these
//! maps in hash order (results are always re-sorted or reached through
//! keyed lookups), so swapping the hasher cannot change any observable
//! output — see DESIGN.md §6.2.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash ("Fx") hasher: one rotate-xor-multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Creates an [`FxHashMap`] pre-sized for `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(8);
        for i in 0..100u64 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7 * 13)), Some(&13));
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn hashes_spread_sequential_keys() {
        // Dense sequential keys (the common block-number pattern) must
        // not collapse onto a few buckets.
        let hashes: std::collections::HashSet<u64> = (0..1000u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_writes_match_word_writes_for_8_bytes() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
