//! The block-based controller-cache organization of section 4.
//!
//! Blocks are assigned to streams on demand from a pool of free blocks;
//! when the pool runs dry, individual blocks are replaced. The paper's
//! FOR technique replaces blocks **MRU** — and the recency that matters
//! is the *host's* accesses: controller caches have almost no temporal
//! locality (§2.1), so a block the host just consumed is the least
//! likely to be needed again (the host now caches it itself), while a
//! prefetched block that has *not* been consumed yet is exactly the
//! data a live stream is about to demand. Eviction therefore prefers
//! consumed blocks (most recently consumed first) and falls back to the
//! stalest unconsumed prefetch only when every resident block is still
//! awaiting its first use.
//!
//! Every operation is O(1): recency lives in two slab-backed intrusive
//! lists ([`crate::list`]) — one for consumed ("used") blocks, one for
//! never-consumed prefetches — replacing the original
//! `BTreeSet<(stamp, block)>` sets whose O(log n) churn dominated the
//! per-I/O hot path. Eviction order is observably identical: list order
//! equals stamp order because both are maintained by the same monotonic
//! clock (DESIGN.md §6.2).

use forhdc_sim::PhysBlock;

use crate::fx::{fx_map_with_capacity, FxHashMap};
use crate::list::{List, Slab};
use crate::stats::CacheStats;
use crate::ControllerCache;

/// Replacement policy for [`BlockCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockReplacement {
    /// Evict consumed blocks first, most recently consumed first; fall
    /// back to the oldest unconsumed prefetch (the paper's FOR choice).
    #[default]
    Mru,
    /// Evict the least recently inserted-or-touched block (ablation).
    Lru,
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    block: PhysBlock,
    /// Monotonic recency stamp; only *compared* (never ordered over a
    /// set) — the LRU ablation picks the staler of the two list tails.
    stamp: u64,
    read_ahead: bool,
    used: bool,
}

/// Highest block index the residency filter covers. Real disks sit far
/// below this (a few million blocks); the cap only bounds filter memory
/// against pathological block numbers, which simply fall through to the
/// hash map.
const FILTER_LIMIT: u64 = 1 << 27;

/// A pool of individually replaceable cache blocks.
///
/// # Example
///
/// ```
/// use forhdc_cache::{BlockCache, BlockReplacement, ControllerCache};
/// use forhdc_sim::PhysBlock;
///
/// let mut c = BlockCache::new(4, BlockReplacement::Mru);
/// c.insert_run(PhysBlock::new(0), 4, 4);
/// c.touch(PhysBlock::new(0)); // host consumes block 0
/// // Inserting one more evicts the consumed block, not the live data.
/// c.insert_run(PhysBlock::new(100), 1, 1);
/// assert!(!c.contains(PhysBlock::new(0)));
/// assert!(c.contains(PhysBlock::new(3)));
/// ```
#[derive(Debug)]
pub struct BlockCache {
    map: FxHashMap<PhysBlock, u32>,
    /// Residency bit filter: for blocks below [`FILTER_LIMIT`], bit `b`
    /// is set iff `b` is a key of `map`. Controller caches are
    /// miss-dominated (§2.1), and this turns every per-block miss —
    /// `touch`, `contains` — into one word read instead of a hash
    /// probe. Lazily grown to the highest block actually inserted.
    present: Vec<u64>,
    nodes: Slab<BlockMeta>,
    /// Blocks the host has demanded at least once; head = most
    /// recently consumed.
    used: List,
    /// Blocks never demanded since insertion; head = most recently
    /// inserted, tail = stalest prefetch.
    unused: List,
    capacity: u32,
    policy: BlockReplacement,
    clock: u64,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates an empty cache of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, policy: BlockReplacement) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            // One above capacity: insertion transiently holds the new
            // block alongside the victim it is about to displace.
            map: fx_map_with_capacity(capacity as usize + 1),
            present: Vec::new(),
            nodes: Slab::with_capacity(capacity as usize + 1),
            used: List::new(),
            unused: List::new(),
            capacity,
            policy,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> BlockReplacement {
        self.policy
    }

    /// Whether the filter *proves* `block` absent. `false` means
    /// "possibly resident, ask the map" — either the bit is set or the
    /// block lies outside the filter's range.
    #[inline]
    fn filter_absent(&self, block: PhysBlock) -> bool {
        let i = block.index();
        if i >= FILTER_LIMIT {
            return false;
        }
        match self.present.get((i / 64) as usize) {
            Some(w) => w & (1u64 << (i % 64)) == 0,
            None => true,
        }
    }

    #[inline]
    fn filter_set(&mut self, block: PhysBlock) {
        let i = block.index();
        if i >= FILTER_LIMIT {
            return;
        }
        let w = (i / 64) as usize;
        if w >= self.present.len() {
            self.present.resize(w + 1, 0);
        }
        self.present[w] |= 1u64 << (i % 64);
    }

    #[inline]
    fn filter_clear(&mut self, block: PhysBlock) {
        let i = block.index();
        if i >= FILTER_LIMIT {
            return;
        }
        if let Some(w) = self.present.get_mut((i / 64) as usize) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Removes `block` if present (used by HDC hand-off so a block is
    /// never double-counted in two regions). Returns whether it was
    /// resident.
    pub fn evict(&mut self, block: PhysBlock) -> bool {
        if let Some(idx) = self.map.remove(&block) {
            self.filter_clear(block);
            self.unlink_and_free(idx);
            self.stats.evictions += 1;
            true
        } else {
            false
        }
    }

    /// Unlinks `idx` from whichever recency list holds it and returns
    /// the node to the slab.
    fn unlink_and_free(&mut self, idx: u32) {
        let used = self.nodes.get(idx).used;
        if used {
            self.nodes.remove(&mut self.used, idx);
        } else {
            self.nodes.remove(&mut self.unused, idx);
        }
        self.nodes.release(idx);
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_victim(&mut self) {
        let victim = match self.policy {
            // Most recently consumed block, else the stalest prefetch.
            BlockReplacement::Mru => self
                .nodes
                .head(&self.used)
                .or_else(|| self.nodes.tail(&self.unused)),
            // Globally least recent across both lists: both tails are
            // their list's oldest, so compare their stamps.
            BlockReplacement::Lru => {
                match (self.nodes.tail(&self.used), self.nodes.tail(&self.unused)) {
                    (Some(a), Some(b)) => {
                        Some(if self.nodes.get(a).stamp < self.nodes.get(b).stamp {
                            a
                        } else {
                            b
                        })
                    }
                    (a, b) => a.or(b),
                }
            }
        };
        if let Some(idx) = victim {
            let block = self.nodes.get(idx).block;
            self.map.remove(&block);
            self.filter_clear(block);
            self.unlink_and_free(idx);
            self.stats.evictions += 1;
        }
    }

    /// Deep structural validation for checked mode (DESIGN.md §6.5):
    /// recency lists ↔ map agreement (every listed node maps back to
    /// its slab index, every resident block is on exactly one list),
    /// `used` flags matching list membership, strictly decreasing
    /// stamps front-to-back, and occupancy ≤ capacity. O(residents) —
    /// called only from audit points behind `Auditor::enabled()`.
    pub fn check_coherence(&self) -> Result<(), String> {
        if self.map.len() as u32 > self.capacity {
            return Err(format!(
                "occupancy {} exceeds capacity {}",
                self.map.len(),
                self.capacity
            ));
        }
        let mut listed = 0usize;
        for (list, name, used_flag) in [(&self.used, "used", true), (&self.unused, "unused", false)]
        {
            let mut prev_stamp: Option<u64> = None;
            for idx in self.nodes.iter(list) {
                let meta = self.nodes.get(idx);
                if meta.used != used_flag {
                    return Err(format!(
                        "block {} on the {name} list has used={}",
                        meta.block, meta.used
                    ));
                }
                if self.map.get(&meta.block) != Some(&idx) {
                    return Err(format!(
                        "block {} on the {name} list maps to {:?}, not node {idx}",
                        meta.block,
                        self.map.get(&meta.block)
                    ));
                }
                if prev_stamp.is_some_and(|p| meta.stamp >= p) {
                    return Err(format!(
                        "{name} list not in recency order at block {} (stamp {})",
                        meta.block, meta.stamp
                    ));
                }
                prev_stamp = Some(meta.stamp);
                listed += 1;
            }
        }
        if listed != self.map.len() {
            return Err(format!(
                "{} resident blocks but {listed} list nodes",
                self.map.len()
            ));
        }
        // Residency filter exactness: every covered resident block has
        // its bit set, and no stale bits survive an eviction.
        let covered = self.map.keys().filter(|b| b.index() < FILTER_LIMIT).count() as u64;
        let set: u64 = self.present.iter().map(|w| w.count_ones() as u64).sum();
        if covered != set {
            return Err(format!(
                "residency filter holds {set} bits for {covered} covered blocks"
            ));
        }
        for block in self.map.keys() {
            if self.filter_absent(*block) {
                return Err(format!("resident block {block} missing from filter"));
            }
        }
        Ok(())
    }

    fn insert_one(&mut self, block: PhysBlock, read_ahead: bool) {
        let stamp = self.next_stamp();
        match self.map.entry(block) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Re-read of a resident block: refresh it. A fresh media
                // read means a new stream wants it, so it re-enters the
                // unconsumed state.
                let idx = *e.get();
                if read_ahead {
                    // The speculative fetch is re-counted so that a later
                    // demand keeps `ra_used <= ra_inserted`.
                    self.stats.ra_inserted += 1;
                }
                if self.nodes.get(idx).used {
                    self.nodes.remove(&mut self.used, idx);
                } else {
                    self.nodes.remove(&mut self.unused, idx);
                }
                let meta = self.nodes.get_mut(idx);
                meta.stamp = stamp;
                meta.used = false;
                meta.read_ahead = read_ahead;
                self.nodes.push_front(&mut self.unused, idx);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                // Insert first, evict after — one map probe instead of
                // the get-then-insert pair. The victim is unchanged:
                // the new block enters at the front of the unused list,
                // and neither victim rule (head of used; tail of
                // unused, which the new block only is when it is the
                // sole resident — impossible while over capacity) can
                // select it.
                let idx = self.nodes.alloc(BlockMeta {
                    block,
                    stamp,
                    read_ahead,
                    used: false,
                });
                self.nodes.push_front(&mut self.unused, idx);
                e.insert(idx);
                self.filter_set(block);
                self.stats.insertions += 1;
                if read_ahead {
                    self.stats.ra_inserted += 1;
                }
                if self.map.len() as u32 > self.capacity {
                    self.evict_victim();
                }
                self.stats.note_occupancy(self.map.len() as u64);
            }
        }
    }
}

impl ControllerCache for BlockCache {
    fn contains(&self, block: PhysBlock) -> bool {
        !self.filter_absent(block) && self.map.contains_key(&block)
    }

    fn touch(&mut self, block: PhysBlock) -> bool {
        self.stats.block_lookups += 1;
        // The clock advances on misses too (stamp parity with the
        // pre-filter implementation).
        let stamp = self.next_stamp();
        if self.filter_absent(block) {
            return false;
        }
        let Some(&idx) = self.map.get(&block) else {
            return false;
        };
        self.stats.block_hits += 1;
        let meta = self.nodes.get(idx);
        if meta.read_ahead && !meta.used {
            self.stats.ra_used += 1;
        }
        if meta.used {
            self.nodes.remove(&mut self.used, idx);
        } else {
            self.nodes.remove(&mut self.unused, idx);
        }
        let meta = self.nodes.get_mut(idx);
        meta.used = true;
        meta.stamp = stamp;
        self.nodes.push_front(&mut self.used, idx);
        true
    }

    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        debug_assert!(requested <= nblocks);
        for i in 0..nblocks as u64 {
            self.insert_one(start.offset(i), i >= requested as u64);
        }
    }

    fn capacity_blocks(&self) -> u32 {
        self.capacity
    }

    fn resident_blocks(&self) -> u32 {
        self.map.len() as u32
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_extent(&mut self, hit: bool) {
        self.stats.extent_lookups += 1;
        if hit {
            self.stats.extent_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> PhysBlock {
        PhysBlock::new(n)
    }

    #[test]
    fn mru_evicts_consumed_blocks_first() {
        let mut c = BlockCache::new(3, BlockReplacement::Mru);
        c.insert_run(b(0), 3, 3);
        c.touch(b(0));
        c.touch(b(1)); // 1 is the most recently consumed
        c.insert_run(b(10), 1, 1);
        assert!(c.contains(b(0)));
        assert!(!c.contains(b(1)));
        assert!(c.contains(b(2))); // unconsumed: protected
        assert!(c.contains(b(10)));
    }

    #[test]
    fn mru_falls_back_to_oldest_unconsumed() {
        let mut c = BlockCache::new(3, BlockReplacement::Mru);
        c.insert_run(b(0), 3, 3); // nothing consumed
        c.insert_run(b(10), 1, 1);
        assert!(!c.contains(b(0))); // oldest prefetch goes
        assert!(c.contains(b(1)));
        assert!(c.contains(b(2)));
    }

    #[test]
    fn full_cache_run_insert_does_not_self_destruct() {
        // The pathology the naive insert-stamp MRU exhibits: inserting a
        // run into a full cache must not evict the run's own blocks.
        let mut c = BlockCache::new(32, BlockReplacement::Mru);
        c.insert_run(b(0), 32, 32);
        for i in 0..32 {
            c.touch(b(i)); // consume everything
        }
        c.insert_run(b(100), 32, 8);
        for i in 100..132 {
            assert!(c.contains(b(i)), "run block {i} missing");
        }
    }

    #[test]
    fn lru_evicts_least_recent_overall() {
        let mut c = BlockCache::new(3, BlockReplacement::Lru);
        c.insert_run(b(0), 3, 3);
        c.touch(b(0)); // refresh block 0; LRU victim becomes block 1
        c.insert_run(b(10), 1, 1);
        assert!(c.contains(b(0)));
        assert!(!c.contains(b(1)));
        assert!(c.contains(b(2)));
    }

    #[test]
    fn ra_usage_tracked_once() {
        let mut c = BlockCache::new(8, BlockReplacement::Mru);
        c.insert_run(b(0), 4, 2); // blocks 2,3 are read-ahead
        assert_eq!(c.stats().ra_inserted, 2);
        c.touch(b(2));
        c.touch(b(2));
        c.touch(b(3));
        assert_eq!(c.stats().ra_used, 2); // counted on first demand only
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = BlockCache::new(4, BlockReplacement::Mru);
        c.insert_run(b(0), 2, 2);
        c.insert_run(b(0), 2, 2);
        assert_eq!(c.resident_blocks(), 2);
        assert_eq!(c.stats().insertions, 2);
    }

    #[test]
    fn reinsert_resets_consumed_state() {
        let mut c = BlockCache::new(2, BlockReplacement::Mru);
        c.insert_run(b(0), 2, 2);
        c.touch(b(0));
        c.insert_run(b(0), 1, 1); // fresh media read of block 0
                                  // Block 1 untouched (unconsumed), block 0 unconsumed again: with
                                  // no consumed blocks the oldest unconsumed (block 1) goes.
        c.insert_run(b(5), 1, 1);
        assert!(c.contains(b(0)));
        assert!(!c.contains(b(1)));
    }

    #[test]
    fn demand_reinsert_clears_ra_provenance() {
        let mut c = BlockCache::new(4, BlockReplacement::Mru);
        c.insert_run(b(0), 2, 0); // both RA
        c.insert_run(b(0), 1, 1); // block 0 now demanded
        c.touch(b(0));
        assert_eq!(
            c.stats().ra_used,
            0,
            "demanded reinsert should clear RA flag"
        );
        c.touch(b(1));
        assert_eq!(c.stats().ra_used, 1);
    }

    #[test]
    fn explicit_evict() {
        let mut c = BlockCache::new(4, BlockReplacement::Mru);
        c.insert_run(b(5), 1, 1);
        c.touch(b(5));
        assert!(c.evict(b(5)));
        assert!(!c.evict(b(5)));
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = BlockCache::new(16, BlockReplacement::Mru);
        for i in 0..100 {
            c.insert_run(b(i * 3), 3, 1);
            c.touch(b(i * 3));
            assert!(c.resident_blocks() <= 16);
        }
        assert_eq!(c.resident_blocks(), 16);
    }

    #[test]
    fn internal_orders_stay_consistent() {
        let mut c = BlockCache::new(8, BlockReplacement::Mru);
        for i in 0..50u64 {
            c.insert_run(b(i % 12), 1, if i % 3 == 0 { 0 } else { 1 });
            c.touch(b((i * 7) % 12));
        }
        let used_len = c.nodes.iter(&c.used).count();
        let unused_len = c.nodes.iter(&c.unused).count();
        assert_eq!(c.resident_blocks() as usize, used_len + unused_len);
        // Each list is stamp-ordered, most recent first.
        for list in [&c.used, &c.unused] {
            let stamps: Vec<u64> = c.nodes.iter(list).map(|i| c.nodes.get(i).stamp).collect();
            assert!(stamps.windows(2).all(|w| w[0] > w[1]), "{stamps:?}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BlockCache::new(0, BlockReplacement::Mru);
    }
}
