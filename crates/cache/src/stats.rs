//! Cache statistics shared by both organizations.

use std::fmt;

/// Hit/miss and read-ahead-effectiveness counters.
///
/// Block-level counters track individual block touches; extent-level
/// counters track whole-request lookups (a request hits only when all
/// its blocks do).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Individual block lookups.
    pub block_lookups: u64,
    /// Individual block hits.
    pub block_hits: u64,
    /// Whole-extent lookups.
    pub extent_lookups: u64,
    /// Whole-extent hits (every block present).
    pub extent_hits: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Blocks inserted speculatively by read-ahead.
    pub ra_inserted: u64,
    /// Read-ahead blocks that were later actually demanded (first hit).
    pub ra_used: u64,
    /// Occupancy high-water mark: the most blocks ever resident at
    /// once (updated on insertion).
    pub occupancy_hwm: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Block-level hit rate in `[0, 1]` (0 when no lookups).
    pub fn block_hit_rate(&self) -> f64 {
        if self.block_lookups == 0 {
            0.0
        } else {
            self.block_hits as f64 / self.block_lookups as f64
        }
    }

    /// Extent-level (request) hit rate in `[0, 1]` (0 when no lookups).
    pub fn extent_hit_rate(&self) -> f64 {
        if self.extent_lookups == 0 {
            0.0
        } else {
            self.extent_hits as f64 / self.extent_lookups as f64
        }
    }

    /// Fraction of read-ahead blocks that proved useful, in `[0, 1]`
    /// (0 when read-ahead never ran).
    pub fn ra_accuracy(&self) -> f64 {
        if self.ra_inserted == 0 {
            0.0
        } else {
            self.ra_used as f64 / self.ra_inserted as f64
        }
    }

    /// Notes the current resident-block count, updating the occupancy
    /// high-water mark.
    pub fn note_occupancy(&mut self, resident: u64) {
        self.occupancy_hwm = self.occupancy_hwm.max(resident);
    }

    /// Merges counters from another cache (array-wide aggregation).
    pub fn merge(&mut self, other: &CacheStats) {
        self.block_lookups += other.block_lookups;
        self.block_hits += other.block_hits;
        self.extent_lookups += other.extent_lookups;
        self.extent_hits += other.extent_hits;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.ra_inserted += other.ra_inserted;
        self.ra_used += other.ra_used;
        // Caches are independent; the merged mark is the largest any
        // one of them reached, not a sum of unsynchronized peaks.
        self.occupancy_hwm = self.occupancy_hwm.max(other.occupancy_hwm);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "extents {}/{} ({:.1}%), blocks {}/{} ({:.1}%), RA accuracy {:.1}%",
            self.extent_hits,
            self.extent_lookups,
            100.0 * self.extent_hit_rate(),
            self.block_hits,
            self.block_lookups,
            100.0 * self.block_hit_rate(),
            100.0 * self.ra_accuracy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = CacheStats::new();
        assert_eq!(s.block_hit_rate(), 0.0);
        assert_eq!(s.extent_hit_rate(), 0.0);
        assert_eq!(s.ra_accuracy(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            block_lookups: 10,
            block_hits: 4,
            extent_lookups: 5,
            extent_hits: 1,
            ra_inserted: 8,
            ra_used: 6,
            ..CacheStats::new()
        };
        assert!((s.block_hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.extent_hit_rate() - 0.2).abs() < 1e-12);
        assert!((s.ra_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            block_lookups: 1,
            block_hits: 1,
            occupancy_hwm: 7,
            ..CacheStats::new()
        };
        let b = CacheStats {
            block_lookups: 2,
            evictions: 3,
            occupancy_hwm: 5,
            ..CacheStats::new()
        };
        a.merge(&b);
        assert_eq!(a.block_lookups, 3);
        assert_eq!(a.block_hits, 1);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.occupancy_hwm, 7);
    }

    #[test]
    fn occupancy_hwm_tracks_peak() {
        let mut s = CacheStats::new();
        s.note_occupancy(4);
        s.note_occupancy(9);
        s.note_occupancy(2);
        assert_eq!(s.occupancy_hwm, 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::new().to_string().is_empty());
    }
}
