//! Property-based invariants of the cache organizations: arbitrary
//! operation sequences never violate capacity, residency, or stats
//! consistency; the HDC region tracks a reference model exactly.

use std::collections::HashMap;

use proptest::prelude::*;

use forhdc_cache::{
    BlockCache, BlockReplacement, ControllerCache, HdcRegion, SegmentCache, SegmentReplacement,
};
use forhdc_sim::PhysBlock;

/// One step of an arbitrary cache workout.
#[derive(Debug, Clone)]
enum Op {
    Insert { start: u64, n: u32, requested: u32 },
    Touch(u64),
    Lookup { start: u64, n: u32 },
}

fn op_strategy(space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space, 1u32..40).prop_map(|(start, n)| {
            Op::Insert {
                start,
                n,
                requested: n / 2,
            }
        }),
        (0..space).prop_map(Op::Touch),
        (0..space, 1u32..8).prop_map(|(start, n)| Op::Lookup { start, n }),
    ]
}

fn workout(cache: &mut dyn ControllerCache, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert {
                start,
                n,
                requested,
            } => cache.insert_run(PhysBlock::new(start), n, requested),
            Op::Touch(b) => {
                cache.touch(PhysBlock::new(b));
            }
            Op::Lookup { start, n } => {
                cache.lookup_extent(PhysBlock::new(start), n);
            }
        }
    }
}

fn check_invariants(cache: &dyn ControllerCache) {
    assert!(cache.resident_blocks() <= cache.capacity_blocks());
    let s = cache.stats();
    assert!(s.block_hits <= s.block_lookups);
    assert!(s.extent_hits <= s.extent_lookups);
    assert!(s.ra_used <= s.ra_inserted);
    assert!(s.insertions >= s.evictions || cache.resident_blocks() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_cache_invariants(
        ops in prop::collection::vec(op_strategy(500), 1..300),
        capacity in 1u32..128,
        mru in any::<bool>(),
    ) {
        let policy = if mru { BlockReplacement::Mru } else { BlockReplacement::Lru };
        let mut cache = BlockCache::new(capacity, policy);
        workout(&mut cache, &ops);
        check_invariants(&cache);
        // A final insert-then-contains always holds for the demanded
        // block (it was just placed or refreshed).
        cache.insert_run(PhysBlock::new(9_999), 1, 1);
        prop_assert!(cache.contains(PhysBlock::new(9_999)));
    }

    #[test]
    fn segment_cache_invariants(
        ops in prop::collection::vec(op_strategy(500), 1..300),
        segments in 1u32..32,
        seg_blocks in 1u32..64,
    ) {
        let mut cache = SegmentCache::new(segments, seg_blocks, SegmentReplacement::Lru);
        workout(&mut cache, &ops);
        check_invariants(&cache);
    }

    /// Hit after insert: any block of a freshly inserted run is
    /// resident until the next insertion.
    #[test]
    fn freshly_inserted_runs_are_resident(
        start in 0u64..1_000,
        n in 1u32..32,
    ) {
        let mut cache = BlockCache::new(64, BlockReplacement::Mru);
        let n = n.min(64);
        cache.insert_run(PhysBlock::new(start), n, n);
        for i in 0..n as u64 {
            prop_assert!(cache.contains(PhysBlock::new(start + i)));
        }
    }

    /// The HDC region behaves exactly like a bounded map with dirty
    /// bits.
    #[test]
    fn hdc_matches_reference_model(
        ops in prop::collection::vec((0u8..5, 0u64..64), 1..200),
        capacity in 1u32..32,
    ) {
        let mut hdc = HdcRegion::new(capacity);
        let mut model: HashMap<u64, bool> = HashMap::new();
        for (kind, block) in ops {
            let b = PhysBlock::new(block);
            match kind {
                0 => {
                    let ok = hdc.pin(b).is_ok();
                    let model_ok =
                        model.contains_key(&block) || (model.len() as u32) < capacity;
                    prop_assert_eq!(ok, model_ok);
                    if ok {
                        model.entry(block).or_insert(false);
                    }
                }
                1 => {
                    let got = hdc.unpin(b);
                    let expect = model.remove(&block);
                    prop_assert_eq!(got, expect);
                }
                2 => {
                    prop_assert_eq!(hdc.read(b), model.contains_key(&block));
                }
                3 => {
                    let hit = hdc.write(b);
                    prop_assert_eq!(hit, model.contains_key(&block));
                    if hit {
                        model.insert(block, true);
                    }
                }
                _ => {
                    let mut dirty: Vec<u64> = model
                        .iter()
                        .filter_map(|(&k, &d)| d.then_some(k))
                        .collect();
                    dirty.sort();
                    let flushed: Vec<u64> =
                        hdc.flush().into_iter().map(|p| p.index()).collect();
                    prop_assert_eq!(flushed, dirty);
                    for v in model.values_mut() {
                        *v = false;
                    }
                }
            }
            prop_assert_eq!(hdc.len() as usize, model.len());
            prop_assert_eq!(
                hdc.dirty_count() as usize,
                model.values().filter(|&&d| d).count()
            );
        }
    }
}
