//! Property-based invariants of the cache organizations: arbitrary
//! operation sequences never violate capacity, residency, or stats
//! consistency; the HDC region tracks a reference model exactly; and
//! the list/index-based [`BlockCache`] and [`SegmentCache`] are
//! differentially checked, op by op, against executable specifications
//! that keep the original `BTreeSet`-stamp and linear-scan bookkeeping.

use std::collections::{BTreeSet, HashMap};

use proptest::prelude::*;

use forhdc_cache::{
    BlockCache, BlockReplacement, CacheStats, ControllerCache, HdcRegion, SegmentCache,
    SegmentReplacement,
};
use forhdc_sim::PhysBlock;

/// The pre-optimization [`BlockCache`] bookkeeping, kept verbatim as an
/// executable specification: recency in `BTreeSet<(stamp, block)>`
/// sets, eviction by set extrema. The production cache must be
/// observably indistinguishable from this.
#[derive(Debug)]
struct RefBlockCache {
    map: HashMap<u64, RefBlockMeta>,
    /// Consumed blocks, ordered by stamp.
    used: BTreeSet<(u64, u64)>,
    /// Never-consumed blocks, ordered by stamp.
    unused: BTreeSet<(u64, u64)>,
    capacity: u32,
    mru: bool,
    clock: u64,
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct RefBlockMeta {
    stamp: u64,
    read_ahead: bool,
    used: bool,
}

impl RefBlockCache {
    fn new(capacity: u32, mru: bool) -> Self {
        RefBlockCache {
            map: HashMap::new(),
            used: BTreeSet::new(),
            unused: BTreeSet::new(),
            capacity,
            mru,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_victim(&mut self) {
        let victim = if self.mru {
            // Most recently consumed, else the stalest prefetch.
            self.used
                .iter()
                .next_back()
                .or_else(|| self.unused.iter().next())
                .copied()
        } else {
            // Globally least recent across both sets.
            match (self.used.first(), self.unused.first()) {
                (Some(&a), Some(&b)) => Some(if a.0 < b.0 { a } else { b }),
                (a, b) => a.or(b).copied(),
            }
        };
        if let Some((stamp, block)) = victim {
            self.used.remove(&(stamp, block));
            self.unused.remove(&(stamp, block));
            self.map.remove(&block);
            self.stats.evictions += 1;
        }
    }

    fn insert_one(&mut self, block: u64, read_ahead: bool) {
        let stamp = self.tick();
        if let Some(meta) = self.map.get_mut(&block) {
            if read_ahead {
                self.stats.ra_inserted += 1;
            }
            if meta.used {
                self.used.remove(&(meta.stamp, block));
            } else {
                self.unused.remove(&(meta.stamp, block));
            }
            meta.stamp = stamp;
            meta.used = false;
            meta.read_ahead = read_ahead;
            self.unused.insert((stamp, block));
            return;
        }
        if self.map.len() as u32 >= self.capacity {
            self.evict_victim();
        }
        self.map.insert(
            block,
            RefBlockMeta {
                stamp,
                read_ahead,
                used: false,
            },
        );
        self.unused.insert((stamp, block));
        self.stats.insertions += 1;
        if read_ahead {
            self.stats.ra_inserted += 1;
        }
        self.stats.note_occupancy(self.map.len() as u64);
    }
}

impl ControllerCache for RefBlockCache {
    fn contains(&self, block: PhysBlock) -> bool {
        self.map.contains_key(&block.index())
    }

    fn touch(&mut self, block: PhysBlock) -> bool {
        self.stats.block_lookups += 1;
        let stamp = self.tick();
        let b = block.index();
        let Some(meta) = self.map.get_mut(&b) else {
            return false;
        };
        self.stats.block_hits += 1;
        if meta.read_ahead && !meta.used {
            self.stats.ra_used += 1;
        }
        if meta.used {
            self.used.remove(&(meta.stamp, b));
        } else {
            self.unused.remove(&(meta.stamp, b));
        }
        meta.used = true;
        meta.stamp = stamp;
        self.used.insert((stamp, b));
        true
    }

    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        for i in 0..nblocks as u64 {
            self.insert_one(start.index() + i, i >= requested as u64);
        }
    }

    fn capacity_blocks(&self) -> u32 {
        self.capacity
    }

    fn resident_blocks(&self) -> u32 {
        self.map.len() as u32
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_extent(&mut self, hit: bool) {
        self.stats.extent_lookups += 1;
        if hit {
            self.stats.extent_hits += 1;
        }
    }
}

/// The pre-optimization [`SegmentCache`]: linear first-match scans over
/// the slot vector and `min_by_key` victim sweeps.
#[derive(Debug)]
struct RefSegmentCache {
    segments: Vec<Option<RefSeg>>,
    seg_blocks: u32,
    lru: bool,
    clock: u64,
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct RefSeg {
    start: u64,
    len: u32,
    created: u64,
    last_used: u64,
    ra_mask: u128,
    used_mask: u128,
}

impl RefSeg {
    fn covers(&self, block: u64) -> Option<u32> {
        if block >= self.start && block < self.start + self.len as u64 {
            Some((block - self.start) as u32)
        } else {
            None
        }
    }
}

impl RefSegmentCache {
    fn new(segments: u32, seg_blocks: u32, lru: bool) -> Self {
        RefSegmentCache {
            segments: vec![None; segments as usize],
            seg_blocks,
            lru,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn slot_for(&self, start: u64, nblocks: u32) -> usize {
        let run_end = start + nblocks as u64;
        if let Some(slot) = self.segments.iter().position(|s| {
            s.is_some_and(|seg| start <= seg.start + seg.len as u64 && run_end >= seg.start)
        }) {
            return slot;
        }
        if let Some(free) = self.segments.iter().position(Option::is_none) {
            return free;
        }
        self.segments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.map(|seg| (if self.lru { seg.last_used } else { seg.created }, i))
            })
            .min()
            .expect("no free slot means all occupied")
            .1
    }
}

impl ControllerCache for RefSegmentCache {
    fn contains(&self, block: PhysBlock) -> bool {
        self.segments
            .iter()
            .flatten()
            .any(|s| s.covers(block.index()).is_some())
    }

    fn touch(&mut self, block: PhysBlock) -> bool {
        self.stats.block_lookups += 1;
        let stamp = self.tick();
        let b = block.index();
        let Some(seg) = self
            .segments
            .iter_mut()
            .flatten()
            .find(|s| s.covers(b).is_some())
        else {
            return false;
        };
        let i = seg.covers(b).expect("just matched");
        self.stats.block_hits += 1;
        seg.last_used = stamp;
        let bit = 1u128 << i;
        if seg.ra_mask & bit != 0 && seg.used_mask & bit == 0 {
            self.stats.ra_used += 1;
        }
        seg.used_mask |= bit;
        true
    }

    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        let (start, nblocks, requested) = if nblocks > self.seg_blocks {
            let drop = (nblocks - self.seg_blocks) as u64;
            (
                start.index() + drop,
                self.seg_blocks,
                requested.saturating_sub(drop as u32),
            )
        } else {
            (start.index(), nblocks, requested)
        };
        let slot = self.slot_for(start, nblocks);
        let stamp = self.tick();
        if let Some(old) = self.segments[slot] {
            self.stats.evictions += old.len as u64;
        }
        let mut ra_mask = 0u128;
        for i in requested..nblocks {
            ra_mask |= 1u128 << i;
        }
        self.stats.insertions += nblocks as u64;
        self.stats.ra_inserted += (nblocks - requested) as u64;
        self.segments[slot] = Some(RefSeg {
            start,
            len: nblocks,
            created: stamp,
            last_used: stamp,
            ra_mask,
            used_mask: 0,
        });
        let resident: u64 = self.segments.iter().flatten().map(|s| s.len as u64).sum();
        self.stats.note_occupancy(resident);
    }

    fn capacity_blocks(&self) -> u32 {
        self.segments.len() as u32 * self.seg_blocks
    }

    fn resident_blocks(&self) -> u32 {
        self.segments.iter().flatten().map(|s| s.len).sum()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_extent(&mut self, hit: bool) {
        self.stats.extent_lookups += 1;
        if hit {
            self.stats.extent_hits += 1;
        }
    }
}

/// One step of an arbitrary cache workout.
#[derive(Debug, Clone)]
enum Op {
    Insert { start: u64, n: u32, requested: u32 },
    Touch(u64),
    Lookup { start: u64, n: u32 },
}

fn op_strategy(space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space, 1u32..40).prop_map(|(start, n)| {
            Op::Insert {
                start,
                n,
                requested: n / 2,
            }
        }),
        (0..space).prop_map(Op::Touch),
        (0..space, 1u32..8).prop_map(|(start, n)| Op::Lookup { start, n }),
    ]
}

fn workout(cache: &mut dyn ControllerCache, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert {
                start,
                n,
                requested,
            } => cache.insert_run(PhysBlock::new(start), n, requested),
            Op::Touch(b) => {
                cache.touch(PhysBlock::new(b));
            }
            Op::Lookup { start, n } => {
                cache.lookup_extent(PhysBlock::new(start), n);
            }
        }
    }
}

/// Drives the production cache and its reference specification through
/// the same op sequence, comparing every observable along the way:
/// per-op results, residency, final stats, and the exact resident set.
fn drive_and_compare(
    real: &mut dyn ControllerCache,
    spec: &mut dyn ControllerCache,
    ops: &[Op],
    space: u64,
) {
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert {
                start,
                n,
                requested,
            } => {
                real.insert_run(PhysBlock::new(start), n, requested);
                spec.insert_run(PhysBlock::new(start), n, requested);
            }
            Op::Touch(b) => {
                assert_eq!(
                    real.touch(PhysBlock::new(b)),
                    spec.touch(PhysBlock::new(b)),
                    "touch({b}) diverged at step {step}"
                );
            }
            Op::Lookup { start, n } => {
                assert_eq!(
                    real.lookup_extent(PhysBlock::new(start), n),
                    spec.lookup_extent(PhysBlock::new(start), n),
                    "lookup_extent({start}, {n}) diverged at step {step}"
                );
            }
        }
        assert_eq!(
            real.resident_blocks(),
            spec.resident_blocks(),
            "residency diverged at step {step}"
        );
    }
    assert_eq!(real.stats(), spec.stats(), "stats diverged");
    // Insert starts go up to `space` and runs extend by at most 40.
    for b in 0..space + 64 {
        assert_eq!(
            real.contains(PhysBlock::new(b)),
            spec.contains(PhysBlock::new(b)),
            "resident set diverged at block {b}"
        );
    }
}

fn check_invariants(cache: &dyn ControllerCache) {
    assert!(cache.resident_blocks() <= cache.capacity_blocks());
    let s = cache.stats();
    assert!(s.block_hits <= s.block_lookups);
    assert!(s.extent_hits <= s.extent_lookups);
    assert!(s.ra_used <= s.ra_inserted);
    assert!(s.insertions >= s.evictions || cache.resident_blocks() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_cache_invariants(
        ops in prop::collection::vec(op_strategy(500), 1..300),
        capacity in 1u32..128,
        mru in any::<bool>(),
    ) {
        let policy = if mru { BlockReplacement::Mru } else { BlockReplacement::Lru };
        let mut cache = BlockCache::new(capacity, policy);
        workout(&mut cache, &ops);
        check_invariants(&cache);
        // A final insert-then-contains always holds for the demanded
        // block (it was just placed or refreshed).
        cache.insert_run(PhysBlock::new(9_999), 1, 1);
        prop_assert!(cache.contains(PhysBlock::new(9_999)));
    }

    #[test]
    fn segment_cache_invariants(
        ops in prop::collection::vec(op_strategy(500), 1..300),
        segments in 1u32..32,
        seg_blocks in 1u32..64,
    ) {
        let mut cache = SegmentCache::new(segments, seg_blocks, SegmentReplacement::Lru);
        workout(&mut cache, &ops);
        check_invariants(&cache);
    }

    /// The list-based block cache is observably identical to the
    /// original `BTreeSet<(stamp, block)>` bookkeeping, under both
    /// replacement policies.
    #[test]
    fn block_cache_matches_btreeset_reference(
        ops in prop::collection::vec(op_strategy(300), 1..400),
        capacity in 1u32..96,
        mru in any::<bool>(),
    ) {
        let policy = if mru { BlockReplacement::Mru } else { BlockReplacement::Lru };
        let mut real = BlockCache::new(capacity, policy);
        let mut spec = RefBlockCache::new(capacity, mru);
        drive_and_compare(&mut real, &mut spec, &ops, 300);
    }

    /// The extent-indexed, list-ordered segment cache is observably
    /// identical to the original linear-scan implementation, including
    /// first-match semantics under overlapping segments.
    #[test]
    fn segment_cache_matches_linear_scan_reference(
        ops in prop::collection::vec(op_strategy(300), 1..400),
        segments in 1u32..24,
        seg_blocks in 1u32..64,
        lru in any::<bool>(),
    ) {
        let policy = if lru { SegmentReplacement::Lru } else { SegmentReplacement::Fifo };
        let mut real = SegmentCache::new(segments, seg_blocks, policy);
        let mut spec = RefSegmentCache::new(segments, seg_blocks, lru);
        drive_and_compare(&mut real, &mut spec, &ops, 300);
    }

    /// Hit after insert: any block of a freshly inserted run is
    /// resident until the next insertion.
    #[test]
    fn freshly_inserted_runs_are_resident(
        start in 0u64..1_000,
        n in 1u32..32,
    ) {
        let mut cache = BlockCache::new(64, BlockReplacement::Mru);
        let n = n.min(64);
        cache.insert_run(PhysBlock::new(start), n, n);
        for i in 0..n as u64 {
            prop_assert!(cache.contains(PhysBlock::new(start + i)));
        }
    }

    /// Structural coherence under checked mode: the deep validators
    /// the auditor runs (DESIGN.md §6.5) hold after every single
    /// operation of an arbitrary workout, for both cache organizations
    /// and both replacement policies each.
    #[test]
    fn caches_stay_coherent_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(400), 1..300),
        capacity in 1u32..96,
        segments in 1u32..24,
        seg_blocks in 1u32..64,
        mru in any::<bool>(),
    ) {
        let bpolicy = if mru { BlockReplacement::Mru } else { BlockReplacement::Lru };
        let spolicy = if mru { SegmentReplacement::Lru } else { SegmentReplacement::Fifo };
        let mut block = BlockCache::new(capacity, bpolicy);
        let mut seg = SegmentCache::new(segments, seg_blocks, spolicy);
        for (step, op) in ops.iter().enumerate() {
            for cache in [&mut block as &mut dyn ControllerCache, &mut seg] {
                match *op {
                    Op::Insert { start, n, requested } => {
                        cache.insert_run(PhysBlock::new(start), n, requested)
                    }
                    Op::Touch(b) => {
                        cache.touch(PhysBlock::new(b));
                    }
                    Op::Lookup { start, n } => {
                        cache.lookup_extent(PhysBlock::new(start), n);
                    }
                }
            }
            if let Err(e) = block.check_coherence() {
                prop_assert!(false, "block cache, step {}: {}", step, e);
            }
            if let Err(e) = seg.check_coherence() {
                prop_assert!(false, "segment cache, step {}: {}", step, e);
            }
        }
    }

    /// The HDC region's structural validator holds after every
    /// operation, including the flush/unflush recovery round-trip and
    /// the degraded-mode dirty discard.
    #[test]
    fn hdc_stays_coherent_under_arbitrary_ops(
        ops in prop::collection::vec((0u8..7, 0u64..64), 1..250),
        capacity in 1u32..32,
    ) {
        let mut hdc = HdcRegion::new(capacity);
        for (step, &(kind, block)) in ops.iter().enumerate() {
            let b = PhysBlock::new(block);
            match kind {
                0 => {
                    let _ = hdc.pin(b);
                }
                1 => {
                    hdc.unpin(b);
                }
                2 => {
                    hdc.read(b);
                }
                3 => {
                    hdc.write(b);
                }
                4 => {
                    hdc.flush();
                }
                5 => {
                    // A failed flush is rolled back immediately: every
                    // drained block is still pinned and clean, so the
                    // rollback re-dirties all of them and loses none.
                    let drained = hdc.flush();
                    let lost = hdc.unflush(&drained);
                    prop_assert_eq!(lost, 0);
                }
                _ => {
                    hdc.discard_dirty();
                }
            }
            if let Err(e) = hdc.check_coherence() {
                prop_assert!(false, "hdc, step {}: {}", step, e);
            }
            prop_assert!(hdc.dirty_count() <= hdc.len());
            prop_assert!(hdc.len() <= hdc.capacity());
        }
    }

    /// The HDC region behaves exactly like a bounded map with dirty
    /// bits.
    #[test]
    fn hdc_matches_reference_model(
        ops in prop::collection::vec((0u8..5, 0u64..64), 1..200),
        capacity in 1u32..32,
    ) {
        let mut hdc = HdcRegion::new(capacity);
        let mut model: HashMap<u64, bool> = HashMap::new();
        for (kind, block) in ops {
            let b = PhysBlock::new(block);
            match kind {
                0 => {
                    let ok = hdc.pin(b).is_ok();
                    let model_ok =
                        model.contains_key(&block) || (model.len() as u32) < capacity;
                    prop_assert_eq!(ok, model_ok);
                    if ok {
                        model.entry(block).or_insert(false);
                    }
                }
                1 => {
                    let got = hdc.unpin(b);
                    let expect = model.remove(&block);
                    prop_assert_eq!(got, expect);
                }
                2 => {
                    prop_assert_eq!(hdc.read(b), model.contains_key(&block));
                }
                3 => {
                    let hit = hdc.write(b);
                    prop_assert_eq!(hit, model.contains_key(&block));
                    if hit {
                        model.insert(block, true);
                    }
                }
                _ => {
                    let mut dirty: Vec<u64> = model
                        .iter()
                        .filter_map(|(&k, &d)| d.then_some(k))
                        .collect();
                    dirty.sort();
                    let flushed: Vec<u64> =
                        hdc.flush().into_iter().map(|p| p.index()).collect();
                    prop_assert_eq!(flushed, dirty);
                    for v in model.values_mut() {
                        *v = false;
                    }
                }
            }
            prop_assert_eq!(hdc.len() as usize, model.len());
            prop_assert_eq!(
                hdc.dirty_count() as usize,
                model.values().filter(|&&d| d).count()
            );
        }
    }
}
