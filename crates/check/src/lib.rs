//! # forhdc-check
//!
//! The invariant-auditing facade of checked mode (DESIGN.md §6.5).
//!
//! [`Auditor`] follows the workspace's zero-cost facade pattern
//! (`forhdc_trace::Tracer`, `forhdc_fault::FaultModel`): the system is
//! generic over `A: Auditor = NoChecks`, every audit site is guarded by
//! `if self.auditor.enabled()`, and [`NoChecks`]'s `enabled()` is a
//! constant `false` — so the default build compiles every audit away
//! and unchecked reports stay byte-identical (test-enforced in
//! forhdc-core, like tracing and fault injection).
//!
//! [`FullAudit`] is the checking implementation. It holds **no
//! references into the simulator**: the owning crates expose deep
//! structural validators (`check_coherence()` on the caches,
//! `DiskController::audit()`), and the system routes their results —
//! plus primitive event/issue/complete observations — through the
//! auditor. On the first violated invariant the auditor panics with a
//! structured report (invariant name, sim time, state digest) that the
//! crash-safe runner records verbatim in `manifest.json`.
//!
//! Invariants covered end to end:
//! * event-queue time monotonicity (dispatch times never go backwards);
//! * cache coherence per subsystem (recency list ↔ map agreement,
//!   occupancy ≤ capacity, extent index ↔ slot contents, exact dirty
//!   counts — see the `check_coherence` impls);
//! * continuation-bitmap ↔ filemap consistency at audited construction;
//! * conservation laws at end of run: `issued = completed + in-flight`
//!   (failed requests complete as errors, so `failed ≤ completed`) and
//!   `dirtied = flushed + lost + dirty-unpins + still-dirty`.
//!
//! # Example
//!
//! ```
//! use forhdc_check::{Auditor, FullAudit, NoChecks};
//!
//! assert!(!NoChecks.enabled());
//! let mut audit = FullAudit::new();
//! assert!(audit.enabled());
//! audit.observe_event(10);
//! audit.observe_event(10); // equal times are fine (FIFO ties)
//! ```

/// End-of-run counters the system hands to [`Auditor::observe_final`]
/// for the conservation checks. All values are exact counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FinalDigest {
    /// Host requests issued over the run.
    pub issued: u64,
    /// Host requests completed (including those completed as errors).
    pub completed: u64,
    /// Requests completed as errors (timeouts, retry exhaustion).
    pub failed: u64,
    /// Requests still pending when the event queue drained.
    pub in_flight: u64,
    /// Clean→dirty HDC transitions over the run (all disks).
    pub hdc_dirtied: u64,
    /// Dirty HDC blocks written back by flushes.
    pub hdc_flushed: u64,
    /// Dirty HDC blocks lost to power loss / failed flushes.
    pub lost_dirty: u64,
    /// Dirty HDC blocks handed back to the host by unpins.
    pub dirty_unpins: u64,
    /// Dirty HDC blocks still resident at end of run.
    pub still_dirty: u64,
    /// Mirrored read extents forwarded to a pair member (0 for
    /// unmirrored arrays).
    pub mirror_reads: u64,
    /// Mirrored reads served by the read-split policy's own pick.
    pub mirror_policy_reads: u64,
    /// Mirrored reads steered to the surviving member because the
    /// policy's pick was offline.
    pub mirror_failover_reads: u64,
    /// Blocks copied onto a rebuilding mirror member.
    pub rebuilt_blocks: u64,
    /// Capacity of the rebuild target in blocks (0 when no rebuild was
    /// configured).
    pub rebuild_target_blocks: u64,
}

/// The auditing facade. Every method has an inert default, so an
/// implementation overrides only what it checks; `enabled()` gates all
/// call sites (the system never calls `observe_*` when it is `false`).
pub trait Auditor {
    /// Whether audit sites should observe at all. [`NoChecks`] returns
    /// a constant `false`, letting the optimizer erase the sites.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// An event popped from the event queue at `t_ns`. Dispatch times
    /// must be non-decreasing.
    fn observe_event(&mut self, _t_ns: u64) {}

    /// A host request issued at `t_ns`.
    fn observe_issue(&mut self, _t_ns: u64) {}

    /// A host request completed at `t_ns` (`failed` when it completed
    /// as an error).
    fn observe_complete(&mut self, _t_ns: u64, _failed: bool) {}

    /// The outcome of a deep structural validation of `subsystem`
    /// (a `check_coherence()` / `audit()` result from the owning
    /// crate). `Err` carries the violated invariant's description.
    fn observe_structure(
        &mut self,
        _t_ns: u64,
        _subsystem: &'static str,
        _result: Result<(), String>,
    ) {
    }

    /// End-of-run conservation checks over the report counters.
    fn observe_final(&mut self, _digest: &FinalDigest) {}
}

/// The default auditor: checks nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoChecks;

impl Auditor for NoChecks {}

/// The checking auditor: panics on the first violated invariant with a
/// structured report the crash-safe runner records in `manifest.json`.
#[derive(Debug, Clone, Default)]
pub struct FullAudit {
    /// Dispatch time of the last observed event.
    last_event_ns: Option<u64>,
    /// Requests observed issued / completed / failed so far.
    issued: u64,
    completed: u64,
    failed: u64,
    /// Total observations (all hooks), for planted violations.
    observations: u64,
    /// When set, observation number `k` (1-based) reports a deliberate
    /// violation — the `selftest-violation` / fuzz-replay path.
    planted: Option<u64>,
}

/// The stable prefix of every audit panic, greppable in manifests.
pub const VIOLATION_PREFIX: &str = "invariant violation";

impl FullAudit {
    /// A fresh auditor with no planted violations.
    pub fn new() -> Self {
        FullAudit::default()
    }

    /// An auditor that deliberately reports a violation on its `k`-th
    /// observation (1-based; `k = 0` never fires). Exists so the
    /// panic → manifest-failure → non-zero-exit path and the fuzz
    /// reproducer replay can be proven end to end.
    pub fn with_planted_violation(k: u64) -> Self {
        FullAudit {
            planted: (k > 0).then_some(k),
            ..FullAudit::default()
        }
    }

    /// Observations made so far (all hooks).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// One observation: bump the counter and fire any planted
    /// violation that just came due.
    fn tick(&mut self, t_ns: u64) {
        self.observations += 1;
        if self.planted == Some(self.observations) {
            self.violation(
                "selftest: planted violation",
                t_ns,
                &format!(
                    "deliberately triggered on observation {}",
                    self.observations
                ),
            );
        }
    }

    /// Panics with the structured violation report.
    fn violation(&self, invariant: &str, t_ns: u64, digest: &str) -> ! {
        panic!(
            "{VIOLATION_PREFIX}: {invariant}\n  sim time: {t_ns} ns\n  state: {digest}\n  \
             observed: issued={} completed={} failed={} events_seen={}",
            self.issued, self.completed, self.failed, self.observations
        );
    }
}

impl Auditor for FullAudit {
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    fn observe_event(&mut self, t_ns: u64) {
        self.tick(t_ns);
        if let Some(last) = self.last_event_ns {
            if t_ns < last {
                self.violation(
                    "event-queue time monotonicity",
                    t_ns,
                    &format!("event at {t_ns} ns dispatched after one at {last} ns"),
                );
            }
        }
        self.last_event_ns = Some(t_ns);
    }

    fn observe_issue(&mut self, t_ns: u64) {
        self.tick(t_ns);
        self.issued += 1;
    }

    fn observe_complete(&mut self, t_ns: u64, failed: bool) {
        self.tick(t_ns);
        self.completed += 1;
        if failed {
            self.failed += 1;
        }
        if self.completed > self.issued {
            self.violation(
                "conservation: completed <= issued",
                t_ns,
                &format!(
                    "completed {} requests, issued {}",
                    self.completed, self.issued
                ),
            );
        }
    }

    fn observe_structure(
        &mut self,
        t_ns: u64,
        subsystem: &'static str,
        result: Result<(), String>,
    ) {
        self.tick(t_ns);
        if let Err(detail) = result {
            self.violation(subsystem, t_ns, &detail);
        }
    }

    fn observe_final(&mut self, d: &FinalDigest) {
        self.tick(u64::MAX);
        let fail = |invariant: &str, detail: String| self.violation(invariant, u64::MAX, &detail);
        if d.issued != d.completed + d.in_flight {
            fail(
                "conservation: issued = completed + in-flight",
                format!(
                    "issued {} != completed {} + in-flight {}",
                    d.issued, d.completed, d.in_flight
                ),
            );
        }
        if d.failed > d.completed {
            fail(
                "conservation: failed <= completed",
                format!("failed {} > completed {}", d.failed, d.completed),
            );
        }
        if d.issued != self.issued || d.completed != self.completed || d.failed != self.failed {
            fail(
                "conservation: report counters match observed lifecycle",
                format!(
                    "report issued/completed/failed {}/{}/{} vs observed {}/{}/{}",
                    d.issued, d.completed, d.failed, self.issued, self.completed, self.failed
                ),
            );
        }
        if d.hdc_dirtied != d.hdc_flushed + d.lost_dirty + d.dirty_unpins + d.still_dirty {
            fail(
                "conservation: dirtied = flushed + lost + dirty-unpins + still-dirty",
                format!(
                    "dirtied {} != flushed {} + lost {} + dirty-unpins {} + still-dirty {}",
                    d.hdc_dirtied, d.hdc_flushed, d.lost_dirty, d.dirty_unpins, d.still_dirty
                ),
            );
        }
        if d.mirror_reads != d.mirror_policy_reads + d.mirror_failover_reads {
            fail(
                "conservation: mirror reads = policy picks + failovers",
                format!(
                    "mirror reads {} != policy {} + failover {}",
                    d.mirror_reads, d.mirror_policy_reads, d.mirror_failover_reads
                ),
            );
        }
        if d.rebuilt_blocks > d.rebuild_target_blocks {
            fail(
                "conservation: rebuilt blocks <= rebuild target",
                format!(
                    "rebuilt {} > target {}",
                    d.rebuilt_blocks, d.rebuild_target_blocks
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_checks_is_disabled_and_inert() {
        let mut a = NoChecks;
        assert!(!a.enabled());
        // The inert defaults must swallow anything, including an Err.
        a.observe_event(5);
        a.observe_event(1); // would violate monotonicity if checked
        a.observe_structure(0, "cache", Err("bogus".into()));
        a.observe_final(&FinalDigest {
            issued: 1,
            ..FinalDigest::default()
        });
    }

    #[test]
    fn monotone_events_pass() {
        let mut a = FullAudit::new();
        for t in [0, 5, 5, 9, 100] {
            a.observe_event(t);
        }
        assert_eq!(a.observations(), 5);
    }

    #[test]
    #[should_panic(expected = "event-queue time monotonicity")]
    fn backwards_event_panics() {
        let mut a = FullAudit::new();
        a.observe_event(10);
        a.observe_event(9);
    }

    #[test]
    #[should_panic(expected = "completed <= issued")]
    fn completion_without_issue_panics() {
        let mut a = FullAudit::new();
        a.observe_complete(1, false);
    }

    #[test]
    fn structure_ok_passes_err_panics() {
        let mut a = FullAudit::new();
        a.observe_structure(1, "block-cache coherence", Ok(()));
        let r = std::panic::catch_unwind(move || {
            a.observe_structure(2, "block-cache coherence", Err("list/map mismatch".into()));
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("invariant violation: block-cache coherence"),
            "{msg}"
        );
        assert!(msg.contains("list/map mismatch"), "{msg}");
        assert!(msg.contains("sim time: 2 ns"), "{msg}");
    }

    #[test]
    fn clean_lifecycle_and_final_digest_pass() {
        let mut a = FullAudit::new();
        for t in 0..4 {
            a.observe_issue(t);
        }
        for t in 4..7 {
            a.observe_complete(t, t == 6);
        }
        a.observe_final(&FinalDigest {
            issued: 4,
            completed: 3,
            failed: 1,
            in_flight: 1,
            hdc_dirtied: 10,
            hdc_flushed: 6,
            lost_dirty: 2,
            dirty_unpins: 1,
            still_dirty: 1,
            mirror_reads: 7,
            mirror_policy_reads: 5,
            mirror_failover_reads: 2,
            rebuilt_blocks: 8,
            rebuild_target_blocks: 8,
        });
    }

    #[test]
    #[should_panic(expected = "issued = completed + in-flight")]
    fn unbalanced_request_conservation_panics() {
        let mut a = FullAudit::new();
        a.observe_issue(0);
        a.observe_final(&FinalDigest {
            issued: 1,
            completed: 0,
            in_flight: 0,
            ..FinalDigest::default()
        });
    }

    #[test]
    #[should_panic(expected = "dirtied = flushed + lost + dirty-unpins + still-dirty")]
    fn unbalanced_dirty_conservation_panics() {
        let mut a = FullAudit::new();
        a.observe_final(&FinalDigest {
            hdc_dirtied: 5,
            hdc_flushed: 4,
            ..FinalDigest::default()
        });
    }

    #[test]
    #[should_panic(expected = "report counters match observed lifecycle")]
    fn report_mismatching_observations_panics() {
        let mut a = FullAudit::new();
        a.observe_issue(0);
        a.observe_issue(1);
        a.observe_complete(2, false);
        // Report claims 1 issued; the auditor saw 2.
        a.observe_final(&FinalDigest {
            issued: 1,
            completed: 1,
            in_flight: 0,
            ..FinalDigest::default()
        });
    }

    #[test]
    #[should_panic(expected = "mirror reads = policy picks + failovers")]
    fn unbalanced_mirror_reads_panic() {
        let mut a = FullAudit::new();
        a.observe_final(&FinalDigest {
            mirror_reads: 5,
            mirror_policy_reads: 3,
            mirror_failover_reads: 1,
            ..FinalDigest::default()
        });
    }

    #[test]
    #[should_panic(expected = "rebuilt blocks <= rebuild target")]
    fn overfull_rebuild_panics() {
        let mut a = FullAudit::new();
        a.observe_final(&FinalDigest {
            rebuilt_blocks: 10,
            rebuild_target_blocks: 8,
            ..FinalDigest::default()
        });
    }

    #[test]
    fn planted_violation_fires_on_exactly_its_observation() {
        let mut a = FullAudit::with_planted_violation(3);
        a.observe_event(1);
        a.observe_event(2);
        let r = std::panic::catch_unwind(move || a.observe_event(3));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("planted violation"), "{msg}");
        assert!(msg.contains("observation 3"), "{msg}");
        // k = 0 never fires.
        let mut b = FullAudit::with_planted_violation(0);
        for t in 0..100 {
            b.observe_event(t);
        }
    }
}
