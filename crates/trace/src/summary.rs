//! Trace analysis: per-phase/per-disk histograms, slowest-request
//! extraction, and sampler-series downsampling.

use crate::event::TraceEvent;
use crate::hist::PowerHistogram;

/// The fixed per-phase histogram order of a [`TraceSummary`]. Keeping
/// the order static makes summaries mergeable by position and the
/// rendered tables stable.
pub const PHASES: [&str; 8] = [
    "ctrl_queue",
    "seek",
    "rotation",
    "transfer",
    "overhead",
    "bus_wait",
    "bus_xfer",
    "response",
];

/// Per-phase and per-disk latency histograms distilled from one or
/// more traces. Mergeable: point jobs summarize independently and the
/// harness folds them together.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Events consumed.
    pub events: u64,
    /// Completed host requests observed.
    pub requests: u64,
    /// Sampler observations observed.
    pub samples: u64,
    /// One histogram per [`PHASES`] entry, in that order (ns values).
    pub phases: Vec<(&'static str, PowerHistogram)>,
    /// Media service time (seek+rotation+transfer+overhead) per disk,
    /// indexed by physical disk id.
    pub per_disk_service: Vec<PowerHistogram>,
    /// Injected faults observed, total (power loss included).
    pub faults: u64,
    /// Retries the recovery policy scheduled.
    pub retries: u64,
    /// Requests that timed out.
    pub timeouts: u64,
    /// Faults per disk, indexed by physical disk id. Array-wide power
    /// losses are excluded (they belong to no single disk).
    pub per_disk_faults: Vec<u64>,
}

impl TraceSummary {
    /// An empty summary with every phase histogram present.
    pub fn new() -> Self {
        TraceSummary {
            events: 0,
            requests: 0,
            samples: 0,
            phases: PHASES.iter().map(|&p| (p, PowerHistogram::new())).collect(),
            per_disk_service: Vec::new(),
            faults: 0,
            retries: 0,
            timeouts: 0,
            per_disk_faults: Vec::new(),
        }
    }

    /// Distills one trace's events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = TraceSummary::new();
        s.add_events(events);
        s
    }

    /// Folds more events into the summary.
    pub fn add_events(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.events += 1;
            match *ev {
                TraceEvent::Media {
                    disk,
                    wait,
                    seek,
                    rotation,
                    transfer,
                    overhead,
                    ..
                } => {
                    self.phase_mut("ctrl_queue").record(wait);
                    self.phase_mut("seek").record(seek);
                    self.phase_mut("rotation").record(rotation);
                    self.phase_mut("transfer").record(transfer);
                    self.phase_mut("overhead").record(overhead);
                    let d = disk as usize;
                    if self.per_disk_service.len() <= d {
                        self.per_disk_service
                            .resize_with(d + 1, PowerHistogram::new);
                    }
                    self.per_disk_service[d].record(seek + rotation + transfer + overhead);
                }
                TraceEvent::Bus { wait, busy, .. } => {
                    self.phase_mut("bus_wait").record(wait);
                    self.phase_mut("bus_xfer").record(busy);
                }
                TraceEvent::Complete { response, .. } => {
                    self.requests += 1;
                    self.phase_mut("response").record(response);
                }
                TraceEvent::Sample { .. } => self.samples += 1,
                TraceEvent::Fault { disk, kind, .. } => {
                    self.faults += 1;
                    if kind != crate::event::FaultKind::PowerLoss {
                        let d = disk as usize;
                        if self.per_disk_faults.len() <= d {
                            self.per_disk_faults.resize(d + 1, 0);
                        }
                        self.per_disk_faults[d] += 1;
                    }
                }
                TraceEvent::Retry { .. } => self.retries += 1,
                TraceEvent::Timeout { .. } => self.timeouts += 1,
                TraceEvent::Issue { .. }
                | TraceEvent::BufferLookup { .. }
                | TraceEvent::Probe { .. }
                | TraceEvent::Queue { .. } => {}
            }
        }
    }

    fn phase_mut(&mut self, name: &str) -> &mut PowerHistogram {
        &mut self
            .phases
            .iter_mut()
            .find(|(p, _)| *p == name)
            .expect("phase list is fixed")
            .1
    }

    /// The histogram for `name`, if any values were recorded under it.
    pub fn phase(&self, name: &str) -> Option<&PowerHistogram> {
        self.phases
            .iter()
            .find(|(p, _)| *p == name)
            .map(|(_, h)| h)
            .filter(|h| !h.is_empty())
    }

    /// Merges another summary (same fixed phase order) into this one.
    pub fn merge(&mut self, other: &TraceSummary) {
        self.events += other.events;
        self.requests += other.requests;
        self.samples += other.samples;
        for ((pa, a), (pb, b)) in self.phases.iter_mut().zip(other.phases.iter()) {
            debug_assert_eq!(pa, pb, "phase order is fixed");
            a.merge(b);
        }
        if self.per_disk_service.len() < other.per_disk_service.len() {
            self.per_disk_service
                .resize_with(other.per_disk_service.len(), PowerHistogram::new);
        }
        for (a, b) in self
            .per_disk_service
            .iter_mut()
            .zip(other.per_disk_service.iter())
        {
            a.merge(b);
        }
        self.faults += other.faults;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        if self.per_disk_faults.len() < other.per_disk_faults.len() {
            self.per_disk_faults.resize(other.per_disk_faults.len(), 0);
        }
        for (a, b) in self
            .per_disk_faults
            .iter_mut()
            .zip(other.per_disk_faults.iter())
        {
            *a += b;
        }
    }

    /// Percentile rows for every non-empty phase, in fixed order.
    pub fn phase_percentiles(&self) -> Vec<PhasePercentiles> {
        self.phases
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|&(phase, ref h)| {
                let q = h.quantiles();
                PhasePercentiles {
                    phase,
                    count: q.count,
                    p50_ns: q.p50_ns,
                    p95_ns: q.p95_ns,
                    p99_ns: q.p99_ns,
                    max_ns: q.max_ns,
                }
            })
            .collect()
    }
}

/// One row of a per-phase percentile table (all values ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePercentiles {
    /// Phase name (one of [`PHASES`]).
    pub phase: &'static str,
    /// Values recorded.
    pub count: u64,
    /// Median (bucket lower bound).
    pub p50_ns: u64,
    /// 95th percentile (bucket lower bound).
    pub p95_ns: u64,
    /// 99th percentile (bucket lower bound).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// One request's full span breakdown, reassembled from its events.
#[derive(Debug, Clone)]
pub struct RequestSpan {
    /// Request id within its trace.
    pub req: u64,
    /// Issue time (ns); 0 if the issue event was not captured.
    pub issued_ns: u64,
    /// Response time (ns).
    pub response_ns: u64,
    /// Every event carrying this request id, in trace order.
    pub events: Vec<TraceEvent>,
}

/// The `n` slowest completed requests, slowest first (ties broken by
/// ascending request id, so the ranking is deterministic). Flush
/// write-backs never complete, so they are excluded by construction.
pub fn slowest_requests(events: &[TraceEvent], n: usize) -> Vec<RequestSpan> {
    let mut done: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Complete { req, response, .. } => Some((response, req)),
            _ => None,
        })
        .collect();
    done.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    done.truncate(n);
    done.iter()
        .map(|&(response, req)| {
            let evs: Vec<TraceEvent> = events
                .iter()
                .filter(|ev| ev.req() == Some(req))
                .copied()
                .collect();
            let issued_ns = evs
                .iter()
                .find_map(|ev| match *ev {
                    TraceEvent::Issue { t, .. } => Some(t),
                    _ => None,
                })
                .unwrap_or(0);
            RequestSpan {
                req,
                issued_ns,
                response_ns: response,
                events: evs,
            }
        })
        .collect()
}

/// Downsamples one trace's sampler series into per-disk utilization
/// timelines of at most `cols` columns (mean per-mille per column).
/// Returns `(disk, timeline)` pairs sorted by disk id.
pub fn utilization_timeline(events: &[TraceEvent], cols: usize) -> Vec<(u16, Vec<u32>)> {
    let mut per_disk: Vec<(u16, Vec<u32>)> = Vec::new();
    for ev in events {
        if let TraceEvent::Sample { disk, util_pm, .. } = *ev {
            match per_disk.binary_search_by_key(&disk, |&(d, _)| d) {
                Ok(i) => per_disk[i].1.push(util_pm),
                Err(i) => per_disk.insert(i, (disk, vec![util_pm])),
            }
        }
    }
    for (_, series) in &mut per_disk {
        if cols > 0 && series.len() > cols {
            let len = series.len();
            let mut out = Vec::with_capacity(cols);
            for c in 0..cols {
                let lo = c * len / cols;
                let hi = ((c + 1) * len / cols).max(lo + 1);
                let sum: u64 = series[lo..hi].iter().map(|&v| v as u64).sum();
                out.push((sum / (hi - lo) as u64) as u32);
            }
            *series = out;
        }
    }
    per_disk
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media(req: u64, disk: u16, wait: u64, service: u64) -> TraceEvent {
        TraceEvent::Media {
            t: 0,
            req,
            disk,
            wait,
            seek: service / 2,
            rotation: service / 4,
            transfer: service / 4,
            overhead: 0,
            nblocks: 8,
            read_ahead: 0,
            write: false,
        }
    }

    fn done(req: u64, response: u64) -> TraceEvent {
        TraceEvent::Complete {
            t: response,
            req,
            response,
        }
    }

    #[test]
    fn summary_distills_phases_and_disks() {
        let evs = vec![
            media(1, 0, 100, 4000),
            media(2, 3, 200, 8000),
            done(1, 5000),
            done(2, 9000),
            TraceEvent::Sample {
                t: 1,
                disk: 0,
                depth: 0,
                util_pm: 500,
                cache_blocks: 0,
                hdc_blocks: 0,
                ra_pm: 0,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.events, 5);
        assert_eq!(s.requests, 2);
        assert_eq!(s.samples, 1);
        assert_eq!(s.phase("ctrl_queue").unwrap().count(), 2);
        assert_eq!(s.phase("response").unwrap().max(), 9000);
        assert!(s.phase("bus_wait").is_none());
        assert_eq!(s.per_disk_service.len(), 4);
        assert_eq!(s.per_disk_service[0].count(), 1);
        assert!(s.per_disk_service[1].is_empty());
        let rows = s.phase_percentiles();
        assert!(rows.iter().any(|r| r.phase == "response" && r.count == 2));
        assert!(rows.iter().all(|r| r.p50_ns <= r.max_ns));
    }

    #[test]
    fn merge_matches_single_pass() {
        let a = vec![media(1, 0, 10, 1000), done(1, 2000)];
        let b = vec![media(2, 1, 20, 3000), done(2, 4000)];
        let mut merged = TraceSummary::from_events(&a);
        merged.merge(&TraceSummary::from_events(&b));
        let mut both = a.clone();
        both.extend(b);
        let whole = TraceSummary::from_events(&both);
        assert_eq!(merged.events, whole.events);
        assert_eq!(merged.requests, whole.requests);
        assert_eq!(merged.phases, whole.phases);
        assert_eq!(merged.per_disk_service, whole.per_disk_service);
    }

    #[test]
    fn slowest_ranks_and_reassembles() {
        let evs = vec![
            TraceEvent::Issue {
                t: 0,
                req: 7,
                stream: 1,
                start: 0,
                nblocks: 1,
                write: false,
            },
            media(7, 0, 5, 100),
            done(7, 9000),
            done(3, 9000), // tie: lower id ranks later? no — ties by asc id, 3 first
            done(5, 100),
        ];
        let top = slowest_requests(&evs, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].req, 3);
        assert_eq!(top[1].req, 7);
        assert_eq!(top[1].events.len(), 3);
        assert_eq!(top[1].issued_ns, 0);
        let all = slowest_requests(&evs, 10);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].req, 5);
    }

    #[test]
    fn fault_events_tally_per_disk() {
        use crate::event::FaultKind;
        let evs = vec![
            TraceEvent::Fault {
                t: 1,
                req: 1,
                disk: 2,
                kind: FaultKind::MediaRead,
            },
            TraceEvent::Fault {
                t: 2,
                req: 1,
                disk: 2,
                kind: FaultKind::Bus,
            },
            TraceEvent::Fault {
                t: 3,
                req: 1 << 63,
                disk: 0,
                kind: FaultKind::PowerLoss,
            },
            TraceEvent::Retry {
                t: 4,
                req: 1,
                disk: 2,
                attempt: 1,
                delay: 100,
            },
            TraceEvent::Timeout { t: 5, req: 9 },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.faults, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        // Power loss belongs to no disk; disk 2 saw two faults.
        assert_eq!(s.per_disk_faults, vec![0, 0, 2]);
        let mut m = TraceSummary::from_events(&evs[..2]);
        m.merge(&TraceSummary::from_events(&evs[2..]));
        assert_eq!(m.faults, 3);
        assert_eq!(m.per_disk_faults, vec![0, 0, 2]);
    }

    #[test]
    fn timeline_downsamples_means() {
        let mut evs = Vec::new();
        for i in 0..10u64 {
            evs.push(TraceEvent::Sample {
                t: i,
                disk: 1,
                depth: 0,
                util_pm: (i * 100) as u32,
                cache_blocks: 0,
                hdc_blocks: 0,
                ra_pm: 0,
            });
        }
        let tl = utilization_timeline(&evs, 5);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].0, 1);
        assert_eq!(tl[0].1, vec![50, 250, 450, 650, 850]);
        // Fewer samples than columns: untouched.
        let tl = utilization_timeline(&evs, 100);
        assert_eq!(tl[0].1.len(), 10);
    }
}
