//! The trace event model and its JSONL encoding.
//!
//! One event per line, fixed key order, integers only (plus a small
//! closed set of string tags), so equal event streams produce equal
//! bytes. Hand-rolled writer and parser — the workspace builds fully
//! offline, so no serde.
//!
//! Times (`t`) and durations are simulated nanoseconds. Ratios are
//! fixed-point per-mille (`_pm` suffix) to keep the encoding
//! float-free and byte-stable.

/// Outcome of a controller cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// All blocks resident (HDC region or read-ahead cache).
    Hit,
    /// Write fully absorbed by pinned HDC blocks.
    HdcAbsorbed,
    /// Needs the media.
    Miss,
    /// Read served by the cooperative pin set (sibling controllers).
    CoopHit,
}

impl ProbeResult {
    /// The stable wire tag (also the display label).
    pub fn tag(self) -> &'static str {
        match self {
            ProbeResult::Hit => "hit",
            ProbeResult::HdcAbsorbed => "hdc",
            ProbeResult::Miss => "miss",
            ProbeResult::CoopHit => "coop",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "hit" => ProbeResult::Hit,
            "hdc" => ProbeResult::HdcAbsorbed,
            "miss" => ProbeResult::Miss,
            "coop" => ProbeResult::CoopHit,
            _ => return None,
        })
    }
}

/// The kind of injected fault a [`TraceEvent::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Persistent bad sector hit by a media read.
    MediaRead,
    /// Persistent bad sector hit by a media write.
    MediaWrite,
    /// Transient bus-transfer fault.
    Bus,
    /// Target disk was inside an offline window; the op stalled.
    Offline,
    /// Controller power loss (volatile cache contents discarded).
    PowerLoss,
}

impl FaultKind {
    /// The stable wire tag (also the display label).
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::MediaRead => "media_read",
            FaultKind::MediaWrite => "media_write",
            FaultKind::Bus => "bus",
            FaultKind::Offline => "offline",
            FaultKind::PowerLoss => "power",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "media_read" => FaultKind::MediaRead,
            "media_write" => FaultKind::MediaWrite,
            "bus" => FaultKind::Bus,
            "offline" => FaultKind::Offline,
            "power" => FaultKind::PowerLoss,
            _ => return None,
        })
    }
}

/// One lifecycle or sampler event. All stamps are deterministic
/// simulated time; flush write-backs carry tokens `>= 1 << 63` and
/// have no `Issue`/`Complete` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A host request leaves its stream's queue and enters the array.
    Issue {
        /// Issue time (ns).
        t: u64,
        /// Request trace id (unique within one simulation).
        req: u64,
        /// Issuing stream.
        stream: u32,
        /// First logical block.
        start: u64,
        /// Blocks requested.
        nblocks: u32,
        /// Write (`true`) or read (`false`).
        write: bool,
    },
    /// One host buffer-cache demand lookup (trace-derivation pipeline).
    BufferLookup {
        /// Access time (ns).
        t: u64,
        /// Logical block looked up.
        block: u64,
        /// Write access.
        write: bool,
        /// Whether the block was resident.
        hit: bool,
    },
    /// Controller cache probe for one extent of a request.
    Probe {
        /// Probe time (ns).
        t: u64,
        /// Owning request.
        req: u64,
        /// Physical disk probed.
        disk: u16,
        /// Extent length in blocks.
        nblocks: u32,
        /// Outcome.
        result: ProbeResult,
    },
    /// An extent entered a disk's scheduler queue.
    Queue {
        /// Enqueue time (ns).
        t: u64,
        /// Owning request (or flush token).
        req: u64,
        /// Target disk.
        disk: u16,
        /// Queue depth after the push.
        depth: u32,
    },
    /// A media operation started service (breakdown known up-front:
    /// the mechanical model is deterministic).
    Media {
        /// Service start time (ns).
        t: u64,
        /// Owning request (or flush token).
        req: u64,
        /// Servicing disk.
        disk: u16,
        /// Time spent waiting in the scheduler queue (ns).
        wait: u64,
        /// Seek time (ns).
        seek: u64,
        /// Rotational latency (ns).
        rotation: u64,
        /// Media transfer time (ns).
        transfer: u64,
        /// Controller overhead incl. any FOR bitmap scan (ns).
        overhead: u64,
        /// Blocks moved (read-ahead included).
        nblocks: u32,
        /// Of `nblocks`, speculative read-ahead.
        read_ahead: u32,
        /// Write operation.
        write: bool,
    },
    /// A bus transfer for one extent (cache hit payload or media
    /// payload).
    Bus {
        /// Reservation time (ns).
        t: u64,
        /// Owning request.
        req: u64,
        /// Time queued behind earlier transfers (ns).
        wait: u64,
        /// Transfer busy time (ns).
        busy: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// A host request fully completed.
    Complete {
        /// Completion time (ns).
        t: u64,
        /// Request id.
        req: u64,
        /// Response time since issue (ns).
        response: u64,
    },
    /// An injected fault was observed by the recovery path.
    Fault {
        /// Observation time (ns).
        t: u64,
        /// Owning request (or flush/sentinel token for ownerless
        /// faults such as power loss).
        req: u64,
        /// Disk involved (0 for array-wide power loss).
        disk: u16,
        /// What faulted.
        kind: FaultKind,
    },
    /// The recovery policy scheduled a retry of a faulted operation.
    Retry {
        /// Scheduling time (ns).
        t: u64,
        /// Owning request (or flush token).
        req: u64,
        /// Disk the retry targets.
        disk: u16,
        /// Attempt number being scheduled (1 = first retry).
        attempt: u32,
        /// Backoff delay before the retry starts (ns).
        delay: u64,
    },
    /// A request exceeded its configured timeout and completed with an
    /// error.
    Timeout {
        /// Expiry time (ns).
        t: u64,
        /// Request id.
        req: u64,
    },
    /// One fixed-cadence sampler observation for one disk.
    Sample {
        /// Sample time (ns).
        t: u64,
        /// Observed disk.
        disk: u16,
        /// Scheduler queue depth (waiting ops, in-service excluded).
        depth: u32,
        /// Disk utilization over the elapsed window, per-mille.
        util_pm: u32,
        /// Read-ahead cache occupancy in blocks.
        cache_blocks: u32,
        /// HDC-pinned blocks.
        hdc_blocks: u32,
        /// Running read-ahead accuracy, per-mille.
        ra_pm: u32,
    },
}

impl TraceEvent {
    /// The event's simulated timestamp in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        match *self {
            TraceEvent::Issue { t, .. }
            | TraceEvent::BufferLookup { t, .. }
            | TraceEvent::Probe { t, .. }
            | TraceEvent::Queue { t, .. }
            | TraceEvent::Media { t, .. }
            | TraceEvent::Bus { t, .. }
            | TraceEvent::Complete { t, .. }
            | TraceEvent::Fault { t, .. }
            | TraceEvent::Retry { t, .. }
            | TraceEvent::Timeout { t, .. }
            | TraceEvent::Sample { t, .. } => t,
        }
    }

    /// The owning request id, when the event belongs to one.
    pub fn req(&self) -> Option<u64> {
        match *self {
            TraceEvent::Issue { req, .. }
            | TraceEvent::Probe { req, .. }
            | TraceEvent::Queue { req, .. }
            | TraceEvent::Media { req, .. }
            | TraceEvent::Bus { req, .. }
            | TraceEvent::Complete { req, .. }
            | TraceEvent::Fault { req, .. }
            | TraceEvent::Retry { req, .. }
            | TraceEvent::Timeout { req, .. } => Some(req),
            TraceEvent::BufferLookup { .. } | TraceEvent::Sample { .. } => None,
        }
    }

    /// Appends the event's JSON line (with trailing newline) to `out`.
    pub fn write_json_line(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEvent::Issue {
                t,
                req,
                stream,
                start,
                nblocks,
                write,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"issue\",\"req\":{req},\"stream\":{stream},\"lb\":{start},\"n\":{nblocks},\"w\":{}}}",
                write as u8
            ),
            TraceEvent::BufferLookup { t, block, write, hit } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"buffer\",\"blk\":{block},\"w\":{},\"hit\":{}}}",
                write as u8, hit as u8
            ),
            TraceEvent::Probe {
                t,
                req,
                disk,
                nblocks,
                result,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"probe\",\"req\":{req},\"disk\":{disk},\"n\":{nblocks},\"res\":\"{}\"}}",
                result.tag()
            ),
            TraceEvent::Queue { t, req, disk, depth } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"queue\",\"req\":{req},\"disk\":{disk},\"depth\":{depth}}}"
            ),
            TraceEvent::Media {
                t,
                req,
                disk,
                wait,
                seek,
                rotation,
                transfer,
                overhead,
                nblocks,
                read_ahead,
                write,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"media\",\"req\":{req},\"disk\":{disk},\"wait\":{wait},\"seek\":{seek},\"rot\":{rotation},\"xfer\":{transfer},\"ovh\":{overhead},\"n\":{nblocks},\"ra\":{read_ahead},\"w\":{}}}",
                write as u8
            ),
            TraceEvent::Bus {
                t,
                req,
                wait,
                busy,
                bytes,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"bus\",\"req\":{req},\"wait\":{wait},\"busy\":{busy},\"bytes\":{bytes}}}"
            ),
            TraceEvent::Complete { t, req, response } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"done\",\"req\":{req},\"resp\":{response}}}"
            ),
            TraceEvent::Fault { t, req, disk, kind } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"fault\",\"req\":{req},\"disk\":{disk},\"kind\":\"{}\"}}",
                kind.tag()
            ),
            TraceEvent::Retry {
                t,
                req,
                disk,
                attempt,
                delay,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"retry\",\"req\":{req},\"disk\":{disk},\"attempt\":{attempt},\"delay\":{delay}}}"
            ),
            TraceEvent::Timeout { t, req } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"timeout\",\"req\":{req}}}"
            ),
            TraceEvent::Sample {
                t,
                disk,
                depth,
                util_pm,
                cache_blocks,
                hdc_blocks,
                ra_pm,
            } => writeln!(
                out,
                "{{\"t\":{t},\"e\":\"sample\",\"disk\":{disk},\"depth\":{depth},\"util_pm\":{util_pm},\"cache\":{cache_blocks},\"hdc\":{hdc_blocks},\"ra_pm\":{ra_pm}}}"
            ),
        }
        .expect("String write is infallible");
    }

    /// Parses one JSON line written by [`TraceEvent::write_json_line`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
        let fields = split_fields(line)?;
        let num = |key: &str| -> Result<u64, String> {
            lookup(&fields, key)?
                .parse::<u64>()
                .map_err(|_| format!("field '{key}' is not an integer in {line:?}"))
        };
        let flag = |key: &str| -> Result<bool, String> { Ok(num(key)? != 0) };
        let kind = lookup(&fields, "e")?;
        match kind {
            "issue" => Ok(TraceEvent::Issue {
                t: num("t")?,
                req: num("req")?,
                stream: num("stream")? as u32,
                start: num("lb")?,
                nblocks: num("n")? as u32,
                write: flag("w")?,
            }),
            "buffer" => Ok(TraceEvent::BufferLookup {
                t: num("t")?,
                block: num("blk")?,
                write: flag("w")?,
                hit: flag("hit")?,
            }),
            "probe" => Ok(TraceEvent::Probe {
                t: num("t")?,
                req: num("req")?,
                disk: num("disk")? as u16,
                nblocks: num("n")? as u32,
                result: ProbeResult::from_tag(lookup(&fields, "res")?)
                    .ok_or_else(|| format!("unknown probe result in {line:?}"))?,
            }),
            "queue" => Ok(TraceEvent::Queue {
                t: num("t")?,
                req: num("req")?,
                disk: num("disk")? as u16,
                depth: num("depth")? as u32,
            }),
            "media" => Ok(TraceEvent::Media {
                t: num("t")?,
                req: num("req")?,
                disk: num("disk")? as u16,
                wait: num("wait")?,
                seek: num("seek")?,
                rotation: num("rot")?,
                transfer: num("xfer")?,
                overhead: num("ovh")?,
                nblocks: num("n")? as u32,
                read_ahead: num("ra")? as u32,
                write: flag("w")?,
            }),
            "bus" => Ok(TraceEvent::Bus {
                t: num("t")?,
                req: num("req")?,
                wait: num("wait")?,
                busy: num("busy")?,
                bytes: num("bytes")?,
            }),
            "done" => Ok(TraceEvent::Complete {
                t: num("t")?,
                req: num("req")?,
                response: num("resp")?,
            }),
            "fault" => Ok(TraceEvent::Fault {
                t: num("t")?,
                req: num("req")?,
                disk: num("disk")? as u16,
                kind: FaultKind::from_tag(lookup(&fields, "kind")?)
                    .ok_or_else(|| format!("unknown fault kind in {line:?}"))?,
            }),
            "retry" => Ok(TraceEvent::Retry {
                t: num("t")?,
                req: num("req")?,
                disk: num("disk")? as u16,
                attempt: num("attempt")? as u32,
                delay: num("delay")?,
            }),
            "timeout" => Ok(TraceEvent::Timeout {
                t: num("t")?,
                req: num("req")?,
            }),
            "sample" => Ok(TraceEvent::Sample {
                t: num("t")?,
                disk: num("disk")? as u16,
                depth: num("depth")? as u32,
                util_pm: num("util_pm")? as u32,
                cache_blocks: num("cache")? as u32,
                hdc_blocks: num("hdc")? as u32,
                ra_pm: num("ra_pm")? as u32,
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// Splits one flat JSON object line into `(key, raw value)` pairs.
/// Values never contain commas or nested objects (by construction of
/// the writer), so a comma split is exact.
fn split_fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed field {part:?} in {line:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key {key:?} in {line:?}"))?;
        let value = value.trim().trim_matches('"');
        out.push((key, value));
    }
    Ok(out)
}

fn lookup<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Renders events as a JSONL document (one event per line).
pub fn write_jsonl(events: &[TraceEvent]) -> String {
    // ~90 bytes per line on average; presize to skip regrowth.
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        ev.write_json_line(&mut out);
    }
    out
}

/// Parses a JSONL document produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns the 1-based line number and cause of the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(TraceEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Issue {
                t: 0,
                req: 1,
                stream: 2,
                start: 4096,
                nblocks: 8,
                write: false,
            },
            TraceEvent::BufferLookup {
                t: 5,
                block: 77,
                write: true,
                hit: false,
            },
            TraceEvent::Probe {
                t: 10,
                req: 1,
                disk: 3,
                nblocks: 8,
                result: ProbeResult::Miss,
            },
            TraceEvent::Queue {
                t: 10,
                req: 1,
                disk: 3,
                depth: 2,
            },
            TraceEvent::Media {
                t: 20,
                req: 1,
                disk: 3,
                wait: 10,
                seek: 4_000_000,
                rotation: 2_000_000,
                transfer: 500_000,
                overhead: 100_000,
                nblocks: 32,
                read_ahead: 24,
                write: false,
            },
            TraceEvent::Bus {
                t: 6_700_000,
                req: 1,
                wait: 0,
                busy: 40_000,
                bytes: 16_384,
            },
            TraceEvent::Complete {
                t: 6_740_000,
                req: 1,
                response: 6_740_000,
            },
            TraceEvent::Fault {
                t: 7_000_000,
                req: 1,
                disk: 3,
                kind: FaultKind::MediaRead,
            },
            TraceEvent::Retry {
                t: 7_000_000,
                req: 1,
                disk: 3,
                attempt: 1,
                delay: 1_000_000,
            },
            TraceEvent::Timeout {
                t: 90_000_000,
                req: 1,
            },
            TraceEvent::Sample {
                t: 100_000_000,
                disk: 3,
                depth: 1,
                util_pm: 875,
                cache_blocks: 512,
                hdc_blocks: 256,
                ra_pm: 420,
            },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        let evs = samples();
        let text = write_jsonl(&evs);
        assert_eq!(text.lines().count(), evs.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, evs);
        // Byte-stability: re-encoding the parse is identical.
        assert_eq!(write_jsonl(&parsed), text);
    }

    #[test]
    fn accessors() {
        let evs = samples();
        assert_eq!(evs[0].time_ns(), 0);
        assert_eq!(evs[0].req(), Some(1));
        assert_eq!(evs[1].req(), None);
        assert_eq!(evs[7].req(), Some(1)); // fault
        assert_eq!(evs[9].req(), Some(1)); // timeout
        assert_eq!(evs[10].req(), None); // sample
    }

    #[test]
    fn fault_tags_round_trip() {
        for k in [
            FaultKind::MediaRead,
            FaultKind::MediaWrite,
            FaultKind::Bus,
            FaultKind::Offline,
            FaultKind::PowerLoss,
        ] {
            assert_eq!(FaultKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(FaultKind::from_tag("nope"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceEvent::parse_line("not json").is_err());
        assert!(TraceEvent::parse_line("{\"t\":1,\"e\":\"nope\"}").is_err());
        assert!(TraceEvent::parse_line("{\"t\":1,\"e\":\"done\",\"req\":2}").is_err());
        assert!(parse_jsonl("{\"t\":x,\"e\":\"done\",\"req\":1,\"resp\":1}")
            .unwrap_err()
            .starts_with("line 1"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let evs = parse_jsonl("\n{\"t\":1,\"e\":\"done\",\"req\":2,\"resp\":3}\n\n").unwrap();
        assert_eq!(evs.len(), 1);
    }
}
