//! Mergeable power-of-two latency histograms.
//!
//! One bucket per binary octave: bucket `b` covers `[2^b, 2^(b+1))`
//! nanoseconds (bucket 0 also holds zero). Coarser than the
//! simulator's reporting histogram (`forhdc-core` uses 16 sub-buckets
//! per octave) but fully mergeable with a fixed 64-slot footprint,
//! which is what per-phase × per-disk × per-point aggregation needs.

/// A latency histogram with one bucket per power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerHistogram {
    counts: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for PowerHistogram {
    fn default() -> Self {
        PowerHistogram::new()
    }
}

impl PowerHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        PowerHistogram {
            counts: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in: bucket `b` covers
    /// `[2^b, 2^(b+1))` nanoseconds, with 0 and 1 both in bucket 0.
    /// Public so external recorders (the live metrics registry keeps
    /// its buckets in atomics) can share the exact same geometry.
    pub fn bucket_index(value: u64) -> usize {
        // floor(log2(max(value, 1))): 0 and 1 land in bucket 0.
        63 - (value | 1).leading_zeros() as usize
    }

    fn bucket_of(value: u64) -> usize {
        Self::bucket_index(value)
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, resolved to its bucket's lower
    /// bound (a deterministic ≤-estimate one octave wide at worst).
    /// `q = 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max
    }

    /// Median shorthand: [`PowerHistogram::quantile`] at 0.50.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Resolves each requested quantile in order (see
    /// [`PowerHistogram::quantile`] for the bucket semantics).
    pub fn quantile_set(&self, qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Exports the standard reporting quantiles in one shot — the
    /// p50/p95/p99/p99.9 row every latency table in the workspace
    /// prints (trace summaries, `loadgen`, the serve report).
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count,
            mean_ns: self.mean() as u64,
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
            p999_ns: self.p999(),
            max_ns: self.max,
        }
    }

    /// Merges another histogram's buckets into this one.
    pub fn merge(&mut self, other: &PowerHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The raw per-bucket counts, bucket 0 first. Together with
    /// [`PowerHistogram::sum`] and [`PowerHistogram::max`] this is the
    /// histogram's full state; [`PowerHistogram::from_parts`] rebuilds
    /// one from it, so distributions survive any transport (atomic
    /// snapshots, a Prometheus scrape) and stay mergeable.
    pub fn bucket_counts(&self) -> &[u64; 64] {
        &self.counts
    }

    /// Rebuilds a histogram from exported state: per-bucket counts,
    /// the value sum, and the exact (or best-known) maximum. The total
    /// count is recomputed from the buckets. Callers reconstructing
    /// from a lossy transport that drops the maximum (Prometheus
    /// bucket lines carry no max) may pass the highest occupied
    /// bucket's lower bound as a conservative stand-in.
    pub fn from_parts(counts: [u64; 64], sum: u128, max: u64) -> Self {
        let count = counts.iter().sum();
        PowerHistogram {
            counts,
            count,
            sum,
            max,
        }
    }

    /// Occupied buckets as `(bucket lower bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << b }, c))
    }
}

/// The standard exported quantile row of a [`PowerHistogram`]:
/// count, mean, p50/p95/p99/p99.9, and the exact maximum, all in
/// nanoseconds. Plain data, so consumers (the `trace` binary, the
/// serving front-end, `loadgen`) can render or serialize it without
/// holding the histogram itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Recorded values.
    pub count: u64,
    /// Mean, truncated to whole nanoseconds.
    pub mean_ns: u64,
    /// Median (bucket lower bound).
    pub p50_ns: u64,
    /// 95th percentile (bucket lower bound).
    pub p95_ns: u64,
    /// 99th percentile (bucket lower bound).
    pub p99_ns: u64,
    /// 99.9th percentile (bucket lower bound).
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

impl Quantiles {
    /// Renders the row as a JSON object (hand-rolled, like the rest of
    /// the workspace's report output).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.p999_ns, self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_octaves() {
        assert_eq!(PowerHistogram::bucket_of(0), 0);
        assert_eq!(PowerHistogram::bucket_of(1), 0);
        assert_eq!(PowerHistogram::bucket_of(2), 1);
        assert_eq!(PowerHistogram::bucket_of(3), 1);
        assert_eq!(PowerHistogram::bucket_of(4), 2);
        assert_eq!(PowerHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = PowerHistogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.0), 0); // rank 1 → bucket of value 1
        assert_eq!(h.p50(), 16);
        assert_eq!(h.quantile(0.9), 256);
        assert_eq!(h.quantile(1.0), 1024);
        assert_eq!(h.max(), 1024);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.max());
    }

    #[test]
    fn empty_is_all_zero() {
        let h = PowerHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = PowerHistogram::new();
        let mut b = PowerHistogram::new();
        let mut whole = PowerHistogram::new();
        for v in 0..1000u64 {
            whole.record(v * 17);
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    fn quantile_export_is_ordered_and_consistent() {
        let mut h = PowerHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * 13 + 1);
        }
        let q = h.quantiles();
        assert_eq!(q.count, h.count());
        assert_eq!(q.max_ns, h.max());
        assert_eq!(q.p999_ns, h.p999());
        assert!(q.p50_ns <= q.p95_ns);
        assert!(q.p95_ns <= q.p99_ns);
        assert!(q.p99_ns <= q.p999_ns);
        assert!(q.p999_ns <= q.max_ns);
        assert_eq!(
            h.quantile_set(&[0.5, 0.95, 0.99, 0.999]),
            vec![q.p50_ns, q.p95_ns, q.p99_ns, q.p999_ns]
        );
        let json = q.to_json();
        for key in [
            "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "p999_ns", "max_ns",
        ] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn empty_quantile_export_is_zero() {
        assert_eq!(PowerHistogram::new().quantiles(), Quantiles::default());
    }

    #[test]
    fn from_parts_round_trips_full_state() {
        let mut h = PowerHistogram::new();
        for v in [0u64, 1, 5, 900, 77_000, u64::MAX] {
            h.record(v);
        }
        let rebuilt = PowerHistogram::from_parts(*h.bucket_counts(), h.sum(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantiles(), h.quantiles());
    }

    #[test]
    fn empty_quantile_edge_cases() {
        let h = PowerHistogram::new();
        // Every quantile of an empty histogram is zero, including the
        // boundaries.
        for q in [0.0, 0.5, 0.999, 1.0, 2.0, -1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.quantile_set(&[0.5, 0.99]), vec![0, 0]);
        assert_eq!(h.quantiles(), Quantiles::default());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut filled = PowerHistogram::new();
        for v in [3u64, 9, 81, 6561] {
            filled.record(v);
        }
        // Merging an empty histogram in changes nothing...
        let mut a = filled.clone();
        a.merge(&PowerHistogram::new());
        assert_eq!(a, filled);
        assert_eq!(a.quantiles(), filled.quantiles());
        // ...and merging into an empty one yields the other side.
        let mut b = PowerHistogram::new();
        b.merge(&filled);
        assert_eq!(b, filled);
        // Empty into empty stays empty (quantiles all zero).
        let mut c = PowerHistogram::new();
        c.merge(&PowerHistogram::new());
        assert!(c.is_empty());
        assert_eq!(c.quantiles(), Quantiles::default());
    }

    #[test]
    fn bucket_index_is_public_geometry() {
        assert_eq!(PowerHistogram::bucket_index(0), 0);
        assert_eq!(PowerHistogram::bucket_index(1), 0);
        assert_eq!(PowerHistogram::bucket_index(2), 1);
        assert_eq!(PowerHistogram::bucket_index((1 << 20) - 1), 19);
        assert_eq!(PowerHistogram::bucket_index(1 << 20), 20);
    }

    #[test]
    fn buckets_iterator_reports_occupied() {
        let mut h = PowerHistogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(2, 2), (64, 1)]);
    }
}
