//! Mergeable power-of-two latency histograms.
//!
//! One bucket per binary octave: bucket `b` covers `[2^b, 2^(b+1))`
//! nanoseconds (bucket 0 also holds zero). Coarser than the
//! simulator's reporting histogram (`forhdc-core` uses 16 sub-buckets
//! per octave) but fully mergeable with a fixed 64-slot footprint,
//! which is what per-phase × per-disk × per-point aggregation needs.

/// A latency histogram with one bucket per power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerHistogram {
    counts: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for PowerHistogram {
    fn default() -> Self {
        PowerHistogram::new()
    }
}

impl PowerHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        PowerHistogram {
            counts: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        // floor(log2(max(value, 1))): 0 and 1 land in bucket 0.
        63 - (value | 1).leading_zeros() as usize
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, resolved to its bucket's lower
    /// bound (a deterministic ≤-estimate one octave wide at worst).
    /// `q = 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max
    }

    /// Median shorthand: [`PowerHistogram::quantile`] at 0.50.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram's buckets into this one.
    pub fn merge(&mut self, other: &PowerHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(bucket lower bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << b }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_octaves() {
        assert_eq!(PowerHistogram::bucket_of(0), 0);
        assert_eq!(PowerHistogram::bucket_of(1), 0);
        assert_eq!(PowerHistogram::bucket_of(2), 1);
        assert_eq!(PowerHistogram::bucket_of(3), 1);
        assert_eq!(PowerHistogram::bucket_of(4), 2);
        assert_eq!(PowerHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = PowerHistogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.0), 0); // rank 1 → bucket of value 1
        assert_eq!(h.p50(), 16);
        assert_eq!(h.quantile(0.9), 256);
        assert_eq!(h.quantile(1.0), 1024);
        assert_eq!(h.max(), 1024);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.max());
    }

    #[test]
    fn empty_is_all_zero() {
        let h = PowerHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = PowerHistogram::new();
        let mut b = PowerHistogram::new();
        let mut whole = PowerHistogram::new();
        for v in 0..1000u64 {
            whole.record(v * 17);
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    fn buckets_iterator_reports_occupied() {
        let mut h = PowerHistogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(2, 2), (64, 1)]);
    }
}
