//! # forhdc-trace
//!
//! Deterministic request-lifecycle tracing for the simulator
//! (DESIGN.md §6.3). Dependency-free, like `forhdc-runner`.
//!
//! The crate provides three things:
//!
//! 1. A **zero-overhead-when-disabled facade**: the [`Tracer`] trait,
//!    whose [`NullTracer`] implementation monomorphizes every guarded
//!    emission site to a no-op (`enabled()` is a constant `false`, so
//!    the event construction behind the guard folds away entirely).
//! 2. A **deterministic event model**: [`TraceEvent`] carries only
//!    integer simulated-time stamps (`SimTime` nanoseconds) and
//!    counters — never wall clocks — so a trace is a pure function of
//!    the workload and configuration, byte-identical between serial
//!    and parallel runs.
//! 3. **Analysis building blocks**: mergeable power-of-two latency
//!    histograms ([`PowerHistogram`]), per-phase/per-disk summaries
//!    ([`TraceSummary`]), slowest-request extraction, and sampler
//!    time-series downsampling for utilization timelines.
//!
//! Emission sites guard construction with `enabled()`:
//!
//! ```
//! use forhdc_trace::{MemTracer, NullTracer, TraceEvent, Tracer};
//!
//! fn work<T: Tracer>(tracer: &mut T) {
//!     if tracer.enabled() {
//!         tracer.emit(TraceEvent::Complete { t: 10, req: 1, response: 7 });
//!     }
//! }
//!
//! let mut null = NullTracer;
//! work(&mut null); // compiles to nothing
//! let mut mem = MemTracer::new();
//! work(&mut mem);
//! assert_eq!(mem.events.len(), 1);
//! ```

pub mod event;
pub mod hist;
pub mod summary;

pub use event::{parse_jsonl, write_jsonl, FaultKind, ProbeResult, TraceEvent};
pub use hist::{PowerHistogram, Quantiles};
pub use summary::{
    slowest_requests, utilization_timeline, PhasePercentiles, RequestSpan, TraceSummary,
};

/// A sink for simulator trace events.
///
/// Implementations must be cheap to query: the simulator calls
/// [`Tracer::enabled`] on hot paths and only constructs events when it
/// returns `true`. [`NullTracer`] returns a constant `false`, so a
/// system monomorphized over it carries no tracing cost at all.
pub trait Tracer {
    /// Whether events should be constructed and emitted.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event. Called only when [`Tracer::enabled`] is
    /// `true` (callers guard emission), but implementations must
    /// tolerate unconditional calls.
    fn emit(&mut self, ev: TraceEvent);
}

/// The disabled tracer: a zero-sized type whose `enabled()` is a
/// constant `false`. Every guarded emission site monomorphizes to
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Collects events in memory, in emission order (which is
/// deterministic: the event loop is).
#[derive(Debug, Clone, Default)]
pub struct MemTracer {
    /// Emitted events, in order.
    pub events: Vec<TraceEvent>,
}

impl MemTracer {
    /// An empty collector.
    pub fn new() -> Self {
        MemTracer::default()
    }

    /// Renders the collected events as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        write_jsonl(&self.events)
    }
}

impl Tracer for MemTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
        assert!(!NullTracer.enabled());
        let mut t = NullTracer;
        t.emit(TraceEvent::Complete {
            t: 1,
            req: 2,
            response: 3,
        });
    }

    #[test]
    fn mem_tracer_collects_in_order() {
        let mut t = MemTracer::new();
        assert!(t.enabled());
        for i in 0..5 {
            t.emit(TraceEvent::Complete {
                t: i,
                req: i,
                response: i * 10,
            });
        }
        assert_eq!(t.events.len(), 5);
        assert_eq!(t.to_jsonl().lines().count(), 5);
    }
}
