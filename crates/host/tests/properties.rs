//! Property-based invariants of the host models, including a
//! differential check of the list-based [`BufferCache`] against the
//! original `BTreeSet<(stamp, block)>` LRU bookkeeping.

use std::collections::{BTreeSet, HashMap};

use proptest::prelude::*;

use forhdc_host::coalesce::{coalesce_window, TimedAccess};
use forhdc_host::{BufferCache, SequentialPrefetcher, StreamDriver};
use forhdc_layout::FileId;
use forhdc_sim::{LogicalBlock, ReadWrite, SimDuration, SimTime};
use forhdc_workload::{Trace, TraceRequest};

/// The pre-optimization [`BufferCache`] recency bookkeeping, kept as an
/// executable specification: a monotonic stamp per resident block and a
/// `BTreeSet<(stamp, block)>` whose minimum is the LRU victim.
#[derive(Debug, Default)]
struct RefBufferCache {
    map: HashMap<u64, u64>, // block -> stamp
    order: BTreeSet<(u64, u64)>,
    capacity: u64,
    clock: u64,
    miss_counts: HashMap<u64, u32>,
    hits: u64,
    misses: u64,
}

impl RefBufferCache {
    fn new(capacity: u64) -> Self {
        RefBufferCache {
            capacity,
            ..RefBufferCache::default()
        }
    }

    fn promote(&mut self, block: u64) {
        let stamp = self.map[&block];
        self.order.remove(&(stamp, block));
        self.clock += 1;
        self.order.insert((self.clock, block));
        self.map.insert(block, self.clock);
    }

    fn insert_new(&mut self, block: u64) {
        if self.map.len() as u64 >= self.capacity {
            let &(stamp, victim) = self.order.first().expect("full cache has a victim");
            self.order.remove(&(stamp, victim));
            self.map.remove(&victim);
        }
        self.clock += 1;
        self.order.insert((self.clock, block));
        self.map.insert(block, self.clock);
    }

    /// Returns `true` on a hit (mirrors `BufferAccess::is_hit`).
    fn access(&mut self, block: u64) -> bool {
        if self.map.contains_key(&block) {
            self.promote(block);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        *self.miss_counts.entry(block).or_insert(0) += 1;
        self.insert_new(block);
        false
    }

    fn install(&mut self, block: u64) {
        if self.map.contains_key(&block) {
            self.promote(block);
        } else {
            self.insert_new(block);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Window coalescing conserves blocks and preserves order.
    #[test]
    fn coalescing_conserves_blocks(
        gaps in prop::collection::vec(0u64..5_000, 1..120),
        blocks in prop::collection::vec(0u64..300, 1..120),
    ) {
        let n = gaps.len().min(blocks.len());
        let mut at = 0u64;
        let log: Vec<TimedAccess> = (0..n)
            .map(|i| {
                at += gaps[i];
                TimedAccess {
                    at: SimTime::ZERO + SimDuration::from_micros(at),
                    block: LogicalBlock::new(blocks[i]),
                    kind: ReadWrite::Read,
                }
            })
            .collect();
        let trace = coalesce_window(&log, SimDuration::from_millis(2));
        prop_assert_eq!(trace.total_blocks(), n as u64);
        prop_assert!(trace.len() <= n);
        // Flattening the trace reproduces the block sequence.
        let flat: Vec<u64> = trace
            .requests()
            .iter()
            .flat_map(|r| (0..r.nblocks as u64).map(move |i| r.start.index() + i))
            .collect();
        prop_assert_eq!(flat, blocks[..n].to_vec());
    }

    /// The buffer cache never exceeds capacity and hits+misses equals
    /// accesses.
    #[test]
    fn buffer_cache_accounting(
        capacity in 1u64..64,
        accesses in prop::collection::vec(0u64..200, 1..400),
    ) {
        let mut c = BufferCache::new(capacity);
        for &b in &accesses {
            c.access(LogicalBlock::new(b), ReadWrite::Read);
            prop_assert!(c.len() <= capacity);
        }
        prop_assert_eq!(c.hits() + c.misses(), accesses.len() as u64);
        // Total per-block miss counts equals the global miss count.
        let total: u64 = c.top_missing_blocks(usize::MAX).iter().map(|&(_, n)| n as u64).sum();
        prop_assert_eq!(total, c.misses());
    }

    /// The prefetch window never exceeds the maximum and only grows on
    /// strictly sequential accesses.
    #[test]
    fn prefetch_window_bounded(
        max in 1u32..64,
        offsets in prop::collection::vec(0u64..100, 1..200),
    ) {
        let mut p = SequentialPrefetcher::new(max);
        let mut prev: Option<(u64, u32)> = None;
        for &o in &offsets {
            let w = p.on_access(FileId::new(0), o);
            prop_assert!(w <= max);
            if let Some((po, pw)) = prev {
                if o != po + 1 {
                    prop_assert!(w <= 1, "non-sequential access must collapse: {w}");
                } else {
                    prop_assert!(w >= pw.min(max), "sequential access must not shrink");
                }
            }
            prev = Some((o, w));
        }
    }

    /// The list-based buffer cache is observably identical to the
    /// original stamp-set LRU: same hit/miss per access, same resident
    /// set, same miss accounting.
    #[test]
    fn buffer_cache_matches_btreeset_reference(
        capacity in 1u64..48,
        ops in prop::collection::vec((0u64..160, any::<bool>()), 1..400),
    ) {
        let mut real = BufferCache::new(capacity);
        let mut spec = RefBufferCache::new(capacity);
        for (step, &(block, install)) in ops.iter().enumerate() {
            let b = LogicalBlock::new(block);
            if install {
                real.install(b);
                spec.install(block);
            } else {
                let hit = real.access(b, ReadWrite::Read).is_hit();
                prop_assert_eq!(
                    hit,
                    spec.access(block),
                    "access({}) diverged at step {}", block, step
                );
            }
            prop_assert_eq!(real.len(), spec.map.len() as u64);
        }
        prop_assert_eq!(real.hits(), spec.hits);
        prop_assert_eq!(real.misses(), spec.misses);
        for block in 0u64..160 {
            prop_assert_eq!(
                real.contains(LogicalBlock::new(block)),
                spec.map.contains_key(&block),
                "resident set diverged at block {}", block
            );
        }
        // Identical per-block miss attribution (sorted the same way
        // the planner consumes it).
        let mut expect: Vec<(u64, u32)> =
            spec.miss_counts.iter().map(|(&b, &c)| (b, c)).collect();
        expect.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let got: Vec<(u64, u32)> = real
            .top_missing_blocks(usize::MAX)
            .into_iter()
            .map(|(b, c)| (b.index(), c))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Structural coherence under checked mode: the deep validator the
    /// auditor runs (DESIGN.md §6.5) holds after every access/install
    /// of an arbitrary workout.
    #[test]
    fn buffer_cache_stays_coherent_under_arbitrary_ops(
        capacity in 1u64..48,
        ops in prop::collection::vec((0u64..160, any::<bool>()), 1..400),
    ) {
        let mut c = BufferCache::new(capacity);
        for (step, &(block, install)) in ops.iter().enumerate() {
            let b = LogicalBlock::new(block);
            if install {
                c.install(b);
            } else {
                c.access(b, ReadWrite::Read);
            }
            if let Err(e) = c.check_coherence() {
                prop_assert!(false, "buffer cache, step {}: {}", step, e);
            }
        }
    }

    /// The stream driver issues every request exactly once, regardless
    /// of completion order.
    #[test]
    fn stream_driver_exactly_once(
        job_lens in prop::collection::vec(1u32..5, 1..60),
        streams in 1u32..32,
        pick in prop::collection::vec(any::<prop::sample::Index>(), 0..400),
    ) {
        let total: u32 = job_lens.iter().sum();
        let reqs: Vec<TraceRequest> = (0..total)
            .map(|i| TraceRequest {
                start: LogicalBlock::new(i as u64),
                nblocks: 1,
                kind: ReadWrite::Read,
            })
            .collect();
        let trace = Trace::with_jobs(reqs, job_lens);
        let mut d = StreamDriver::new(&trace, streams);
        let mut seen: Vec<u64> = Vec::new();
        let mut active: Vec<forhdc_sim::StreamId> = d
            .start()
            .into_iter()
            .map(|(s, r)| {
                seen.push(r.start.index());
                s
            })
            .collect();
        let mut pi = 0;
        while !active.is_empty() {
            // Complete a pseudo-random active stream.
            let idx = pick
                .get(pi)
                .map(|p| p.index(active.len()))
                .unwrap_or(active.len() - 1);
            pi += 1;
            let s = active.swap_remove(idx);
            if let Some((s2, r)) = d.complete(s) {
                seen.push(r.start.index());
                active.push(s2);
            }
        }
        seen.sort_unstable();
        let expected: Vec<u64> = (0..total as u64).collect();
        prop_assert_eq!(seen, expected);
        prop_assert!(d.is_done());
    }
}
