//! Request coalescing (§2.3 and §6.3).
//!
//! When accesses to consecutive logical blocks arrive close together,
//! the operating system or device driver merges them into one larger
//! disk request. The paper coalesces logged accesses "if the difference
//! in time between the accesses is less than 2 msecs"; across its real
//! workloads this yields an 87 % coalescing probability.

use forhdc_sim::{LogicalBlock, ReadWrite, SimTime};
use forhdc_workload::{Trace, TraceRequest};

/// A timestamped block access, the input to window coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedAccess {
    /// When the access was issued.
    pub at: SimTime,
    /// The block accessed.
    pub block: LogicalBlock,
    /// Read or write.
    pub kind: ReadWrite,
}

/// Merges a time-ordered access log into disk requests: an access is
/// appended to the pending request when it continues it (next
/// consecutive block, same kind) and arrived within `window` of the
/// previous access; otherwise the pending request is emitted and a new
/// one starts.
///
/// # Example
///
/// ```
/// use forhdc_host::coalesce::{coalesce_window, TimedAccess};
/// use forhdc_sim::{LogicalBlock, ReadWrite, SimDuration, SimTime};
///
/// let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
/// let acc = |us, blk| TimedAccess { at: t(us), block: LogicalBlock::new(blk), kind: ReadWrite::Read };
/// let log = vec![acc(0, 10), acc(500, 11), acc(10_000, 12)];
/// let trace = coalesce_window(&log, SimDuration::from_millis(2));
/// // 10 and 11 merge (0.5 ms apart); 12 is 9.5 ms later.
/// assert_eq!(trace.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if the log is not sorted by time.
pub fn coalesce_window(log: &[TimedAccess], window: forhdc_sim::SimDuration) -> Trace {
    let mut out: Vec<TraceRequest> = Vec::new();
    let mut pending: Option<(TraceRequest, SimTime)> = None;
    for acc in log {
        if let Some((req, last_at)) = pending.as_mut() {
            assert!(acc.at >= *last_at, "coalescing input must be time-ordered");
            let contiguous = acc.block == req.start.offset(req.nblocks as u64);
            let close = acc.at.since(*last_at) <= window;
            if contiguous && close && acc.kind == req.kind {
                req.nblocks += 1;
                *last_at = acc.at;
                continue;
            }
            out.push(*req);
        }
        pending = Some((
            TraceRequest {
                start: acc.block,
                nblocks: 1,
                kind: acc.kind,
            },
            acc.at,
        ));
    }
    if let Some((req, _)) = pending {
        out.push(req);
    }
    Trace::new(out)
}

/// The fraction of block-boundary opportunities that actually coalesced
/// in `trace` relative to its `raw_accesses` input size — the paper's
/// "coalescing probability" statistic (87 % across its workloads).
///
/// Returns 0 when there were no opportunities.
pub fn coalescing_probability(raw_accesses: usize, trace: &Trace) -> f64 {
    if raw_accesses <= 1 {
        return 0.0;
    }
    let merges = raw_accesses.saturating_sub(trace.len());
    let opportunities = raw_accesses - 1;
    merges as f64 / opportunities as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_sim::SimDuration;

    fn acc(us: u64, blk: u64, kind: ReadWrite) -> TimedAccess {
        TimedAccess {
            at: SimTime::ZERO + SimDuration::from_micros(us),
            block: LogicalBlock::new(blk),
            kind,
        }
    }

    #[test]
    fn merges_consecutive_within_window() {
        let log = vec![
            acc(0, 0, ReadWrite::Read),
            acc(100, 1, ReadWrite::Read),
            acc(200, 2, ReadWrite::Read),
        ];
        let t = coalesce_window(&log, SimDuration::from_millis(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].nblocks, 3);
    }

    #[test]
    fn window_expiry_splits() {
        let log = vec![acc(0, 0, ReadWrite::Read), acc(3_000, 1, ReadWrite::Read)];
        let t = coalesce_window(&log, SimDuration::from_millis(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn non_contiguous_splits() {
        let log = vec![acc(0, 0, ReadWrite::Read), acc(100, 5, ReadWrite::Read)];
        let t = coalesce_window(&log, SimDuration::from_millis(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn kind_change_splits() {
        let log = vec![acc(0, 0, ReadWrite::Read), acc(100, 1, ReadWrite::Write)];
        let t = coalesce_window(&log, SimDuration::from_millis(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_log() {
        let t = coalesce_window(&[], SimDuration::from_millis(2));
        assert!(t.is_empty());
    }

    #[test]
    fn probability_statistic() {
        let log: Vec<TimedAccess> = (0..100).map(|i| acc(i * 100, i, ReadWrite::Read)).collect();
        let t = coalesce_window(&log, SimDuration::from_millis(2));
        assert_eq!(t.len(), 1);
        assert!((coalescing_probability(100, &t) - 1.0).abs() < 1e-12);
        assert_eq!(coalescing_probability(1, &t), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_input_panics() {
        let log = vec![acc(100, 0, ReadWrite::Read), acc(0, 1, ReadWrite::Read)];
        let _ = coalesce_window(&log, SimDuration::from_millis(2));
    }
}
