//! An LRU file-system buffer cache with per-block miss accounting.
//!
//! The buffer cache is what makes disk-controller caches so peculiar:
//! any block with temporal locality is absorbed here, so the accesses
//! that reach the disk have almost none (§2.1). HDC inverts this:
//! the host *knows* which blocks keep missing in this cache, and pins
//! exactly those in the controller memories (§5).

use std::collections::HashMap;

use forhdc_sim::{LogicalBlock, ReadWrite};

/// Outcome of one buffer-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferAccess {
    /// Served from memory; the disk is not involved.
    Hit,
    /// The block must be read from (or, for a write in write-through
    /// accounting, written to) the disk.
    Miss,
}

impl BufferAccess {
    /// Returns `true` for [`BufferAccess::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, BufferAccess::Hit)
    }
}

/// A fixed-capacity LRU buffer cache over logical blocks.
///
/// # Example
///
/// ```
/// use forhdc_host::BufferCache;
/// use forhdc_sim::{LogicalBlock, ReadWrite};
///
/// let mut bc = BufferCache::new(2);
/// assert!(!bc.access(LogicalBlock::new(1), ReadWrite::Read).is_hit());
/// assert!(bc.access(LogicalBlock::new(1), ReadWrite::Read).is_hit());
/// ```
#[derive(Debug)]
pub struct BufferCache {
    map: HashMap<LogicalBlock, u64>,
    order: std::collections::BTreeSet<(u64, LogicalBlock)>,
    capacity: u64,
    clock: u64,
    miss_counts: HashMap<LogicalBlock, u32>,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates an empty cache of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "buffer cache capacity must be positive");
        BufferCache {
            map: HashMap::new(),
            order: std::collections::BTreeSet::new(),
            capacity,
            clock: 0,
            miss_counts: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one block; on a miss the block is brought in (evicting
    /// the LRU block if needed) and the block's miss count increments.
    /// Reads and writes are treated alike for residency (a write miss
    /// allocates), which matches the paper's logs containing both.
    pub fn access(&mut self, block: LogicalBlock, kind: ReadWrite) -> BufferAccess {
        let _ = kind;
        self.clock += 1;
        let stamp = self.clock;
        if let Some(old) = self.map.get_mut(&block) {
            self.order.remove(&(*old, block));
            *old = stamp;
            self.order.insert((stamp, block));
            self.hits += 1;
            return BufferAccess::Hit;
        }
        self.misses += 1;
        *self.miss_counts.entry(block).or_insert(0) += 1;
        if self.map.len() as u64 >= self.capacity {
            if let Some(&(s, victim)) = self.order.iter().next() {
                self.order.remove(&(s, victim));
                self.map.remove(&victim);
            }
        }
        self.map.insert(block, stamp);
        self.order.insert((stamp, block));
        BufferAccess::Miss
    }

    /// Inserts a block without counting a miss (used for prefetched
    /// blocks: the disk access is charged to the prefetch, not to the
    /// later demand access).
    pub fn install(&mut self, block: LogicalBlock) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(old) = self.map.get_mut(&block) {
            self.order.remove(&(*old, block));
            *old = stamp;
            self.order.insert((stamp, block));
            return;
        }
        if self.map.len() as u64 >= self.capacity {
            if let Some(&(s, victim)) = self.order.iter().next() {
                self.order.remove(&(s, victim));
                self.map.remove(&victim);
            }
        }
        self.map.insert(block, stamp);
        self.order.insert((stamp, block));
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: LogicalBlock) -> bool {
        self.map.contains_key(&block)
    }

    /// Resident block count.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The `top` blocks by miss count, descending (ties by block
    /// number, deterministic) — the HDC planner's raw input.
    pub fn top_missing_blocks(&self, top: usize) -> Vec<(LogicalBlock, u32)> {
        let mut v: Vec<(LogicalBlock, u32)> =
            self.miss_counts.iter().map(|(&b, &c)| (b, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> LogicalBlock {
        LogicalBlock::new(n)
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(2);
        c.access(b(1), ReadWrite::Read);
        c.access(b(2), ReadWrite::Read);
        c.access(b(1), ReadWrite::Read); // 1 is now MRU
        c.access(b(3), ReadWrite::Read); // evicts 2
        assert!(c.contains(b(1)));
        assert!(!c.contains(b(2)));
        assert!(c.contains(b(3)));
    }

    #[test]
    fn miss_counts_accumulate_per_block() {
        let mut c = BufferCache::new(1);
        c.access(b(1), ReadWrite::Read); // miss
        c.access(b(2), ReadWrite::Read); // miss, evicts 1
        c.access(b(1), ReadWrite::Read); // miss again
        let top = c.top_missing_blocks(10);
        assert_eq!(top[0], (b(1), 2));
        assert_eq!(top[1], (b(2), 1));
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn install_does_not_count_misses() {
        let mut c = BufferCache::new(4);
        c.install(b(5));
        assert!(c.contains(b(5)));
        assert_eq!(c.misses(), 0);
        assert!(c.access(b(5), ReadWrite::Read).is_hit());
        assert_eq!(c.hit_rate(), 1.0);
    }

    #[test]
    fn writes_allocate() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(b(7), ReadWrite::Write).is_hit());
        assert!(c.access(b(7), ReadWrite::Read).is_hit());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BufferCache::new(8);
        for i in 0..100 {
            c.access(b(i), ReadWrite::Read);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.capacity(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn hit_rate_zero_before_accesses() {
        assert_eq!(BufferCache::new(1).hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BufferCache::new(0);
    }
}
