//! An LRU file-system buffer cache with per-block miss accounting.
//!
//! The buffer cache is what makes disk-controller caches so peculiar:
//! any block with temporal locality is absorbed here, so the accesses
//! that reach the disk have almost none (§2.1). HDC inverts this:
//! the host *knows* which blocks keep missing in this cache, and pins
//! exactly those in the controller memories (§5).
//!
//! Recency is one slab-backed intrusive LRU list
//! ([`forhdc_cache::list`]): every access, install, and eviction is
//! O(1), replacing the original `BTreeSet<(stamp, block)>` ordering
//! whose O(log n) churn sat on the per-I/O hot path (DESIGN.md §6.2).

use forhdc_cache::fx::{fx_map_with_capacity, FxHashMap};
use forhdc_cache::list::{List, Slab};
use forhdc_sim::{LogicalBlock, ReadWrite};

/// Outcome of one buffer-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferAccess {
    /// Served from memory; the disk is not involved.
    Hit,
    /// The block must be read from (or, for a write in write-through
    /// accounting, written to) the disk.
    Miss,
}

impl BufferAccess {
    /// Returns `true` for [`BufferAccess::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, BufferAccess::Hit)
    }
}

/// Pre-sizing is capped so a pathological capacity (the field is a
/// `u64`) cannot make construction allocate gigabytes up front.
const PRESIZE_CAP: u64 = 1 << 20;

/// A fixed-capacity LRU buffer cache over logical blocks.
///
/// # Example
///
/// ```
/// use forhdc_host::BufferCache;
/// use forhdc_sim::{LogicalBlock, ReadWrite};
///
/// let mut bc = BufferCache::new(2);
/// assert!(!bc.access(LogicalBlock::new(1), ReadWrite::Read).is_hit());
/// assert!(bc.access(LogicalBlock::new(1), ReadWrite::Read).is_hit());
/// ```
#[derive(Debug)]
pub struct BufferCache {
    map: FxHashMap<LogicalBlock, u32>,
    nodes: Slab<LogicalBlock>,
    /// Head = most recently used; tail = eviction victim.
    lru: List,
    capacity: u64,
    miss_counts: FxHashMap<LogicalBlock, u32>,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates an empty cache of `capacity` blocks, pre-sized so the
    /// steady state never rehashes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "buffer cache capacity must be positive");
        let presize = capacity.min(PRESIZE_CAP) as usize;
        BufferCache {
            map: fx_map_with_capacity(presize),
            nodes: Slab::with_capacity(presize),
            lru: List::new(),
            capacity,
            // The miss map grows with the workload footprint, not the
            // cache; a floor avoids the early doubling churn.
            miss_counts: fx_map_with_capacity(presize.max(1024)),
            hits: 0,
            misses: 0,
        }
    }

    /// Moves a resident node to the MRU position.
    fn promote(&mut self, idx: u32) {
        self.nodes.remove(&mut self.lru, idx);
        self.nodes.push_front(&mut self.lru, idx);
    }

    /// Evicts the LRU block when the cache is full, then links `block`
    /// at the MRU position.
    fn insert_new(&mut self, block: LogicalBlock) {
        if self.map.len() as u64 >= self.capacity {
            if let Some(victim_idx) = self.nodes.tail(&self.lru) {
                let victim = *self.nodes.get(victim_idx);
                self.nodes.remove(&mut self.lru, victim_idx);
                self.nodes.release(victim_idx);
                self.map.remove(&victim);
            }
        }
        let idx = self.nodes.alloc(block);
        self.nodes.push_front(&mut self.lru, idx);
        self.map.insert(block, idx);
    }

    /// Accesses one block; on a miss the block is brought in (evicting
    /// the LRU block if needed) and the block's miss count increments.
    /// Reads and writes are treated alike for residency (a write miss
    /// allocates), which matches the paper's logs containing both.
    pub fn access(&mut self, block: LogicalBlock, kind: ReadWrite) -> BufferAccess {
        let _ = kind;
        if let Some(&idx) = self.map.get(&block) {
            self.promote(idx);
            self.hits += 1;
            return BufferAccess::Hit;
        }
        self.misses += 1;
        *self.miss_counts.entry(block).or_insert(0) += 1;
        self.insert_new(block);
        BufferAccess::Miss
    }

    /// Inserts a block without counting a miss (used for prefetched
    /// blocks: the disk access is charged to the prefetch, not to the
    /// later demand access).
    pub fn install(&mut self, block: LogicalBlock) {
        if let Some(&idx) = self.map.get(&block) {
            self.promote(idx);
            return;
        }
        self.insert_new(block);
    }

    /// Deep structural validation for checked mode (DESIGN.md §6.5):
    /// LRU list ↔ map agreement (every listed node maps back to its
    /// slab index, every resident block is listed exactly once) and
    /// occupancy ≤ capacity. O(residents) — called only from audit
    /// points behind `Auditor::enabled()`.
    pub fn check_coherence(&self) -> Result<(), String> {
        if self.map.len() as u64 > self.capacity {
            return Err(format!(
                "occupancy {} exceeds capacity {}",
                self.map.len(),
                self.capacity
            ));
        }
        let mut listed = 0usize;
        for idx in self.nodes.iter(&self.lru) {
            let block = *self.nodes.get(idx);
            if self.map.get(&block) != Some(&idx) {
                return Err(format!(
                    "block {block} on the LRU list maps to {:?}, not node {idx}",
                    self.map.get(&block)
                ));
            }
            listed += 1;
        }
        if listed != self.map.len() {
            return Err(format!(
                "{} resident blocks but {listed} LRU nodes",
                self.map.len()
            ));
        }
        Ok(())
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: LogicalBlock) -> bool {
        self.map.contains_key(&block)
    }

    /// Resident block count.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The `top` blocks by miss count, descending (ties by block
    /// number, deterministic) — the HDC planner's raw input.
    pub fn top_missing_blocks(&self, top: usize) -> Vec<(LogicalBlock, u32)> {
        let mut v: Vec<(LogicalBlock, u32)> =
            self.miss_counts.iter().map(|(&b, &c)| (b, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> LogicalBlock {
        LogicalBlock::new(n)
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(2);
        c.access(b(1), ReadWrite::Read);
        c.access(b(2), ReadWrite::Read);
        c.access(b(1), ReadWrite::Read); // 1 is now MRU
        c.access(b(3), ReadWrite::Read); // evicts 2
        assert!(c.contains(b(1)));
        assert!(!c.contains(b(2)));
        assert!(c.contains(b(3)));
    }

    #[test]
    fn miss_counts_accumulate_per_block() {
        let mut c = BufferCache::new(1);
        c.access(b(1), ReadWrite::Read); // miss
        c.access(b(2), ReadWrite::Read); // miss, evicts 1
        c.access(b(1), ReadWrite::Read); // miss again
        let top = c.top_missing_blocks(10);
        assert_eq!(top[0], (b(1), 2));
        assert_eq!(top[1], (b(2), 1));
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn install_does_not_count_misses() {
        let mut c = BufferCache::new(4);
        c.install(b(5));
        assert!(c.contains(b(5)));
        assert_eq!(c.misses(), 0);
        assert!(c.access(b(5), ReadWrite::Read).is_hit());
        assert_eq!(c.hit_rate(), 1.0);
    }

    #[test]
    fn install_refreshes_recency() {
        let mut c = BufferCache::new(2);
        c.access(b(1), ReadWrite::Read);
        c.access(b(2), ReadWrite::Read);
        c.install(b(1)); // 1 becomes MRU without a miss
        c.access(b(3), ReadWrite::Read); // evicts 2
        assert!(c.contains(b(1)));
        assert!(!c.contains(b(2)));
    }

    #[test]
    fn writes_allocate() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(b(7), ReadWrite::Write).is_hit());
        assert!(c.access(b(7), ReadWrite::Read).is_hit());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BufferCache::new(8);
        for i in 0..100 {
            c.access(b(i), ReadWrite::Read);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.capacity(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn hit_rate_zero_before_accesses() {
        assert_eq!(BufferCache::new(1).hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BufferCache::new(0);
    }
}
