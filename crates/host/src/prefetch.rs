//! The UNIX sequential prefetch algorithm (§2.3 of the paper).
//!
//! The file system adapts the number of blocks prefetched to the
//! sequentiality of each file's accesses: sequential reads ramp the
//! window up (doubling per sequential access) to a maximum — 64 KBytes
//! (16 blocks) in Linux — while a random access collapses it to zero.

use std::collections::HashMap;

use forhdc_layout::FileId;

/// Per-file sequential-prefetch state machine.
///
/// # Example
///
/// ```
/// use forhdc_host::SequentialPrefetcher;
/// use forhdc_layout::FileId;
///
/// let mut p = SequentialPrefetcher::new(16);
/// let f = FileId::new(0);
/// assert_eq!(p.on_access(f, 0), 1);  // first access: tentative
/// assert_eq!(p.on_access(f, 1), 2);  // sequential: ramp
/// assert_eq!(p.on_access(f, 2), 4);
/// assert_eq!(p.on_access(f, 40), 0); // random: collapse
/// ```
#[derive(Debug)]
pub struct SequentialPrefetcher {
    max_window: u32,
    state: HashMap<FileId, FileState>,
}

#[derive(Debug, Clone, Copy)]
struct FileState {
    next_offset: u64,
    window: u32,
}

impl SequentialPrefetcher {
    /// Creates a prefetcher with the given maximum window (blocks);
    /// Linux's 64-KByte default is 16 four-KByte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `max_window` is zero.
    pub fn new(max_window: u32) -> Self {
        assert!(max_window > 0, "max window must be positive");
        SequentialPrefetcher {
            max_window,
            state: HashMap::new(),
        }
    }

    /// The maximum window in blocks.
    pub fn max_window(&self) -> u32 {
        self.max_window
    }

    /// Reports an application access to `offset` (blocks) of `file` and
    /// returns how many blocks the OS should prefetch after it.
    ///
    /// Sequential continuation doubles the window (1, 2, 4, … up to the
    /// maximum); anything else resets the file's window.
    pub fn on_access(&mut self, file: FileId, offset: u64) -> u32 {
        let entry = self.state.entry(file).or_insert(FileState {
            next_offset: u64::MAX,
            window: 0,
        });
        if entry.next_offset == offset {
            entry.window = (entry.window.max(1) * 2).min(self.max_window);
        } else if entry.next_offset == u64::MAX {
            // First access to the file: tentative one-block window.
            entry.window = 1;
        } else {
            entry.window = 0;
        }
        entry.next_offset = offset + 1;
        entry.window
    }

    /// Forgets per-file state (e.g. on file close).
    pub fn forget(&mut self, file: FileId) {
        self.state.remove(&file);
    }

    /// Number of files with live prefetch state.
    pub fn tracked_files(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32) -> FileId {
        FileId::new(n)
    }

    #[test]
    fn ramps_to_max_and_saturates() {
        let mut p = SequentialPrefetcher::new(16);
        let mut windows = Vec::new();
        for i in 0..8 {
            windows.push(p.on_access(f(0), i));
        }
        assert_eq!(windows, vec![1, 2, 4, 8, 16, 16, 16, 16]);
    }

    #[test]
    fn random_access_collapses_window() {
        let mut p = SequentialPrefetcher::new(16);
        p.on_access(f(0), 0);
        p.on_access(f(0), 1);
        assert_eq!(p.on_access(f(0), 100), 0);
        // Sequentiality must be re-established from the new position.
        assert_eq!(p.on_access(f(0), 101), 2);
    }

    #[test]
    fn files_are_independent() {
        let mut p = SequentialPrefetcher::new(8);
        p.on_access(f(0), 0);
        p.on_access(f(0), 1);
        assert_eq!(p.on_access(f(1), 0), 1);
        assert_eq!(p.on_access(f(0), 2), 4);
        assert_eq!(p.tracked_files(), 2);
    }

    #[test]
    fn forget_resets_file() {
        let mut p = SequentialPrefetcher::new(8);
        p.on_access(f(0), 0);
        p.on_access(f(0), 1);
        p.forget(f(0));
        assert_eq!(p.on_access(f(0), 2), 1); // treated as first access
    }

    #[test]
    #[should_panic(expected = "max window must be positive")]
    fn zero_window_panics() {
        let _ = SequentialPrefetcher::new(0);
    }
}
