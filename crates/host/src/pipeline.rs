//! The full host cache hierarchy as a trace pipeline.
//!
//! §6.3: "We consider the entire cache hierarchy in our simulations" —
//! the paper's disk logs are what escapes the application and buffer
//! caches of a real kernel. This module reproduces that derivation for
//! generated file-level request streams:
//!
//! ```text
//! file accesses → sequential prefetch → buffer cache → 2-ms coalescing → disk trace
//! ```

use forhdc_layout::{FileId, FileMap};
use forhdc_sim::{ReadWrite, SimDuration, SimTime};
use forhdc_trace::{NullTracer, TraceEvent, Tracer};
use forhdc_workload::Trace;

use crate::buffer_cache::BufferCache;
use crate::coalesce::{coalesce_window, TimedAccess};
use crate::prefetch::SequentialPrefetcher;

/// One application-level file access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAccess {
    /// Issue time.
    pub at: SimTime,
    /// Target file.
    pub file: FileId,
    /// First block offset within the file.
    pub offset: u64,
    /// Blocks touched.
    pub nblocks: u32,
    /// Read or write.
    pub kind: ReadWrite,
}

/// Output of [`derive_disk_trace`]: the disk-level trace plus the
/// hierarchy statistics the paper reports.
#[derive(Debug)]
pub struct DerivedTrace {
    /// The coalesced disk-level trace.
    pub trace: Trace,
    /// Buffer-cache hit rate over demand accesses.
    pub buffer_hit_rate: f64,
    /// Raw (pre-coalescing) disk block accesses.
    pub raw_disk_accesses: usize,
    /// The measured coalescing probability.
    pub coalescing_probability: f64,
}

/// Configuration of the host pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Buffer-cache capacity in blocks (the paper's server has 512 MB
    /// of RAM; a 4-KByte-block cache of ~100 K blocks approximates the
    /// page cache share).
    pub buffer_blocks: u64,
    /// Maximum prefetch window in blocks (Linux: 16 = 64 KB).
    pub max_prefetch_blocks: u32,
    /// Coalescing window (the paper: 2 msecs).
    pub coalesce_window: SimDuration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            buffer_blocks: 100_000,
            max_prefetch_blocks: 16,
            coalesce_window: SimDuration::from_millis(2),
        }
    }
}

/// Runs file-level accesses through prefetch + buffer cache +
/// coalescing and returns the resulting disk-level trace.
///
/// Demand blocks that miss the buffer cache become disk accesses;
/// prefetched blocks that are absent become disk accesses too (charged
/// at the same instant, so they coalesce with the demand miss when
/// contiguous). Accesses must be time-ordered.
///
/// # Example
///
/// ```
/// use forhdc_host::pipeline::{derive_disk_trace, FileAccess, PipelineConfig};
/// use forhdc_layout::{FileId, LayoutBuilder};
/// use forhdc_sim::{ReadWrite, SimTime};
///
/// let layout = LayoutBuilder::new().build(&[8; 10]);
/// let accesses = vec![FileAccess {
///     at: SimTime::ZERO,
///     file: FileId::new(3),
///     offset: 0,
///     nblocks: 8,
///     kind: ReadWrite::Read,
/// }];
/// let out = derive_disk_trace(&accesses, &layout, PipelineConfig::default());
/// assert_eq!(out.trace.total_blocks(), 8); // cold cache: all 8 hit the disk
/// ```
pub fn derive_disk_trace(
    accesses: &[FileAccess],
    layout: &FileMap,
    cfg: PipelineConfig,
) -> DerivedTrace {
    derive_disk_trace_traced(accesses, layout, cfg, &mut NullTracer)
}

/// [`derive_disk_trace`] with a tracer attached: every buffer-cache
/// demand lookup emits a [`TraceEvent::BufferLookup`], stamped with the
/// access's simulated time.
pub fn derive_disk_trace_traced<T: Tracer>(
    accesses: &[FileAccess],
    layout: &FileMap,
    cfg: PipelineConfig,
    tracer: &mut T,
) -> DerivedTrace {
    let mut cache = BufferCache::new(cfg.buffer_blocks);
    let mut prefetcher = SequentialPrefetcher::new(cfg.max_prefetch_blocks);
    let mut disk: Vec<TimedAccess> = Vec::new();
    let mut demand_total = 0u64;
    let mut demand_hits = 0u64;
    // Nanosecond micro-offsets keep emitted accesses strictly ordered
    // within one file access.
    for acc in accesses {
        let mut tick = 0u64;
        let mut emit = |at: SimTime, block, kind, tick: &mut u64| {
            disk.push(TimedAccess {
                at: at + SimDuration::from_nanos(*tick),
                block,
                kind,
            });
            *tick += 1;
        };
        // Demand blocks.
        for i in 0..acc.nblocks as u64 {
            let Some(block) = layout.block_at(acc.file, acc.offset + i) else {
                continue; // access past EOF: ignored, like a short read
            };
            demand_total += 1;
            let hit = cache.access(block, acc.kind).is_hit();
            if tracer.enabled() {
                tracer.emit(TraceEvent::BufferLookup {
                    t: acc.at.as_nanos(),
                    block: block.index(),
                    write: acc.kind.is_write(),
                    hit,
                });
            }
            if hit {
                demand_hits += 1;
            } else {
                emit(acc.at, block, acc.kind, &mut tick);
            }
        }
        // Prefetch window after the access (reads only).
        if acc.kind.is_read() {
            let window = prefetcher.on_access(acc.file, acc.offset + acc.nblocks as u64 - 1);
            for i in 0..window as u64 {
                let off = acc.offset + acc.nblocks as u64 + i;
                let Some(block) = layout.block_at(acc.file, off) else {
                    break;
                };
                if !cache.contains(block) {
                    emit(acc.at, block, ReadWrite::Read, &mut tick);
                    cache.install(block);
                }
            }
        }
    }
    let raw = disk.len();
    let trace = coalesce_window(&disk, cfg.coalesce_window);
    let coalescing_probability = crate::coalesce::coalescing_probability(raw, &trace);
    DerivedTrace {
        trace,
        buffer_hit_rate: if demand_total == 0 {
            0.0
        } else {
            demand_hits as f64 / demand_total as f64
        },
        raw_disk_accesses: raw,
        coalescing_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_layout::LayoutBuilder;

    fn read(at_us: u64, file: u32, offset: u64, n: u32) -> FileAccess {
        FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(at_us),
            file: FileId::new(file),
            offset,
            nblocks: n,
            kind: ReadWrite::Read,
        }
    }

    #[test]
    fn cold_read_coalesces_into_one_request() {
        let layout = LayoutBuilder::new().build(&[8; 4]);
        let out = derive_disk_trace(&[read(0, 1, 0, 8)], &layout, PipelineConfig::default());
        assert_eq!(out.trace.len(), 1);
        assert_eq!(out.trace.requests()[0].nblocks, 8);
        assert_eq!(out.buffer_hit_rate, 0.0);
    }

    #[test]
    fn warm_read_produces_no_disk_traffic() {
        let layout = LayoutBuilder::new().build(&[8; 4]);
        let accesses = vec![read(0, 1, 0, 8), read(10_000, 1, 0, 8)];
        let out = derive_disk_trace(&accesses, &layout, PipelineConfig::default());
        assert_eq!(out.trace.total_blocks(), 8); // only the cold pass
        assert!((out.buffer_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefetch_absorbs_future_demand() {
        let layout = LayoutBuilder::new().build(&[32; 2]);
        // Sequential 1-block reads: prefetch should fetch ahead so later
        // demand blocks hit the buffer cache.
        let accesses: Vec<FileAccess> = (0..32).map(|i| read(i * 1_000, 0, i, 1)).collect();
        let out = derive_disk_trace(&accesses, &layout, PipelineConfig::default());
        assert!(
            out.buffer_hit_rate > 0.5,
            "prefetch should absorb demand: hit rate {}",
            out.buffer_hit_rate
        );
        // Every block still reaches the disk exactly once.
        assert_eq!(out.trace.total_blocks(), 32);
    }

    #[test]
    fn tiny_buffer_cache_thrashes() {
        let layout = LayoutBuilder::new().build(&[4; 100]);
        let cfg = PipelineConfig {
            buffer_blocks: 4,
            ..PipelineConfig::default()
        };
        // Cycle over 50 files twice: nothing survives a 4-block cache.
        let accesses: Vec<FileAccess> = (0..100u64)
            .map(|i| read(i * 1_000, (i % 50) as u32, 0, 4))
            .collect();
        let out = derive_disk_trace(&accesses, &layout, cfg);
        assert!(
            out.buffer_hit_rate < 0.05,
            "hit rate {}",
            out.buffer_hit_rate
        );
        assert!(out.trace.total_blocks() >= 390);
    }

    #[test]
    fn writes_are_not_prefetched() {
        let layout = LayoutBuilder::new().build(&[16; 2]);
        let acc = FileAccess {
            at: SimTime::ZERO,
            file: FileId::new(0),
            offset: 0,
            nblocks: 2,
            kind: ReadWrite::Write,
        };
        let out = derive_disk_trace(&[acc], &layout, PipelineConfig::default());
        assert_eq!(out.trace.total_blocks(), 2); // no read-ahead traffic
    }

    #[test]
    fn traced_derivation_logs_every_demand_lookup() {
        use forhdc_trace::MemTracer;
        let layout = LayoutBuilder::new().build(&[8; 4]);
        let accesses = vec![read(0, 1, 0, 8), read(10_000, 1, 0, 8)];
        let plain = derive_disk_trace(&accesses, &layout, PipelineConfig::default());
        let mut tracer = MemTracer::new();
        let traced =
            derive_disk_trace_traced(&accesses, &layout, PipelineConfig::default(), &mut tracer);
        // The tracer observes without perturbing the derivation.
        assert_eq!(traced.trace.requests(), plain.trace.requests());
        assert_eq!(traced.buffer_hit_rate, plain.buffer_hit_rate);
        let lookups: Vec<bool> = tracer
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BufferLookup { hit, .. } => Some(*hit),
                _ => None,
            })
            .collect();
        assert_eq!(lookups.len(), 16); // one per demand block
        assert!(lookups[..8].iter().all(|&h| !h), "cold pass must miss");
        assert!(lookups[8..].iter().all(|&h| h), "warm pass must hit");
    }

    #[test]
    fn empty_input() {
        let layout = LayoutBuilder::new().build(&[4; 2]);
        let out = derive_disk_trace(&[], &layout, PipelineConfig::default());
        assert!(out.trace.is_empty());
        assert_eq!(out.buffer_hit_rate, 0.0);
        assert_eq!(out.coalescing_probability, 0.0);
    }
}
