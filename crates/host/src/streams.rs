//! The closed-loop stream driver.
//!
//! The paper replays its disk logs "as fast as possible to determine
//! the maximum throughput achievable" (§6.3), bounded by the server's
//! concurrency: 16 helper threads for the Web server, 128 simultaneous
//! requests for proxy and file server. [`StreamDriver`] models exactly
//! that: `S` streams, each working through one *job* (the request
//! sequence of one server-level operation, e.g. a whole-file read) at
//! a time — a job's requests issue sequentially on one stream, the
//! next the moment the previous completes, while different jobs run
//! concurrently across streams.

use forhdc_sim::StreamId;
use forhdc_workload::{Trace, TraceRequest};

/// Hands trace jobs to `S` concurrent streams, closed-loop.
///
/// # Example
///
/// ```
/// use forhdc_host::StreamDriver;
/// use forhdc_sim::{LogicalBlock, ReadWrite};
/// use forhdc_workload::{Trace, TraceRequest};
///
/// let req = TraceRequest { start: LogicalBlock::new(0), nblocks: 1, kind: ReadWrite::Read };
/// // Two jobs of two requests each, replayed by one stream.
/// let trace = Trace::with_jobs(vec![req; 4], vec![2, 2]);
/// let mut d = StreamDriver::new(&trace, 1);
/// let (s, _first) = d.start().pop().unwrap();
/// let (_, _second) = d.complete(s).unwrap(); // same job continues
/// assert_eq!(d.pending_jobs(), 1);
/// ```
#[derive(Debug)]
pub struct StreamDriver {
    // Flat replay state: one copy of the trace's request array plus
    // per-job lengths, with jobs handed out as index ranges. No
    // per-job queue allocations, no request moves after construction.
    requests: Vec<TraceRequest>,
    job_lens: Vec<u32>, // empty = every request is its own job
    job_count: usize,
    next_job: usize,
    next_req: usize,
    cursor: Vec<(usize, usize)>, // per stream: next request, end of its job
    streams: u32,
    in_flight: u32,
    issued: u64,
    completed: u64,
}

impl StreamDriver {
    /// Creates a driver replaying `trace`'s jobs over `streams`
    /// streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(trace: &Trace, streams: u32) -> Self {
        assert!(streams > 0, "need at least one stream");
        StreamDriver {
            requests: trace.requests().to_vec(),
            job_lens: trace.job_lens().to_vec(),
            job_count: trace.job_count(),
            next_job: 0,
            next_req: 0,
            cursor: vec![(0, 0); streams as usize],
            streams,
            in_flight: 0,
            issued: 0,
            completed: 0,
        }
    }

    /// Claims the next unstarted job for `stream`; false when the log
    /// has no jobs left.
    fn take_next_job(&mut self, stream: usize) -> bool {
        if self.next_job >= self.job_count {
            return false;
        }
        let len = match self.job_lens.get(self.next_job) {
            Some(&l) => l as usize,
            None => 1,
        };
        self.cursor[stream] = (self.next_req, self.next_req + len);
        self.next_job += 1;
        self.next_req += len;
        true
    }

    /// Issues the initial batch: up to `S` jobs' first requests.
    /// Call once at simulation start.
    pub fn start(&mut self) -> Vec<(StreamId, TraceRequest)> {
        let mut out = Vec::new();
        for s in 0..self.streams {
            if !self.take_next_job(s as usize) {
                break;
            }
            let (cur, _) = &mut self.cursor[s as usize];
            let req = self.requests[*cur];
            *cur += 1;
            self.in_flight += 1;
            self.issued += 1;
            out.push((StreamId::new(s), req));
        }
        out
    }

    /// Reports that `stream` finished a request; returns that stream's
    /// next request (the rest of its job, else the next job), or `None`
    /// when the log is drained.
    pub fn complete(&mut self, stream: StreamId) -> Option<(StreamId, TraceRequest)> {
        self.completed += 1;
        self.in_flight -= 1;
        let s = stream.as_usize();
        if self.cursor[s].0 == self.cursor[s].1 && !self.take_next_job(s) {
            return None;
        }
        let (cur, _) = &mut self.cursor[s];
        let req = self.requests[*cur];
        *cur += 1;
        self.in_flight += 1;
        self.issued += 1;
        Some((stream, req))
    }

    /// Jobs not yet started.
    pub fn pending_jobs(&self) -> usize {
        self.job_count - self.next_job
    }

    /// Requests currently being serviced.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Whether every request has been issued and completed.
    pub fn is_done(&self) -> bool {
        self.next_job >= self.job_count
            && self.in_flight == 0
            && self.cursor.iter().all(|&(cur, end)| cur == end)
    }

    /// Total requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Configured stream count.
    pub fn streams(&self) -> u32 {
        self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_sim::{LogicalBlock, ReadWrite};

    fn reqs(n: usize) -> Vec<TraceRequest> {
        (0..n)
            .map(|i| TraceRequest {
                start: LogicalBlock::new(i as u64),
                nblocks: 1,
                kind: ReadWrite::Read,
            })
            .collect()
    }

    fn singleton_trace(n: usize) -> Trace {
        Trace::new(reqs(n))
    }

    #[test]
    fn start_issues_at_most_stream_count() {
        let t = singleton_trace(10);
        let mut d = StreamDriver::new(&t, 4);
        let batch = d.start();
        assert_eq!(batch.len(), 4);
        assert_eq!(d.in_flight(), 4);
        assert_eq!(d.pending_jobs(), 6);
    }

    #[test]
    fn fewer_jobs_than_streams() {
        let t = singleton_trace(2);
        let mut d = StreamDriver::new(&t, 8);
        assert_eq!(d.start().len(), 2);
        assert_eq!(d.in_flight(), 2);
    }

    #[test]
    fn job_requests_stay_on_one_stream_in_order() {
        // One job of 3 requests plus a singleton, two streams.
        let trace = Trace::with_jobs(reqs(4), vec![3, 1]);
        let mut d = StreamDriver::new(&trace, 2);
        let batch = d.start();
        assert_eq!(batch.len(), 2);
        let (s0, r0) = batch[0];
        assert_eq!(r0.start, LogicalBlock::new(0));
        // Completing the first request of the job yields the next
        // request of the *same* job on the *same* stream.
        let (s, r1) = d.complete(s0).unwrap();
        assert_eq!(s, s0);
        assert_eq!(r1.start, LogicalBlock::new(1));
        let (_, r2) = d.complete(s0).unwrap();
        assert_eq!(r2.start, LogicalBlock::new(2));
        assert!(d.complete(s0).is_none()); // log drained for this stream
    }

    #[test]
    fn closed_loop_drains_everything() {
        let trace = Trace::with_jobs(reqs(20), vec![2; 10]);
        let mut d = StreamDriver::new(&trace, 3);
        let mut active: Vec<StreamId> = d.start().into_iter().map(|(s, _)| s).collect();
        let mut served = active.len();
        while let Some(s) = active.pop() {
            if let Some((s2, _)) = d.complete(s) {
                served += 1;
                active.push(s2);
            }
        }
        assert_eq!(served, 20);
        assert!(d.is_done());
        assert_eq!(d.issued(), 20);
        assert_eq!(d.completed(), 20);
    }

    #[test]
    fn empty_log_is_done_immediately() {
        let t = singleton_trace(0);
        let mut d = StreamDriver::new(&t, 2);
        assert!(d.start().is_empty());
        assert!(d.is_done());
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _ = StreamDriver::new(&singleton_trace(1), 0);
    }
}
