//! # forhdc-host
//!
//! Host-side models: everything between the application and the disk
//! array.
//!
//! The paper's disk logs are captured *below* the application and
//! file-system buffer caches of an instrumented Linux 2.4.18 kernel
//! (§6.3). This crate models that stack so file-level request streams
//! can be turned into disk-level traces, and so the HDC planner can ask
//! "which blocks cause the most buffer-cache misses":
//!
//! * [`BufferCache`] — an LRU file-system buffer cache with per-block
//!   miss accounting.
//! * [`SequentialPrefetcher`] — the classic UNIX sequential prefetch
//!   ramp (§2.3): the prefetch window grows with detected sequentiality
//!   up to 64 KBytes and collapses on random accesses.
//! * [`coalesce`] — request coalescing: accesses to consecutive blocks
//!   within a 2-msec window merge into one disk request (§6.3).
//! * [`StreamDriver`] — the closed-loop replay engine: `S` concurrent
//!   streams pull requests from the log "as fast as possible" (§6.1).
//! * [`pipeline`] — glue: file-level accesses → prefetch → buffer
//!   cache → coalescing → disk-level [`forhdc_workload::Trace`].

pub mod buffer_cache;
pub mod coalesce;
pub mod pipeline;
pub mod prefetch;
pub mod streams;

pub use buffer_cache::BufferCache;
pub use prefetch::SequentialPrefetcher;
pub use streams::StreamDriver;
