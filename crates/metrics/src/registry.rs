//! The metric primitives and the registry that exposes them.
//!
//! Three instrument kinds, all lock-free on the hot path:
//!
//! - [`Counter`] — a monotonically increasing `u64`, sharded across
//!   cache-line-padded atomics so concurrent connection workers never
//!   bounce one line.
//! - [`Gauge`] — a single signed atomic (inflight ops, queue depths,
//!   resident blocks go up *and* down).
//! - [`AtomicHistogram`] — the atomic twin of
//!   [`forhdc_trace::PowerHistogram`]: one atomic bucket per binary
//!   octave plus sum and max, sharing the exact bucket geometry via
//!   [`PowerHistogram::bucket_index`], so a snapshot is an ordinary
//!   `PowerHistogram` and merges with every other histogram in the
//!   workspace (trace summaries, `loadgen`'s client-side latencies).
//!
//! A [`Registry`] holds named *families* of instruments — optionally
//! labeled, e.g. one counter per `disk` — registered once at startup
//! and rendered on demand as Prometheus text exposition format
//! (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=...}` lines,
//! `_sum` / `_count`). Registration order is preserved, so two renders
//! of the same state are byte-identical.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use forhdc_trace::PowerHistogram;

/// Shards per counter: enough that a handful of connection workers
/// rarely collide, small enough that summing on scrape is trivial.
const COUNTER_SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable round-robin shard slot on first use.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// One cache line of counter state; the padding keeps neighbouring
/// shards from sharing a line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded across padded atomics.
///
/// `add` touches only the calling thread's shard; `get` sums all of
/// them (scrapes are rare, increments are not).
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Overwrites the total with a value collected elsewhere (shard 0
    /// takes it all). For *collector-style* counters whose source of
    /// truth lives behind another structure's lock (the controller's
    /// own hit counters, say) and that are only ever `set_total`, never
    /// `add` — mixing the two on one counter loses increments.
    pub fn set_total(&self, total: u64) {
        self.shards[0].0.store(total, Ordering::Relaxed);
        for s in &self.shards[1..] {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge: a signed value that moves both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The atomic twin of [`PowerHistogram`]: same 64 power-of-two
/// buckets, recorded lock-free. `snapshot()` materializes an ordinary
/// `PowerHistogram`, so anything that merges trace histograms merges
/// these too.
///
/// A concurrent snapshot is not a single atomic cut — counts, sum, and
/// max are read independently — but every individual bucket is exact
/// and monotone, which is all scrape deltas and conservation checks
/// need.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; 64],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        let b = PowerHistogram::bucket_index(value);
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Materializes the current state as a mergeable
    /// [`PowerHistogram`].
    pub fn snapshot(&self) -> PowerHistogram {
        let counts = std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        PowerHistogram::from_parts(
            counts,
            self.sum.load(Ordering::Relaxed) as u128,
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// What a family's instruments are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_tag(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One instrument slot inside a family.
#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

/// A named family: one unlabeled instrument, or one instrument per
/// label value.
#[derive(Debug)]
struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    /// The label name, when the family is labeled.
    label: Option<&'static str>,
    /// `(label value, slot)`; a single `("", slot)` when unlabeled.
    slots: Vec<(String, Slot)>,
}

/// A registry of metric families, rendered as Prometheus text.
///
/// Families are registered once at startup (duplicate names panic —
/// that is a wiring bug, not a runtime condition) and rendered any
/// number of times; the render walks families in registration order.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, family: Family) {
        let mut fams = self.families.lock().expect("registry lock poisoned");
        assert!(
            fams.iter().all(|f| f.name != family.name),
            "duplicate metric family {:?}",
            family.name
        );
        fams.push(family);
    }

    /// Registers an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(Family {
            name,
            help,
            kind: Kind::Counter,
            label: None,
            slots: vec![(String::new(), Slot::Counter(Arc::clone(&c)))],
        });
        c
    }

    /// Registers a labeled counter family, one counter per value.
    pub fn counter_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[String],
    ) -> Vec<Arc<Counter>> {
        let counters: Vec<Arc<Counter>> = values.iter().map(|_| Arc::new(Counter::new())).collect();
        self.register(Family {
            name,
            help,
            kind: Kind::Counter,
            label: Some(label),
            slots: values
                .iter()
                .zip(&counters)
                .map(|(v, c)| (v.clone(), Slot::Counter(Arc::clone(c))))
                .collect(),
        });
        counters
    }

    /// Registers an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(Family {
            name,
            help,
            kind: Kind::Gauge,
            label: None,
            slots: vec![(String::new(), Slot::Gauge(Arc::clone(&g)))],
        });
        g
    }

    /// Registers a labeled gauge family, one gauge per value.
    pub fn gauge_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[String],
    ) -> Vec<Arc<Gauge>> {
        let gauges: Vec<Arc<Gauge>> = values.iter().map(|_| Arc::new(Gauge::new())).collect();
        self.register(Family {
            name,
            help,
            kind: Kind::Gauge,
            label: Some(label),
            slots: values
                .iter()
                .zip(&gauges)
                .map(|(v, g)| (v.clone(), Slot::Gauge(Arc::clone(g))))
                .collect(),
        });
        gauges
    }

    /// Registers an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<AtomicHistogram> {
        let h = Arc::new(AtomicHistogram::new());
        self.register(Family {
            name,
            help,
            kind: Kind::Histogram,
            label: None,
            slots: vec![(String::new(), Slot::Histogram(Arc::clone(&h)))],
        });
        h
    }

    /// Registers a labeled histogram family, one histogram per value.
    pub fn histogram_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[String],
    ) -> Vec<Arc<AtomicHistogram>> {
        let hists: Vec<Arc<AtomicHistogram>> = values
            .iter()
            .map(|_| Arc::new(AtomicHistogram::new()))
            .collect();
        self.register(Family {
            name,
            help,
            kind: Kind::Histogram,
            label: Some(label),
            slots: values
                .iter()
                .zip(&hists)
                .map(|(v, h)| (v.clone(), Slot::Histogram(Arc::clone(h))))
                .collect(),
        });
        hists
    }

    /// Renders every family as Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket` lines for occupied buckets
    /// only (plus the mandatory `+Inf`), with `le` the *inclusive*
    /// upper bound of the power-of-two bucket (`2^(b+1) - 1`), so a
    /// scrape reconstructs the exact [`PowerHistogram`] bucket counts.
    pub fn render(&self) -> String {
        let fams = self.families.lock().expect("registry lock poisoned");
        let mut out = String::with_capacity(4096);
        for f in fams.iter() {
            out.push_str("# HELP ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(f.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(f.kind.type_tag());
            out.push('\n');
            for (value, slot) in &f.slots {
                let label = f.label.map(|l| (l, value.as_str()));
                match slot {
                    Slot::Counter(c) => {
                        push_sample(&mut out, f.name, "", label, None, &c.get().to_string())
                    }
                    Slot::Gauge(g) => {
                        push_sample(&mut out, f.name, "", label, None, &g.get().to_string())
                    }
                    Slot::Histogram(h) => render_histogram(&mut out, f.name, label, &h.snapshot()),
                }
            }
        }
        out
    }
}

/// Appends one sample line: `name[suffix]{labels} value`.
fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    label: Option<(&str, &str)>,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if label.is_some() || le.is_some() {
        out.push('{');
        let mut first = true;
        if let Some((k, v)) = label {
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
            first = false;
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    snap: &PowerHistogram,
) {
    let mut cumulative = 0u64;
    for (b, &c) in snap.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        // Inclusive upper bound of bucket b: 2^(b+1) - 1 (bucket 63
        // saturates at u64::MAX rather than wrapping to 0).
        let le = if b >= 63 {
            u64::MAX
        } else {
            (1u64 << (b + 1)) - 1
        };
        push_sample(
            out,
            name,
            "_bucket",
            label,
            Some(&le.to_string()),
            &cumulative.to_string(),
        );
    }
    push_sample(
        out,
        name,
        "_bucket",
        label,
        Some("+Inf"),
        &cumulative.to_string(),
    );
    push_sample(out, name, "_sum", label, None, &snap.sum().to_string());
    push_sample(out, name, "_count", label, None, &snap.count().to_string());
}

/// Turns `le` text from a rendered bucket line back into its bucket
/// index: `le = 2^(b+1) - 1` (with `+Inf` and the saturated top bucket
/// handled by the caller).
pub(crate) fn bucket_of_le(le: u64) -> Option<usize> {
    if le == u64::MAX {
        return Some(63);
    }
    let up = le.checked_add(1)?;
    if !up.is_power_of_two() || up < 2 {
        return None;
    }
    Some(up.trailing_zeros() as usize - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        c.add(5);
        assert_eq!(c.get(), 80_005);
    }

    #[test]
    fn collector_counter_set_total_overwrites() {
        let c = Counter::new();
        c.set_total(42);
        assert_eq!(c.get(), 42);
        c.set_total(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
        g.add(10);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_power_histogram() {
        let ah = AtomicHistogram::new();
        let mut ph = PowerHistogram::new();
        for v in [0u64, 1, 2, 3, 1000, 65_535, 1 << 40] {
            ah.record(v);
            ph.record(v);
        }
        assert_eq!(ah.snapshot(), ph);
        assert_eq!(ah.count(), ph.count());
        // Snapshots merge like any other PowerHistogram.
        let mut merged = ah.snapshot();
        merged.merge(&ph);
        assert_eq!(merged.count(), 14);
    }

    #[test]
    fn concurrent_histogram_records_conserve_count() {
        let ah = Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let ah = Arc::clone(&ah);
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    ah.record(t * 1_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ah.snapshot().count(), 20_000);
    }

    #[test]
    fn render_covers_all_kinds_and_labels() {
        let r = Registry::new();
        let c = r.counter("t_reqs_total", "requests");
        let disks = vec!["0".to_string(), "1".to_string()];
        let cv = r.counter_vec("t_disk_ops_total", "ops per disk", "disk", &disks);
        let g = r.gauge("t_inflight", "inflight ops");
        let hv = r.histogram_vec("t_latency_ns", "latency", "disk", &disks);
        c.add(3);
        cv[1].add(9);
        g.set(2);
        hv[0].record(5);
        hv[0].record(100);
        let text = r.render();
        for needle in [
            "# HELP t_reqs_total requests",
            "# TYPE t_reqs_total counter",
            "t_reqs_total 3",
            "t_disk_ops_total{disk=\"0\"} 0",
            "t_disk_ops_total{disk=\"1\"} 9",
            "# TYPE t_inflight gauge",
            "t_inflight 2",
            "# TYPE t_latency_ns histogram",
            "t_latency_ns_bucket{disk=\"0\",le=\"7\"} 1",
            "t_latency_ns_bucket{disk=\"0\",le=\"127\"} 2",
            "t_latency_ns_bucket{disk=\"0\",le=\"+Inf\"} 2",
            "t_latency_ns_sum{disk=\"0\"} 105",
            "t_latency_ns_count{disk=\"0\"} 2",
            "t_latency_ns_bucket{disk=\"1\",le=\"+Inf\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn render_is_deterministic() {
        let r = Registry::new();
        let c = r.counter("t_a_total", "a");
        let h = r.histogram("t_h_ns", "h");
        c.add(1);
        h.record(77);
        assert_eq!(r.render(), r.render());
    }

    #[test]
    fn duplicate_family_name_panics() {
        let r = Registry::new();
        let _c = r.counter("t_dup_total", "first");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _d = r.counter("t_dup_total", "second");
        }));
        assert!(res.is_err());
    }

    #[test]
    fn le_round_trips_bucket_index() {
        for b in 0..63usize {
            let le = (1u64 << (b + 1)) - 1;
            assert_eq!(bucket_of_le(le), Some(b));
        }
        assert_eq!(bucket_of_le(u64::MAX), Some(63));
        assert_eq!(bucket_of_le(4), None);
        assert_eq!(bucket_of_le(0), None);
    }
}
