//! The crash flight recorder: a bounded ring of recent
//! request-lifecycle events.
//!
//! Post-mortems of a live server want the *last N* events — who was
//! inflight, what the controllers decided, how long the media took —
//! without paying for always-on tracing. The recorder keeps a fixed
//! number of [`TraceEvent`]s per worker shard (old events fall off the
//! front), reusing the simulator's trace schema so a dump is plain
//! JSONL that `forhdc_trace::parse_jsonl` and the `trace` binary read
//! unchanged. Timestamps are wall-clock nanoseconds since server
//! start — the serving path has no simulated clock — and a global
//! sequence number breaks ties so dumps interleave shards in true
//! emission order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use forhdc_trace::{write_jsonl, TraceEvent};

static NEXT_FLIGHT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin shard assignment, one slot per recording thread.
    static FLIGHT_SLOT: usize = NEXT_FLIGHT_SLOT.fetch_add(1, Ordering::Relaxed);
}

struct Ring {
    events: VecDeque<(u64, TraceEvent)>,
}

/// A fixed-capacity, sharded ring of recent trace events.
pub struct FlightRecorder {
    shards: Vec<Mutex<Ring>>,
    capacity: usize,
    seq: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder of `shards` rings holding `capacity` events each.
    /// Memory is bounded at `shards * capacity` events forever.
    pub fn new(shards: usize, capacity: usize) -> Self {
        FlightRecorder {
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(Ring {
                        events: VecDeque::with_capacity(capacity.min(4096)),
                    })
                })
                .collect(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
        }
    }

    /// Records one event into the calling worker's shard, evicting the
    /// oldest event once the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = FLIGHT_SLOT.with(|s| *s) % self.shards.len();
        let mut ring = self.shards[slot].lock().expect("flight shard poisoned");
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back((seq, ev));
    }

    /// Events recorded over the recorder's lifetime (retained or not).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("flight shard poisoned").events.len())
            .sum()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every shard and returns the retained events in global
    /// emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().expect("flight shard poisoned");
            all.extend(ring.events.iter().copied());
        }
        all.sort_by_key(|&(seq, _)| seq);
        all.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Renders the retained events as a JSONL document parseable by
    /// [`forhdc_trace::parse_jsonl`].
    pub fn dump_jsonl(&self) -> String {
        write_jsonl(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_trace::parse_jsonl;

    fn done(t: u64, req: u64) -> TraceEvent {
        TraceEvent::Complete {
            t,
            req,
            response: t,
        }
    }

    #[test]
    fn retains_last_n_in_order() {
        let fr = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            fr.record(done(i, i));
        }
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.len(), 4);
        let evs = fr.events();
        let reqs: Vec<u64> = evs.iter().filter_map(|e| e.req()).collect();
        assert_eq!(reqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_round_trips_through_the_trace_parser() {
        let fr = FlightRecorder::new(4, 16);
        fr.record(TraceEvent::Issue {
            t: 1,
            req: 7,
            stream: 3,
            start: 24,
            nblocks: 8,
            write: false,
        });
        fr.record(TraceEvent::Probe {
            t: 2,
            req: 7,
            disk: 1,
            nblocks: 8,
            result: forhdc_trace::ProbeResult::Miss,
        });
        fr.record(TraceEvent::Media {
            t: 3,
            req: 7,
            disk: 1,
            wait: 0,
            seek: 0,
            rotation: 0,
            transfer: 1200,
            overhead: 0,
            nblocks: 16,
            read_ahead: 8,
            write: false,
        });
        fr.record(done(5, 7));
        let dump = fr.dump_jsonl();
        let parsed = parse_jsonl(&dump).expect("dump must parse");
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed, fr.events());
    }

    #[test]
    fn concurrent_recording_is_bounded_and_ordered() {
        let fr = std::sync::Arc::new(FlightRecorder::new(4, 64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let fr = std::sync::Arc::clone(&fr);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    fr.record(done(i, t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fr.recorded(), 4000);
        assert!(fr.len() <= 4 * 64);
        // Dump is sorted by global sequence: strictly increasing seqs
        // means parse order equals emission order.
        let dump = fr.dump_jsonl();
        assert_eq!(parse_jsonl(&dump).unwrap().len(), fr.len());
    }

    #[test]
    fn empty_recorder_dumps_empty_document() {
        let fr = FlightRecorder::new(2, 8);
        assert!(fr.is_empty());
        assert_eq!(fr.dump_jsonl(), "");
        assert!(parse_jsonl(&fr.dump_jsonl()).unwrap().is_empty());
    }
}
