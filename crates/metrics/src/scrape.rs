//! Parsing the Prometheus text this crate renders.
//!
//! `loadgen --scrape` (and the e2e tests) read the server's exposition
//! back over the wire and fold the server-side distributions into the
//! client-side report. The parser covers exactly the subset
//! [`crate::Registry::render`] emits — flat sample lines, simple
//! quoted label values, cumulative histogram buckets with
//! power-of-two-aligned `le` bounds — which keeps it a few dozen lines
//! and dependency-free rather than a general OpenMetrics parser.

use forhdc_trace::PowerHistogram;

use crate::registry::bucket_of_le;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value (integers in our output, but Prometheus allows
    /// floats).
    pub value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the sample carries every `(key, value)` pair in `want`
    /// (extra labels such as `le` are allowed).
    fn matches(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|&(k, v)| self.label(k) == Some(v))
    }
}

/// A parsed scrape: every sample line of one exposition document.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Samples in document order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// Parses one text exposition document.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and cause of the first
    /// malformed sample line (comment and blank lines are skipped).
    pub fn parse(text: &str) -> Result<Scrape, String> {
        let mut samples = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(Scrape { samples })
    }

    /// The value of the first sample matching `name` and all of
    /// `labels`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.matches(labels))
            .map(|s| s.value)
    }

    /// [`Scrape::value`] truncated to a `u64` counter reading.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.value(name, labels).map(|v| v as u64)
    }

    /// Reconstructs the [`PowerHistogram`] of the family `name` with
    /// the given labels from its `_bucket`/`_sum` lines.
    ///
    /// The exposition format carries no exact maximum, so the rebuilt
    /// histogram's `max()` is the highest occupied bucket's lower
    /// bound — a conservative (never above the true max) stand-in
    /// consistent with the bucket-floor quantile semantics.
    ///
    /// Returns `None` when the family (or its `+Inf` bucket) is
    /// absent; a malformed `le` bound is an error.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Option<PowerHistogram>, String> {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative: Vec<(usize, u64)> = Vec::new();
        let mut saw_inf = false;
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            if !s.matches(labels) {
                continue;
            }
            let le = s
                .label("le")
                .ok_or_else(|| format!("{bucket_name}: bucket line without le"))?;
            if le == "+Inf" {
                saw_inf = true;
                continue;
            }
            let le: u64 = le
                .parse()
                .map_err(|_| format!("{bucket_name}: non-integer le {le:?}"))?;
            let b = bucket_of_le(le)
                .ok_or_else(|| format!("{bucket_name}: le {le} is not a power-of-two bound"))?;
            cumulative.push((b, s.value as u64));
        }
        if !saw_inf {
            return Ok(None);
        }
        let mut counts = [0u64; 64];
        let mut prev = 0u64;
        for (b, cum) in cumulative {
            counts[b] = cum.saturating_sub(prev);
            prev = cum;
        }
        let sum = self
            .value(&format!("{name}_sum"), labels)
            .map(|v| v as u128)
            .unwrap_or(0);
        let max = counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(b, _)| if b == 0 { 0 } else { 1u64 << b })
            .unwrap_or(0);
        Ok(Some(PowerHistogram::from_parts(counts, sum, max)))
    }
}

/// Subtracts an earlier histogram snapshot from a later one of the
/// same family, bucket by bucket — the per-window distribution between
/// two scrapes of a monotonically growing histogram. The window's max
/// is unknowable from buckets alone, so the delta's `max()` falls back
/// to its own highest occupied bucket's lower bound.
pub fn histogram_delta(later: &PowerHistogram, earlier: &PowerHistogram) -> PowerHistogram {
    let mut counts = [0u64; 64];
    let lc = later.bucket_counts();
    let ec = earlier.bucket_counts();
    for b in 0..64 {
        counts[b] = lc[b].saturating_sub(ec[b]);
    }
    let sum = later.sum().saturating_sub(earlier.sum());
    let max = counts
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &c)| c > 0)
        .map(|(b, _)| if b == 0 { 0 } else { 1u64 << b })
        .unwrap_or(0);
    PowerHistogram::from_parts(counts, sum, max)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // name{k="v",...} value   |   name value
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad value {value:?} in {line:?}"))?;
    let (name, labels) = match head.split_once('{') {
        None => (head.trim().to_string(), Vec::new()),
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels in {line:?}"))?;
            let mut labels = Vec::new();
            for pair in inner.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label {pair:?} in {line:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {v:?} in {line:?}"))?;
                labels.push((k.trim().to_string(), v.to_string()));
            }
            (name.trim().to_string(), labels)
        }
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let text = "\
# HELP x_total things
# TYPE x_total counter
x_total 41
y_ops{disk=\"2\"} 7
z_rate 1.5
";
        let s = Scrape::parse(text).unwrap();
        assert_eq!(s.counter("x_total", &[]), Some(41));
        assert_eq!(s.counter("y_ops", &[("disk", "2")]), Some(7));
        assert_eq!(s.counter("y_ops", &[("disk", "0")]), None);
        assert_eq!(s.value("z_rate", &[]), Some(1.5));
    }

    #[test]
    fn malformed_lines_are_errors_with_line_numbers() {
        assert!(Scrape::parse("novaluehere").unwrap_err().contains("line 1"));
        assert!(Scrape::parse("x{k=\"v\" 3").unwrap_err().contains("line 1"));
        assert!(Scrape::parse("ok 1\nx nan3")
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn histogram_round_trips_through_render_and_parse() {
        let r = Registry::new();
        let disks = vec!["0".to_string(), "1".to_string()];
        let hv = r.histogram_vec("t_svc_ns", "service", "disk", &disks);
        let mut want = PowerHistogram::new();
        for v in [3u64, 3, 90, 4096, 4097, 1_000_000] {
            hv[1].record(v);
            want.record(v);
        }
        let scrape = Scrape::parse(&r.render()).unwrap();
        let got = scrape
            .histogram("t_svc_ns", &[("disk", "1")])
            .unwrap()
            .expect("family present");
        assert_eq!(got.bucket_counts(), want.bucket_counts());
        assert_eq!(got.count(), want.count());
        assert_eq!(got.sum(), want.sum());
        // The exact max is lost in transit; the stand-in is the top
        // occupied bucket's lower bound, never above the true max.
        assert!(got.max() <= want.max());
        assert_eq!(got.p50(), want.p50());
        assert_eq!(got.p99(), want.p99());
        // The empty sibling parses as an empty histogram.
        let empty = scrape
            .histogram("t_svc_ns", &[("disk", "0")])
            .unwrap()
            .expect("family present");
        assert!(empty.is_empty());
        // A family that was never rendered is None.
        assert!(scrape.histogram("t_nope_ns", &[]).unwrap().is_none());
    }

    #[test]
    fn histogram_delta_isolates_a_window() {
        let mut early = PowerHistogram::new();
        let mut late = PowerHistogram::new();
        for v in [10u64, 20, 30] {
            early.record(v);
            late.record(v);
        }
        let mut window_only = PowerHistogram::new();
        for v in [100u64, 5000, 70_000] {
            late.record(v);
            window_only.record(v);
        }
        let delta = histogram_delta(&late, &early);
        assert_eq!(delta.bucket_counts(), window_only.bucket_counts());
        assert_eq!(delta.count(), 3);
        assert_eq!(delta.sum(), window_only.sum());
        // Delta against itself is empty.
        assert!(histogram_delta(&early, &early).is_empty());
    }
}
