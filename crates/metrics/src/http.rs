//! Just enough HTTP/1.1 for a metrics endpoint.
//!
//! A Prometheus scrape is a `GET /metrics` and a text body back; the
//! workspace builds fully offline, so rather than an HTTP dependency
//! this module implements the four things a scrape needs: read a
//! request head, extract the path, write a `200` (or `404`) with a
//! `Content-Length`, and a tiny blocking client for tests and
//! `loadgen`. Anything fancier (chunked bodies, keep-alive pipelines)
//! is deliberately out of scope — `curl` and Prometheus both speak
//! this subset happily.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The Prometheus text exposition content type.
pub const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Reads one request head off `r` and returns the request path
/// (`GET /metrics HTTP/1.1` → `/metrics`). Returns `Ok(None)` on a
/// clean immediate EOF (the peer connected and left).
///
/// # Errors
///
/// Returns a description of a malformed request line or transport
/// failure.
pub fn read_request_path<R: BufRead>(r: &mut R) -> Result<Option<String>, String> {
    let mut line = String::new();
    match r.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("reading request line: {e}")),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line {line:?}"));
    }
    // Drain headers until the blank line; the GETs we serve have no
    // body.
    loop {
        let mut header = String::new();
        match r.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(e) => return Err(format!("reading headers: {e}")),
        }
    }
    Ok(Some(path.to_string()))
}

/// Writes one complete response with a `Content-Length` and closes the
/// exchange (`Connection: close`).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Blocking GET of `path` from `addr`, returning the body of a `200`.
///
/// # Errors
///
/// Returns a description of connection failures, non-200 statuses, or
/// short bodies.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        w,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;
    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        match r.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {
                if let Some((k, v)) = header.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        content_length = v.trim().parse().ok();
                    }
                }
            }
            Err(e) => return Err(format!("read headers: {e}")),
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            r.read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            r.read_to_string(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
    };
    if status != 200 {
        return Err(format!("HTTP {status}: {body}"));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::TcpListener;

    #[test]
    fn request_path_parses_and_drains_headers() {
        let raw = "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let mut r = std::io::BufReader::new(Cursor::new(raw));
        assert_eq!(
            read_request_path(&mut r).unwrap(),
            Some("/metrics".to_string())
        );
        // Immediate EOF is a clean None.
        let mut empty = std::io::BufReader::new(Cursor::new(""));
        assert_eq!(read_request_path(&mut empty).unwrap(), None);
        // Garbage is an error.
        let mut bad = std::io::BufReader::new(Cursor::new("\r\n"));
        assert!(read_request_path(&mut bad).is_err());
    }

    #[test]
    fn response_carries_length_and_body() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "OK", CONTENT_TYPE_METRICS, "x_total 1\n").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 10\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nx_total 1\n"), "{text}");
    }

    #[test]
    fn get_round_trips_against_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let path = read_request_path(&mut r).unwrap().unwrap();
            let mut w = stream;
            if path == "/metrics" {
                write_response(&mut w, 200, "OK", CONTENT_TYPE_METRICS, "up 1\n").unwrap();
            } else {
                write_response(&mut w, 404, "Not Found", "text/plain", "no\n").unwrap();
            }
        });
        let body = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!(body, "up 1\n");
        server.join().unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let _ = read_request_path(&mut r).unwrap();
            let mut w = stream;
            write_response(&mut w, 404, "Not Found", "text/plain", "no\n").unwrap();
        });
        let err = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap_err();
        assert!(err.contains("404"), "{err}");
        server.join().unwrap();
    }
}
