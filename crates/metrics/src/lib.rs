//! # forhdc-metrics
//!
//! Live telemetry for the serving front-end (DESIGN.md §6.8).
//! Dependency-free beyond `forhdc-trace`, whose power-of-two
//! [`PowerHistogram`](forhdc_trace::PowerHistogram) supplies the one
//! bucket geometry every distribution in the workspace shares — so a
//! histogram recorded here, snapshotted, scraped over HTTP, and
//! re-parsed on the client merges losslessly with the client's own.
//!
//! Four pieces:
//!
//! - [`registry`] — sharded-atomic [`Counter`]/[`Gauge`]/
//!   [`AtomicHistogram`] instruments, grouped into labeled families in
//!   a [`Registry`] that renders Prometheus text exposition format.
//! - [`flight`] — the [`FlightRecorder`]: a bounded ring of recent
//!   request-lifecycle [`TraceEvent`](forhdc_trace::TraceEvent)s per
//!   worker, dumped as JSONL the existing trace tooling parses.
//! - [`scrape`] — the matching text parser: samples, counters, and
//!   exact histogram reconstruction ([`Scrape`]), plus
//!   [`histogram_delta`] for windowed (between-two-scrapes)
//!   distributions.
//! - [`http`] — a minimal HTTP request/response layer and blocking
//!   GET client, enough for `curl`, Prometheus, and `loadgen`.
//!
//! The simulator never links this crate: metrics live on the
//! wall-clock serving path only, and the zero-cost facade rules of the
//! simulation (`NullTracer`/`NoFaults`/`NoChecks`) are untouched.

pub mod flight;
pub mod http;
pub mod registry;
pub mod scrape;

pub use flight::FlightRecorder;
pub use registry::{AtomicHistogram, Counter, Gauge, Registry};
pub use scrape::{histogram_delta, Sample, Scrape};

use std::sync::Mutex;
use std::time::Instant;

/// Tracks counter readings between scrapes and turns them into
/// windowed rates, so successive scrapes of monotone totals yield
/// RPS/MBps-style deltas without the server keeping any per-window
/// state of its own.
///
/// `observe` takes the current readings of a fixed set of counters (in
/// a caller-chosen order) and returns the seconds since the previous
/// observation plus each counter's per-second rate over that window —
/// `None` on the first observation, when there is no window yet.
#[derive(Debug, Default)]
pub struct RateWindow {
    last: Mutex<Option<(Instant, Vec<u64>)>>,
}

impl RateWindow {
    /// A tracker with no prior observation.
    pub fn new() -> Self {
        RateWindow::default()
    }

    /// Records `values` now and returns `(window seconds, rates)`
    /// against the previous observation, if any.
    pub fn observe(&self, values: &[u64]) -> Option<(f64, Vec<f64>)> {
        let now = Instant::now();
        let mut last = self.last.lock().expect("rate window lock poisoned");
        let prev = last.replace((now, values.to_vec()));
        let (t0, prev_values) = prev?;
        let secs = now.duration_since(t0).as_secs_f64();
        if prev_values.len() != values.len() || secs <= 0.0 {
            return None;
        }
        let rates = values
            .iter()
            .zip(&prev_values)
            .map(|(&cur, &old)| cur.saturating_sub(old) as f64 / secs)
            .collect();
        Some((secs, rates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_has_no_window() {
        let rw = RateWindow::new();
        assert!(rw.observe(&[10, 20]).is_none());
        let (secs, rates) = rw.observe(&[110, 40]).expect("second observation");
        assert!(secs > 0.0);
        assert_eq!(rates.len(), 2);
        // 100 and 20 increments over the (tiny) window: rates are
        // positive and proportional.
        assert!(rates[0] > rates[1]);
    }

    #[test]
    fn counter_reset_clamps_to_zero_rate() {
        let rw = RateWindow::new();
        assert!(rw.observe(&[1000]).is_none());
        let (_, rates) = rw.observe(&[1]).expect("window");
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn shape_mismatch_is_none_but_resets_baseline() {
        let rw = RateWindow::new();
        assert!(rw.observe(&[1]).is_none());
        assert!(rw.observe(&[1, 2]).is_none());
        assert!(rw.observe(&[2, 4]).is_some());
    }
}
