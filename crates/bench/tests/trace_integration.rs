//! End-to-end tracing determinism: a traced run must not change the
//! experiment's results, and its trace files must be byte-identical
//! between a serial and a parallel run — the property the CI trace
//! smoke checks with `diff -r`.

use std::path::{Path, PathBuf};

use forhdc_bench::{experiments, tracefs, RunOptions};
use forhdc_runner::Runner;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_trace_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// `RunOptions.trace_dir` is `&'static str` so the options stay
/// `Copy`; tests leak their two short-lived paths just like the
/// binary leaks its one CLI argument.
fn leak(p: &Path) -> &'static str {
    Box::leak(p.display().to_string().into_boxed_str())
}

fn quick(trace_dir: Option<&'static str>) -> RunOptions {
    RunOptions {
        scale: 0.02,
        synthetic_requests: 300,
        trace_dir,
        ..RunOptions::default()
    }
}

#[test]
fn traced_runs_match_untraced_and_are_deterministic_across_jobs() {
    let id = "fig3";
    let d1 = tmpdir("serial");
    let d2 = tmpdir("parallel");

    let untraced = experiments::plan(id, quick(None))
        .expect("fig3 has a plan")
        .run_serial();
    let serial = experiments::plan(id, quick(Some(leak(&d1))))
        .expect("plan")
        .run_serial();
    let runner = Runner::new(2).quiet(true);
    let (parallel, stats) = experiments::plan(id, quick(Some(leak(&d2))))
        .expect("plan")
        .run_with(&runner);
    let parallel = parallel.expect("no failures");
    assert!(stats.jobs > 1, "{id} must decompose into multiple jobs");

    // Tracing must never perturb the simulation.
    assert_eq!(
        untraced.to_csv(),
        serial.to_csv(),
        "a traced run must produce the same table as an untraced one"
    );
    assert_eq!(serial.to_csv(), parallel.to_csv());

    // Every point file must be byte-identical between --jobs 1 and 2.
    let f1 = tracefs::point_files(&d1.join(id)).expect("serial trace dir");
    let f2 = tracefs::point_files(&d2.join(id)).expect("parallel trace dir");
    assert_eq!(f1.len(), stats.jobs, "one trace file per job");
    assert_eq!(f1.len(), f2.len());
    for (a, b) in f1.iter().zip(&f2) {
        assert_eq!(a.file_name(), b.file_name());
        let (ba, bb) = (std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
        assert!(!ba.is_empty(), "{} must not be empty", a.display());
        assert_eq!(
            ba,
            bb,
            "{} differs between serial and parallel",
            a.display()
        );
    }

    // The merged digest parses back and its percentiles are ordered.
    let summary = tracefs::summarize_dir(&d1.join(id)).expect("summarize");
    assert_eq!(summary.files, f1.len());
    assert!(summary.requests > 0);
    assert!(
        summary.phases.iter().any(|p| p.name == "response"),
        "every completed request records a response phase"
    );
    for p in &summary.phases {
        assert!(
            p.count > 0 && p.p50_ns <= p.p95_ns && p.p95_ns <= p.p99_ns && p.p99_ns <= p.max_ns,
            "unordered percentiles in {}: {p:?}",
            p.name
        );
    }

    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

mod cli {
    use std::process::Command;

    fn trace() -> Command {
        Command::new(env!("CARGO_BIN_EXE_trace"))
    }

    /// Every bad input is a clean diagnostic, never a panic: a missing
    /// directory operand and a malformed `--top` are usage errors
    /// (exit 2), a directory with no trace files is a runtime error
    /// (exit 1).
    #[test]
    fn bad_input_fails_cleanly() {
        let out = trace().output().expect("spawn trace");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("no trace directory given"));

        let out = trace()
            .args([".", "--top", "several"])
            .output()
            .expect("spawn trace");
        assert_eq!(out.status.code(), Some(2));

        let empty = super::tmpdir("cli_empty");
        std::fs::create_dir_all(&empty).unwrap();
        let out = trace().arg(&empty).output().expect("spawn trace");
        assert_eq!(out.status.code(), Some(1));
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("no .jsonl trace files"));
        let _ = std::fs::remove_dir_all(&empty);
    }
}
