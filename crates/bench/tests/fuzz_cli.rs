//! CLI surface of the fuzz/replay subcommands and checked mode: bad
//! input must exit 2 with a usage diagnostic, a clean fuzz run must
//! exit 0, replay semantics must match the documented contract
//! (exit 0 = reproduced, 1 = passes now, 2 = unreadable), and
//! `--check` must not change a single output byte.

use std::path::PathBuf;
use std::process::Command;

use forhdc_bench::fuzz::FuzzCase;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_fuzz_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Bad fuzz arguments are usage errors: exit 2, diagnostic on stderr.
#[test]
fn fuzz_bad_arguments_exit_2() {
    for (args, needle) in [
        (vec!["fuzz", "--iters", "0"], "positive integer"),
        (vec!["fuzz", "--iters", "many"], "positive integer"),
        (vec!["fuzz", "--seed", "x"], "unsigned integer"),
        (vec!["fuzz", "--out"], "needs a directory"),
        (vec!["fuzz", "--bogus"], "unknown fuzz argument"),
    ] {
        let out = repro().args(&args).output().expect("spawn repro");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(stderr.contains("usage: repro"), "{args:?}: {stderr}");
    }
}

/// A short healthy fuzz run exits 0 and reports itself clean.
#[test]
fn short_fuzz_run_is_clean() {
    let dir = tmpdir("clean");
    let out = repro()
        .args(["fuzz", "--iters", "3", "--seed", "1", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("3 iteration(s) clean"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay argument errors: missing file operand and unreadable or
/// malformed reproducers all exit 2 without panicking.
#[test]
fn replay_bad_input_exits_2() {
    let out = repro().arg("replay").output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("exactly one reproducer file"));

    let out = repro()
        .args(["replay", "/nonexistent/case.json"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("error:"));

    let dir = tmpdir("malformed");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"seed\": \"not a number\"}").unwrap();
    let out = repro().arg("replay").arg(&bad).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("error:"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The documented replay exit codes: a reproducer holding a planted
/// violation exits 0 ("reproduced"), the same case with the plant
/// removed exits 1 ("did not reproduce").
#[test]
fn replay_distinguishes_reproduced_from_passing() {
    let dir = tmpdir("replay");

    let bad = dir.join("violating.json");
    std::fs::write(&bad, FuzzCase::planted().to_json()).unwrap();
    let out = repro().arg("replay").arg(&bad).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0), "planted case must reproduce");
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("reproduced"));

    let mut healthy = FuzzCase::planted();
    healthy.planted_violation = 0;
    let good = dir.join("healthy.json");
    std::fs::write(&good, healthy.to_json()).unwrap();
    let out = repro().arg("replay").arg(&good).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1), "healthy case must pass");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("did not reproduce"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--check` runs every simulation under the full auditor and must
/// leave the written CSV byte-identical to the unchecked run.
#[test]
fn checked_mode_output_is_byte_identical() {
    let plain = tmpdir("plain");
    let checked = tmpdir("checked");
    for (dir, extra) in [(&plain, None), (&checked, Some("--check"))] {
        let mut cmd = repro();
        cmd.args(["fig4", "--requests", "200", "--scale", "0.02", "--no-cache"])
            .arg("--out")
            .arg(dir);
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.output().expect("spawn repro");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read(plain.join("fig4.csv")).expect("plain csv");
    let b = std::fs::read(checked.join("fig4.csv")).expect("checked csv");
    assert_eq!(a, b, "--check must not perturb the simulation");
    let _ = std::fs::remove_dir_all(&plain);
    let _ = std::fs::remove_dir_all(&checked);
}
