//! Cross-crate integration: forhdc-bench experiment plans executed by
//! the forhdc-runner pool must reproduce the serial output byte for
//! byte, and the result cache must make re-runs free without changing
//! a byte either.

use std::path::PathBuf;

use forhdc_bench::{experiments, RunOptions};
use forhdc_runner::Runner;

fn quick() -> RunOptions {
    RunOptions {
        scale: 0.02,
        synthetic_requests: 300,
        ..RunOptions::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_bench_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One synthetic sweep (fig4) and one server sweep (fig8): a parallel
/// run with 4 workers must produce byte-identical CSV to the serial
/// path.
#[test]
fn parallel_tables_are_byte_identical_to_serial() {
    for id in ["fig4", "fig8"] {
        let serial = experiments::plan(id, quick())
            .expect("sweep has a plan")
            .run_serial();
        let runner = Runner::new(4).quiet(true);
        let (parallel, stats) = experiments::plan(id, quick())
            .expect("plan")
            .run_with(&runner);
        assert!(stats.jobs > 1, "{id} must decompose into multiple jobs");
        assert_eq!(
            serial.to_csv(),
            parallel.expect("no failures").to_csv(),
            "{id}: --jobs 4 output must be byte-identical to serial"
        );
    }
}

/// A second run over a warm cache must execute zero jobs and still
/// produce byte-identical output.
#[test]
fn cached_rerun_is_free_and_identical() {
    let dir = tmpdir("cache");
    let id = "fig4";

    let cold = Runner::new(4).quiet(true).cache_dir(&dir);
    let (first, first_stats) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&cold);
    let first = first.expect("no failures");
    assert_eq!(first_stats.cache_hits, 0, "cold cache must miss everywhere");

    let warm = Runner::new(4).quiet(true).cache_dir(&dir);
    let (second, second_stats) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&warm);
    let second = second.expect("no failures");
    assert_eq!(
        second_stats.cache_hits, second_stats.jobs,
        "warm cache must hit on every job"
    );
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "cached output must be byte-identical"
    );

    // Different options must not hit the same entries.
    let other_opts = RunOptions {
        scale: 0.02,
        synthetic_requests: 301,
        ..RunOptions::default()
    };
    let third = Runner::new(1).quiet(true).cache_dir(&dir);
    let (_, third_stats) = experiments::plan(id, other_opts)
        .expect("plan")
        .run_with(&third);
    assert_eq!(
        third_stats.cache_hits, 0,
        "changed options must miss the cache"
    );
}

/// `experiments::run` (the serial entry point used by tests and the
/// legacy path) agrees with a planned parallel run for a planned id.
#[test]
fn run_and_plan_agree() {
    let id = "ablation-zones";
    let via_run = experiments::run(id, quick());
    let runner = Runner::new(3).quiet(true);
    let (via_plan, _) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&runner);
    assert_eq!(via_run.to_csv(), via_plan.expect("no failures").to_csv());
}

mod cli {
    use std::process::Command;

    fn repro() -> Command {
        Command::new(env!("CARGO_BIN_EXE_repro"))
    }

    /// `--list` prints exactly the known experiment ids, one per line,
    /// on stdout.
    #[test]
    fn list_prints_ids_to_stdout() {
        let out = repro().arg("--list").output().expect("spawn repro");
        assert!(out.status.success());
        let stdout = String::from_utf8(out.stdout).unwrap();
        let ids: Vec<&str> = stdout.lines().collect();
        assert_eq!(ids, forhdc_bench::experiments::ALL);
    }

    /// `-h`/`--help` succeed and print usage on stdout, not stderr.
    #[test]
    fn help_goes_to_stdout_and_succeeds() {
        for flag in ["-h", "--help"] {
            let out = repro().arg(flag).output().expect("spawn repro");
            assert!(out.status.success(), "{flag} must exit 0");
            let stdout = String::from_utf8(out.stdout).unwrap();
            assert!(stdout.contains("usage: repro"), "{flag}: usage on stdout");
            assert!(out.stderr.is_empty(), "{flag}: nothing on stderr");
        }
    }

    /// `--trace` pointing somewhere that cannot be created fails fast
    /// with one clean diagnostic and a non-zero exit, before any job
    /// runs (a traced run that cannot land its traces is useless).
    #[test]
    fn unwritable_trace_dir_fails_cleanly() {
        let file = std::env::temp_dir().join(format!("forhdc_cli_probe_{}", std::process::id()));
        std::fs::write(&file, b"a file, not a directory").unwrap();
        let out_dir = super::tmpdir("cli_trace_out");
        let out = repro()
            .args(["fig4", "--requests", "50"])
            .arg("--out")
            .arg(&out_dir)
            .arg("--trace")
            .arg(file.join("traces")) // parent is a file: uncreatable
            .output()
            .expect("spawn repro");
        assert!(!out.status.success(), "must exit non-zero");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error: trace directory"),
            "stderr: {stderr}"
        );
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    /// The hidden crash-safety selftest end to end: the planted panic
    /// becomes a manifest failure record, sibling jobs complete, no
    /// CSV is written for the broken experiment, and the process
    /// exits non-zero.
    #[test]
    fn selftest_panic_records_failure_and_exits_nonzero() {
        let out_dir = super::tmpdir("cli_selftest");
        let out = repro()
            .args(["selftest-panic", "--jobs", "2", "--no-cache"])
            .arg("--out")
            .arg(&out_dir)
            .output()
            .expect("spawn repro");
        assert!(!out.status.success(), "must exit non-zero");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("1 job(s) failed"), "stderr: {stderr}");
        let manifest =
            std::fs::read_to_string(out_dir.join("manifest.json")).expect("manifest written");
        assert!(manifest.contains("\"failures\""), "{manifest}");
        assert!(manifest.contains("panics by design"), "{manifest}");
        assert!(
            !out_dir.join("selftest-panic.csv").exists(),
            "a failed experiment must not write a CSV"
        );
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    /// Unknown experiments and bad flags exit non-zero with the error
    /// on stderr.
    #[test]
    fn bad_input_fails_with_stderr_diagnostics() {
        let out = repro().arg("fig99").output().expect("spawn repro");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("unknown experiment"));

        let out = repro()
            .args(["fig4", "--jobs", "zero"])
            .output()
            .expect("spawn repro");
        assert_eq!(out.status.code(), Some(2));
    }
}
