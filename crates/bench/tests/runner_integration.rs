//! Cross-crate integration: forhdc-bench experiment plans executed by
//! the forhdc-runner pool must reproduce the serial output byte for
//! byte, and the result cache must make re-runs free without changing
//! a byte either.

use std::path::PathBuf;

use forhdc_bench::{experiments, RunOptions};
use forhdc_runner::Runner;

fn quick() -> RunOptions {
    RunOptions {
        scale: 0.02,
        synthetic_requests: 300,
        ..RunOptions::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("forhdc_bench_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One synthetic sweep (fig4) and one server sweep (fig8): a parallel
/// run with 4 workers must produce byte-identical CSV to the serial
/// path.
#[test]
fn parallel_tables_are_byte_identical_to_serial() {
    for id in ["fig4", "fig8"] {
        let serial = experiments::plan(id, quick())
            .expect("sweep has a plan")
            .run_serial();
        let runner = Runner::new(4).quiet(true);
        let (parallel, stats) = experiments::plan(id, quick())
            .expect("plan")
            .run_with(&runner);
        assert!(stats.jobs > 1, "{id} must decompose into multiple jobs");
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "{id}: --jobs 4 output must be byte-identical to serial"
        );
    }
}

/// A second run over a warm cache must execute zero jobs and still
/// produce byte-identical output.
#[test]
fn cached_rerun_is_free_and_identical() {
    let dir = tmpdir("cache");
    let id = "fig4";

    let cold = Runner::new(4).quiet(true).cache_dir(&dir);
    let (first, first_stats) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&cold);
    assert_eq!(first_stats.cache_hits, 0, "cold cache must miss everywhere");

    let warm = Runner::new(4).quiet(true).cache_dir(&dir);
    let (second, second_stats) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&warm);
    assert_eq!(
        second_stats.cache_hits, second_stats.jobs,
        "warm cache must hit on every job"
    );
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "cached output must be byte-identical"
    );

    // Different options must not hit the same entries.
    let other_opts = RunOptions {
        scale: 0.02,
        synthetic_requests: 301,
        ..RunOptions::default()
    };
    let third = Runner::new(1).quiet(true).cache_dir(&dir);
    let (_, third_stats) = experiments::plan(id, other_opts)
        .expect("plan")
        .run_with(&third);
    assert_eq!(
        third_stats.cache_hits, 0,
        "changed options must miss the cache"
    );
}

/// `experiments::run` (the serial entry point used by tests and the
/// legacy path) agrees with a planned parallel run for a planned id.
#[test]
fn run_and_plan_agree() {
    let id = "ablation-zones";
    let via_run = experiments::run(id, quick());
    let runner = Runner::new(3).quiet(true);
    let (via_plan, _) = experiments::plan(id, quick())
        .expect("plan")
        .run_with(&runner);
    assert_eq!(via_run.to_csv(), via_plan.to_csv());
}

mod cli {
    use std::process::Command;

    fn repro() -> Command {
        Command::new(env!("CARGO_BIN_EXE_repro"))
    }

    /// `--list` prints exactly the known experiment ids, one per line,
    /// on stdout.
    #[test]
    fn list_prints_ids_to_stdout() {
        let out = repro().arg("--list").output().expect("spawn repro");
        assert!(out.status.success());
        let stdout = String::from_utf8(out.stdout).unwrap();
        let ids: Vec<&str> = stdout.lines().collect();
        assert_eq!(ids, forhdc_bench::experiments::ALL);
    }

    /// `-h`/`--help` succeed and print usage on stdout, not stderr.
    #[test]
    fn help_goes_to_stdout_and_succeeds() {
        for flag in ["-h", "--help"] {
            let out = repro().arg(flag).output().expect("spawn repro");
            assert!(out.status.success(), "{flag} must exit 0");
            let stdout = String::from_utf8(out.stdout).unwrap();
            assert!(stdout.contains("usage: repro"), "{flag}: usage on stdout");
            assert!(out.stderr.is_empty(), "{flag}: nothing on stderr");
        }
    }

    /// Unknown experiments and bad flags exit non-zero with the error
    /// on stderr.
    #[test]
    fn bad_input_fails_with_stderr_diagnostics() {
        let out = repro().arg("fig99").output().expect("spawn repro");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("unknown experiment"));

        let out = repro()
            .args(["fig4", "--jobs", "zero"])
            .output()
            .expect("spawn repro");
        assert_eq!(out.status.code(), Some(2));
    }
}
