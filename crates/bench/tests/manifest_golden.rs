//! Golden-file coverage for the run manifest: the JSON document
//! (including the trace digest added for traced runs) and the
//! `--timings` table are compared byte for byte against committed
//! expectations, so any accidental format drift shows up as a diff.
//!
//! Regenerate the goldens after an intentional format change with
//! `BLESS=1 cargo test -p forhdc-bench --test manifest_golden`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use forhdc_runner::{
    ExperimentStats, JobFailure, PhaseTimings, RunManifest, TracePhase, TraceSummary,
};

/// A manifest with every entry shape: a traced sweep with a phase
/// breakdown, an untraced sweep with cache hits, a legacy serial
/// experiment, and a sweep with a recorded job failure.
fn build_manifest() -> RunManifest {
    let mut m = RunManifest::new(3, Some(Path::new("results/.cache")));
    m.record(&ExperimentStats {
        id: "fig3".to_string(),
        jobs: 44,
        cache_hits: 0,
        wall: Duration::from_millis(2_500),
        failures: Vec::new(),
    });
    m.record(&ExperimentStats {
        id: "fig7".to_string(),
        jobs: 32,
        cache_hits: 32,
        wall: Duration::from_millis(40),
        failures: Vec::new(),
    });
    m.record(&ExperimentStats {
        id: "table1".to_string(),
        jobs: 0,
        cache_hits: 0,
        wall: Duration::from_millis(100),
        failures: Vec::new(),
    });
    m.record(&ExperimentStats {
        id: "selftest-panic".to_string(),
        jobs: 3,
        cache_hits: 0,
        wall: Duration::from_millis(5),
        failures: vec![JobFailure {
            point: 1,
            label: "p1".to_string(),
            error: "selftest: job 1 panics by design".to_string(),
        }],
    });
    m.attach_phases(
        "fig3",
        PhaseTimings {
            plan: Duration::from_millis(200),
            sim: Duration::from_millis(2_100),
            emit: Duration::from_millis(200),
        },
    );
    m.attach_trace(
        "fig3",
        TraceSummary {
            files: 44,
            events: 123_456,
            requests: 11_000,
            phases: vec![
                TracePhase {
                    name: "ctrl_queue".to_string(),
                    count: 9_000,
                    p50_ns: 1_024,
                    p95_ns: 8_192,
                    p99_ns: 16_384,
                    max_ns: 20_000,
                },
                TracePhase {
                    name: "response".to_string(),
                    count: 11_000,
                    p50_ns: 2_048,
                    p95_ns: 16_384,
                    p99_ns: 32_768,
                    max_ns: 50_000,
                },
            ],
        },
    );
    m
}

/// Zeroes the two wall-clock-dependent top-level fields; everything
/// else in the document is deterministic.
fn normalize(json: &str) -> String {
    json.lines()
        .map(|line| {
            if line.starts_with("  \"started_unix\": ") {
                "  \"started_unix\": 0,"
            } else if line.starts_with("  \"wall_secs\": ") {
                "  \"wall_secs\": 0.000,"
            } else {
                line
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; bless intentional changes with BLESS=1"
    );
}

#[test]
fn manifest_json_matches_golden() {
    check_golden("manifest.json", &normalize(&build_manifest().to_json()));
}

#[test]
fn timings_table_matches_golden() {
    check_golden("timings.txt", &build_manifest().timings_table());
}
