//! Randomized invariant fuzzing (`repro fuzz` / `repro replay`).
//!
//! Each iteration draws a random system configuration and synthetic
//! workload from a seeded generator and runs four short simulations:
//!
//! 1. the unchecked baseline,
//! 2. the same run under [`FullAudit`] (every invariant checked at
//!    every audit point; the report must stay byte-identical),
//! 3. the same run traced (traced reports must equal untraced ones),
//! 4. a faulted run under [`FullAudit`] + [`SeededFaults`] (the
//!    degraded-mode paths must also keep every invariant).
//!
//! Any panic (an invariant violation) or cross-check mismatch fails
//! the iteration. The failing case is then *shrunk* by deterministic
//! halving of its request, stream, and file counts — each halving is
//! kept only if the smaller case still fails — and written as a
//! self-contained reproducer JSON under `results/repros/` that
//! `repro replay FILE` re-runs deterministically.
//!
//! The hidden `selftest-violation` experiment drives this machinery
//! end to end on purpose: its middle job runs a case with a *planted*
//! audit violation, shrinks it, writes the reproducer, and panics —
//! proving that an invariant violation becomes a manifest failure
//! record, a non-zero exit, and a replayable artifact.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use forhdc_core::{
    FaultConfig, FullAudit, NoFaults, RecoveryPolicy, SeededFaults, System, SystemConfig,
};
use forhdc_runner::{JobOutput, JobSpec, SimJob};
use forhdc_sim::SimDuration;
use forhdc_trace::{MemTracer, NullTracer};
use forhdc_workload::{SyntheticWorkload, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::PlannedExperiment;
use crate::table::Table;

/// The cache organizations a fuzz case may draw (index into this
/// table is the `config` field of the reproducer JSON).
const CONFIG_NAMES: [&str; 4] = ["segm", "block", "no_ra", "for"];

/// One self-contained fuzz case: everything needed to rebuild the
/// workload, the system configuration, and the fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Workload generator seed.
    pub seed: u64,
    /// Synthetic request count.
    pub requests: usize,
    /// File population size.
    pub files: usize,
    /// Mean file length in blocks.
    pub file_blocks: u32,
    /// Concurrent stream count.
    pub streams: u32,
    /// Fraction of write requests.
    pub write_fraction: f64,
    /// Zipf skew of the file popularity distribution.
    pub zipf_alpha: f64,
    /// Index into [`CONFIG_NAMES`].
    pub config: usize,
    /// HDC region size in KiB (0 = no HDC).
    pub hdc_kib: u64,
    /// HDC flush cadence in ms (only meaningful with `hdc_kib > 0`).
    pub flush_period_ms: u64,
    /// Fault schedule seed for the faulted run.
    pub fault_seed: u64,
    /// Per-block media error probability (reads and writes).
    pub media_rate: f64,
    /// Per-transfer bus error probability.
    pub bus_rate: f64,
    /// Controller power-loss period in ms (0 = none).
    pub power_loss_ms: u64,
    /// Selftest hook: panic at exactly this audit observation
    /// (0 = never; see [`FullAudit::with_planted_violation`]).
    pub planted_violation: u64,
}

impl FuzzCase {
    /// Draws iteration `iter` of a fuzz run seeded with `seed`.
    pub fn draw(seed: u64, iter: u64) -> FuzzCase {
        let mut rng = StdRng::seed_from_u64(seed ^ iter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let config = rng.gen_range(0..CONFIG_NAMES.len());
        let hdc_kib = *pick(&mut rng, &[0, 0, 256, 1024, 2048]);
        FuzzCase {
            seed: rng.gen_range(1..1u64 << 32),
            requests: rng.gen_range(200..=1200),
            files: rng.gen_range(200..=4000),
            file_blocks: rng.gen_range(1..=8),
            streams: rng.gen_range(2..=64),
            write_fraction: *pick(&mut rng, &[0.0, 0.1, 0.3, 0.5, 0.9]),
            zipf_alpha: *pick(&mut rng, &[0.0, 0.4, 0.8, 1.1]),
            config,
            hdc_kib,
            flush_period_ms: if hdc_kib > 0 {
                *pick(&mut rng, &[20, 50, 100])
            } else {
                0
            },
            fault_seed: rng.gen_range(1..1u64 << 32),
            media_rate: *pick(&mut rng, &[0.0, 1e-4, 1e-3, 1e-2]),
            bus_rate: *pick(&mut rng, &[0.0, 1e-4, 1e-3]),
            power_loss_ms: *pick(&mut rng, &[0, 0, 30, 100]),
            planted_violation: 0,
        }
    }

    /// The fixed case behind the hidden `selftest-violation`
    /// experiment: a small clean run whose auditor is primed to fire
    /// at its fifth observation.
    pub fn planted() -> FuzzCase {
        FuzzCase {
            seed: 7,
            requests: 400,
            files: 1000,
            file_blocks: 4,
            streams: 16,
            write_fraction: 0.3,
            zipf_alpha: 0.4,
            config: 0,
            hdc_kib: 0,
            flush_period_ms: 0,
            fault_seed: 7,
            media_rate: 0.0,
            bus_rate: 0.0,
            power_loss_ms: 0,
            planted_violation: 5,
        }
    }

    fn workload(&self) -> Workload {
        SyntheticWorkload::builder()
            .requests(self.requests)
            .files(self.files)
            .file_blocks(self.file_blocks)
            .streams(self.streams)
            .write_fraction(self.write_fraction)
            .zipf_alpha(self.zipf_alpha)
            .seed(self.seed)
            .build()
    }

    fn system_config(&self) -> SystemConfig {
        let mut cfg = match self.config {
            0 => SystemConfig::segm(),
            1 => SystemConfig::block(),
            2 => SystemConfig::no_ra(),
            _ => SystemConfig::for_(),
        };
        if self.hdc_kib > 0 {
            cfg = cfg.with_hdc(self.hdc_kib * 1024);
            if self.flush_period_ms > 0 {
                cfg = cfg.with_hdc_flush_period(SimDuration::from_millis(self.flush_period_ms));
            }
        }
        cfg
    }

    fn fault_config(&self) -> FaultConfig {
        let mut cfg = FaultConfig::new(self.fault_seed)
            .with_media_rates(self.media_rate, self.media_rate)
            .with_bus_rate(self.bus_rate);
        if self.power_loss_ms > 0 {
            cfg = cfg.with_power_loss_period_ns(self.power_loss_ms * 1_000_000);
        }
        cfg
    }

    fn auditor(&self) -> FullAudit {
        if self.planted_violation > 0 {
            FullAudit::with_planted_violation(self.planted_violation)
        } else {
            FullAudit::new()
        }
    }

    /// Serializes the case as one flat JSON object (keys in struct
    /// order; `f64` values in shortest round-trip form).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"seed\": {},\n  \"requests\": {},\n  \"files\": {},\n  \
             \"file_blocks\": {},\n  \"streams\": {},\n  \"write_fraction\": {:?},\n  \
             \"zipf_alpha\": {:?},\n  \"config\": {},\n  \"hdc_kib\": {},\n  \
             \"flush_period_ms\": {},\n  \"fault_seed\": {},\n  \"media_rate\": {:?},\n  \
             \"bus_rate\": {:?},\n  \"power_loss_ms\": {},\n  \"planted_violation\": {}\n}}",
            self.seed,
            self.requests,
            self.files,
            self.file_blocks,
            self.streams,
            self.write_fraction,
            self.zipf_alpha,
            self.config,
            self.hdc_kib,
            self.flush_period_ms,
            self.fault_seed,
            self.media_rate,
            self.bus_rate,
            self.power_loss_ms,
            self.planted_violation,
        )
    }

    /// Parses a reproducer written by [`FuzzCase::to_json`]. Unknown
    /// keys are ignored; missing or malformed known keys are errors.
    pub fn from_json(text: &str) -> Result<FuzzCase, String> {
        Ok(FuzzCase {
            seed: field(text, "seed")?,
            requests: field(text, "requests")?,
            files: field(text, "files")?,
            file_blocks: field(text, "file_blocks")?,
            streams: field(text, "streams")?,
            write_fraction: field(text, "write_fraction")?,
            zipf_alpha: field(text, "zipf_alpha")?,
            config: field(text, "config")?,
            hdc_kib: field(text, "hdc_kib")?,
            flush_period_ms: field(text, "flush_period_ms")?,
            fault_seed: field(text, "fault_seed")?,
            media_rate: field(text, "media_rate")?,
            bus_rate: field(text, "bus_rate")?,
            power_loss_ms: field(text, "power_loss_ms")?,
            planted_violation: field(text, "planted_violation")?,
        })
    }
}

fn pick<'a, T>(rng: &mut StdRng, choices: &'a [T]) -> &'a T {
    &choices[rng.gen_range(0..choices.len())]
}

/// Extracts `"key": value` from a flat JSON object.
fn field<T: std::str::FromStr>(text: &str, key: &str) -> Result<T, String> {
    let tag = format!("\"{key}\"");
    let at = text
        .find(&tag)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let rest = &text[at + tag.len()..];
    let rest = rest
        .strip_prefix(char::is_whitespace)
        .unwrap_or(rest)
        .strip_prefix(':')
        .ok_or_else(|| format!("field '{key}' has no value"))?;
    let end = rest
        .find([',', '}', '\n'])
        .ok_or_else(|| format!("field '{key}' is unterminated"))?;
    rest[..end].trim().parse().map_err(|_| {
        format!(
            "field '{key}' has a malformed value: {}",
            rest[..end].trim()
        )
    })
}

/// Runs one case end to end. `Err` carries either a cross-check
/// mismatch description or the panic message of an invariant
/// violation (the [`forhdc_core::VIOLATION_PREFIX`] report).
pub fn run_case(case: &FuzzCase) -> Result<(), String> {
    let case = case.clone();
    match panic::catch_unwind(AssertUnwindSafe(move || run_case_inner(&case))) {
        Ok(r) => r,
        Err(payload) => Err(panic_text(payload)),
    }
}

fn run_case_inner(case: &FuzzCase) -> Result<(), String> {
    let wl = case.workload();
    // 1. Unchecked baseline.
    let base = System::new(case.system_config(), &wl).run();
    // 2. Checked run: every invariant audited; report byte-identical.
    let (checked, auditor) = System::new_traced_faulted_audited(
        case.system_config(),
        &wl,
        NullTracer,
        NoFaults,
        case.auditor(),
    )
    .run_audited();
    if auditor.observations() == 0 {
        return Err("checked run made no audit observations".into());
    }
    if format!("{base:?}") != format!("{checked:?}") {
        return Err("checked report differs from unchecked report".into());
    }
    // 3. Traced run: tracing must not perturb the simulation.
    let (traced, _) = System::new_traced(case.system_config(), &wl, MemTracer::new()).run_traced();
    if format!("{base:?}") != format!("{traced:?}") {
        return Err("traced report differs from untraced report".into());
    }
    // 4. Faulted checked run: degraded-mode paths keep the invariants
    // too. A request timeout keeps pathological schedules from
    // wedging the iteration.
    let cfg = case.system_config().with_recovery(RecoveryPolicy {
        request_timeout: Some(SimDuration::from_secs(10)),
        ..RecoveryPolicy::default()
    });
    let faults = SeededFaults::new(case.fault_config());
    let (faulted, _) =
        System::new_traced_faulted_audited(cfg, &wl, NullTracer, faults, case.auditor())
            .run_audited();
    if faulted.requests == 0 {
        return Err("faulted run completed no requests".into());
    }
    Ok(())
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic halving shrinker: repeatedly halves the request,
/// stream, and file counts, keeping each halving only while the case
/// still fails. The result is the smallest case this ladder reaches,
/// not a global minimum — but it is reached deterministically.
pub fn shrink(mut case: FuzzCase) -> FuzzCase {
    loop {
        let mut shrunk = false;
        for dim in 0..3u8 {
            let mut candidate = case.clone();
            match dim {
                0 if candidate.requests >= 16 => candidate.requests /= 2,
                1 if candidate.streams >= 2 => candidate.streams /= 2,
                2 if candidate.files >= 32 => candidate.files /= 2,
                _ => continue,
            }
            if run_case(&candidate).is_err() {
                case = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return case;
        }
    }
}

/// Writes a reproducer for `case` under `dir`, named after the fuzz
/// seed and iteration that found it. Returns the path written.
pub fn write_repro(dir: &Path, case: &FuzzCase, seed: u64, iter: u64) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(format!("case-{seed}-{iter}.json"));
    std::fs::write(&path, case.to_json())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// The outcome of a fuzz run: how many iterations ran clean, and the
/// first failure (shrunk, with its reproducer path) if any.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Iterations that completed without a failure.
    pub clean: u64,
    /// First failure: the shrunk case, its error, its reproducer.
    pub failure: Option<(FuzzCase, String, PathBuf)>,
}

/// Runs `iters` fuzz iterations from `seed`, stopping at (and
/// shrinking) the first failure. Reproducers land under `repro_dir`.
pub fn fuzz(iters: u64, seed: u64, repro_dir: &Path) -> Result<FuzzOutcome, String> {
    for iter in 0..iters {
        let case = FuzzCase::draw(seed, iter);
        if let Err(err) = run_case(&case) {
            let shrunk = shrink(case);
            let path = write_repro(repro_dir, &shrunk, seed, iter)?;
            return Ok(FuzzOutcome {
                clean: iter,
                failure: Some((shrunk, err, path)),
            });
        }
    }
    Ok(FuzzOutcome {
        clean: iters,
        failure: None,
    })
}

/// Replays a reproducer file. `Ok(Err(_))` means the case still fails
/// (it reproduced); `Ok(Ok(()))` means it now passes; the outer `Err`
/// is a file or parse problem.
pub fn replay(path: &Path) -> Result<Result<(), String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let case = FuzzCase::from_json(&text)?;
    Ok(run_case(&case))
}

/// The hidden deliberate-violation selftest (never part of `repro
/// all`): three jobs, the middle one running [`FuzzCase::planted`]
/// through the full fuzz pipeline — detect, shrink, write the
/// reproducer under `results/repros/` — before panicking with the
/// structured violation report so the crash-safe runner records a
/// manifest failure and the process exits non-zero.
pub fn plan_selftest_violation(repro_dir: PathBuf) -> PlannedExperiment {
    let jobs = (0..3)
        .map(|i| {
            let dir = repro_dir.clone();
            let spec = JobSpec::new("selftest-violation", i, format!("v{i}")).param("i", i);
            SimJob::new(spec, move || {
                if i == 1 {
                    let case = FuzzCase::planted();
                    let err = match run_case(&case) {
                        Err(e) => e,
                        Ok(()) => panic!("selftest: the planted violation did not fire"),
                    };
                    let shrunk = shrink(case);
                    let path = write_repro(&dir, &shrunk, 0, 0)
                        .unwrap_or_else(|e| panic!("selftest: {e}"));
                    panic!(
                        "selftest: planted violation reproduced (reproducer at {}): {err}",
                        path.display()
                    );
                }
                JobOutput::new().metric("ok", 1.0)
            })
        })
        .collect();
    PlannedExperiment {
        id: "selftest-violation",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "selftest-violation",
                "Auditor violation selftest (job 1 plants a violation by design)",
                &["point", "status"],
            );
            for (i, o) in out.iter().enumerate() {
                let status = if o.try_get("ok").is_some() {
                    "ok"
                } else {
                    "failed"
                };
                t.push_row(vec![i.to_string(), status.to_string()]);
            }
            t
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_core::VIOLATION_PREFIX;
    use forhdc_runner::Runner;

    #[test]
    fn json_roundtrip_is_lossless() {
        for iter in 0..20 {
            let case = FuzzCase::draw(42, iter);
            assert_eq!(FuzzCase::from_json(&case.to_json()).unwrap(), case);
        }
        let planted = FuzzCase::planted();
        assert_eq!(FuzzCase::from_json(&planted.to_json()).unwrap(), planted);
    }

    #[test]
    fn malformed_json_is_a_clean_error() {
        assert!(FuzzCase::from_json("{}").unwrap_err().contains("seed"));
        let broken = FuzzCase::planted().to_json().replace("400", "four");
        assert!(FuzzCase::from_json(&broken)
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn a_short_fuzz_run_finds_nothing() {
        let dir = std::env::temp_dir().join("forhdc-fuzz-clean");
        let outcome = fuzz(5, 1, &dir).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        assert_eq!(outcome.clean, 5);
    }

    #[test]
    fn a_planted_violation_fails_shrinks_and_replays() {
        let case = FuzzCase::planted();
        let err = run_case(&case).unwrap_err();
        assert!(err.contains(VIOLATION_PREFIX), "{err}");
        let shrunk = shrink(case.clone());
        assert!(shrunk.requests <= case.requests);
        assert!(
            run_case(&shrunk).unwrap_err().contains(VIOLATION_PREFIX),
            "shrunk case must still fail"
        );
        // Round-trip through the reproducer file.
        let dir = std::env::temp_dir().join("forhdc-fuzz-planted");
        let path = write_repro(&dir, &shrunk, 9, 9).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.unwrap_err().contains(VIOLATION_PREFIX));
    }

    #[test]
    fn selftest_violation_records_the_failure_and_writes_a_reproducer() {
        let dir = std::env::temp_dir().join("forhdc-fuzz-selftest");
        let plan = plan_selftest_violation(dir.clone());
        let runner = Runner::new(2).quiet(true);
        let (table, stats) = plan.run_with(&runner);
        assert!(table.is_none(), "a failed experiment assembles no table");
        assert_eq!(stats.failures.len(), 1);
        assert_eq!(stats.failures[0].point, 1);
        assert!(stats.failures[0].error.contains("planted violation"));
        let repro = dir.join("case-0-0.json");
        assert!(
            repro.is_file(),
            "reproducer must land at {}",
            repro.display()
        );
        assert!(
            replay(&repro).unwrap().is_err(),
            "reproducer must re-trigger"
        );
    }
}
