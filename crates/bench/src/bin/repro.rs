//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro <experiment|all> [--jobs N] [--shards N] [--no-cache] [--scale X] [--requests N] [--out DIR] [--trace DIR] [--check] [--max-retries N] [--timings]
//! repro fuzz [--iters N] [--seed S] [--out DIR]
//! repro replay FILE
//! repro --list
//!
//!   experiment   one of: table1 fig1 fig2 ... fig12 table2 fig-faults
//!                ablation-{sched,segrepl,blkrepl,segsize,coalesce,periodic,...}
//!   --jobs N     worker threads for sweep experiments (default 1);
//!                output is byte-identical for every N
//!   --shards N   event-engine shards per simulation (default 1);
//!                output is byte-identical for every N
//!   --no-cache   bypass the result cache (<out>/.cache/)
//!   --scale X    server-clone request scale (default 1.0)
//!   --requests N synthetic request count (default 10000)
//!   --out DIR    CSV output directory (default results/)
//!   --trace DIR  write request-lifecycle traces to DIR/<id>/p<point>.jsonl
//!                (implies --no-cache; deterministic for every --jobs N)
//!   --check      run every point under the invariant auditor
//!                (implies --no-cache; reports stay byte-identical)
//!   --max-retries N  re-run a crashed job up to N extra times (default 0)
//!   --timings    print a per-experiment timing table after the run
//!   --list       print the experiment ids, one per line
//!
//!   fuzz         randomized invariant fuzzing: each iteration draws a
//!                config + workload, cross-checks checked/traced/faulted
//!                runs, shrinks the first failure, and writes a
//!                reproducer JSON under <out>/repros/
//!   replay FILE  re-run a reproducer; exits 0 iff it still fails
//! ```
//!
//! Sweep experiments run as independent jobs on a worker pool and
//! reassemble in deterministic point order, so `--jobs 8` produces the
//! same bytes as a serial run. Completed jobs persist in the result
//! cache, making an interrupted `repro all` resumable. Each run writes
//! `<out>/manifest.json` with per-experiment timings and job counts.
//!
//! A job that panics does not bring the run down: the failure is
//! recorded in the manifest (and retried up to `--max-retries` times
//! first), sibling jobs complete, no table or CSV is emitted for the
//! broken experiment, and the process exits non-zero.

use std::path::PathBuf;
use std::process::ExitCode;

use forhdc_bench::{experiments, RunOptions};
use forhdc_runner::{ExperimentStats, PhaseTimings, RunManifest, Runner};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => return fuzz_main(&args[1..]),
        Some("replay") => return replay_main(&args[1..]),
        _ => {}
    }
    let mut opts = RunOptions::default();
    let mut out_dir = PathBuf::from("results");
    let mut jobs = 1usize;
    let mut max_retries = 0usize;
    let mut use_cache = true;
    let mut timings = false;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0.0 => v,
                    _ => return usage_err("--scale needs a positive number"),
                };
            }
            "--requests" => {
                i += 1;
                opts.synthetic_requests = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage_err("--requests needs a positive integer"),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage_err("--jobs needs a positive integer"),
                };
            }
            "--shards" => {
                i += 1;
                opts.shards = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage_err("--shards needs a positive integer"),
                };
            }
            "--max-retries" => {
                i += 1;
                max_retries = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage_err("--max-retries needs a non-negative integer"),
                };
            }
            "--no-cache" => use_cache = false,
            "--check" => opts.check = true,
            "--trace" => {
                i += 1;
                opts.trace_dir = match args.get(i) {
                    // Leaked once per process so RunOptions stays Copy.
                    Some(d) => Some(Box::leak(d.clone().into_boxed_str())),
                    None => return usage_err("--trace needs a directory"),
                };
            }
            "--timings" => timings = true,
            "--out" => {
                i += 1;
                out_dir = match args.get(i) {
                    Some(d) => PathBuf::from(d),
                    None => return usage_err("--out needs a directory"),
                };
            }
            "--list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        return usage_err("no experiment given");
    }
    let ids: Vec<&str> = if targets.iter().any(|t| t == "all") {
        experiments::ALL.to_vec()
    } else {
        let mut ids = Vec::new();
        for t in &targets {
            if experiments::ALL.contains(&t.as_str()) || experiments::HIDDEN.contains(&t.as_str()) {
                ids.push(t.as_str());
            } else {
                return usage_err(&format!("unknown experiment '{t}'"));
            }
        }
        ids
    };

    // Fail fast on an unwritable destination: one clean diagnostic
    // beats a full run that cannot land its outputs.
    if let Err(e) = forhdc_bench::tracefs::ensure_writable_dir(&out_dir) {
        eprintln!("error: output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(root) = opts.trace_dir {
        if let Err(e) = forhdc_bench::tracefs::ensure_writable_dir(std::path::Path::new(root)) {
            eprintln!("error: trace directory: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.trace_dir.is_some() && use_cache {
        // A cache hit skips the job closure entirely, so its trace file
        // would never be written; tracing therefore runs every job.
        println!("note: --trace disables the result cache for this run");
        use_cache = false;
    }
    if opts.check && use_cache {
        // Same reasoning: a cache hit would skip the audited run, so
        // checked mode re-executes every job.
        println!("note: --check disables the result cache for this run");
        use_cache = false;
    }
    let cache_dir = use_cache.then(|| out_dir.join(".cache"));
    let mut runner = Runner::new(jobs).max_retries(max_retries);
    if let Some(dir) = &cache_dir {
        runner = runner.cache_dir(dir);
    }
    let mut manifest = RunManifest::new(jobs, cache_dir.as_deref());
    let mut io_failed = false;
    for id in ids {
        let started = std::time::Instant::now();
        let plan = experiments::plan(id, opts);
        let plan_wall = started.elapsed();
        let sim_started = std::time::Instant::now();
        let table = match plan {
            Some(p) => {
                let (table, stats) = p.run_with(&runner);
                if !stats.failures.is_empty() {
                    eprintln!(
                        "error: {id}: {} job(s) failed; no table written (details in {})",
                        stats.failures.len(),
                        out_dir.join("manifest.json").display()
                    );
                    io_failed = true;
                }
                manifest.record(&stats);
                table
            }
            // Legacy serial path: single simulations and bespoke
            // builders with nothing to decompose (jobs = 0). Planning
            // and simulation are fused here, so everything after the
            // (empty) plan probe counts as sim.
            None => {
                let table = experiments::run(id, opts);
                manifest.record(&ExperimentStats {
                    id: id.to_string(),
                    jobs: 0,
                    cache_hits: 0,
                    wall: started.elapsed(),
                    failures: Vec::new(),
                });
                Some(table)
            }
        };
        let sim_wall = sim_started.elapsed();
        let emit_started = std::time::Instant::now();
        if let Some(table) = &table {
            println!("{table}");
        }
        println!(
            "({} finished in {:.1}s)\n",
            id,
            started.elapsed().as_secs_f64()
        );
        if let Some(root) = opts.trace_dir {
            let dir = std::path::Path::new(root).join(id);
            if dir.is_dir() {
                match forhdc_bench::tracefs::summarize_dir(&dir) {
                    Ok(summary) => {
                        manifest.attach_trace(id, summary);
                    }
                    Err(e) => {
                        eprintln!("error: summarizing trace {}: {e}", dir.display());
                        io_failed = true;
                    }
                }
            }
        }
        if let Some(table) = &table {
            if let Err(e) = table.write_csv(&out_dir) {
                eprintln!(
                    "error: could not write {}/{}.csv: {e}",
                    out_dir.display(),
                    id
                );
                io_failed = true;
            }
        }
        manifest.attach_phases(
            id,
            PhaseTimings {
                plan: plan_wall,
                sim: sim_wall,
                emit: emit_started.elapsed(),
            },
        );
    }
    if timings {
        println!("{}", manifest.timings_table());
    }
    let manifest_path = out_dir.join("manifest.json");
    if let Err(e) = manifest.write(&manifest_path) {
        eprintln!("error: could not write {}: {e}", manifest_path.display());
        io_failed = true;
    }
    if io_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro fuzz [--iters N] [--seed S] [--out DIR]`: randomized
/// invariant fuzzing; exits non-zero iff a failure was found (after
/// shrinking it and writing a reproducer under `<out>/repros/`).
fn fuzz_main(args: &[String]) -> ExitCode {
    let mut iters = 200u64;
    let mut seed = 1u64;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage_err("--iters needs a positive integer"),
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage_err("--seed needs an unsigned integer"),
                };
            }
            "--out" => {
                i += 1;
                out_dir = match args.get(i) {
                    Some(d) => PathBuf::from(d),
                    None => return usage_err("--out needs a directory"),
                };
            }
            "-h" | "--help" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            other => return usage_err(&format!("unknown fuzz argument '{other}'")),
        }
        i += 1;
    }
    let repro_dir = out_dir.join("repros");
    match forhdc_bench::fuzz::fuzz(iters, seed, &repro_dir) {
        Ok(outcome) => match outcome.failure {
            None => {
                println!("fuzz: {iters} iteration(s) clean (seed {seed})");
                ExitCode::SUCCESS
            }
            Some((_, err, path)) => {
                eprintln!(
                    "fuzz: failure at iteration {} (seed {seed}):\n{err}\n\n\
                     shrunk reproducer written to {}\nre-run it with: repro replay {}",
                    outcome.clean,
                    path.display(),
                    path.display()
                );
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro replay FILE`: re-runs a reproducer. Exit 0 = the case still
/// fails (it reproduced); 1 = it now passes; 2 = unreadable file.
fn replay_main(args: &[String]) -> ExitCode {
    match args {
        [file] if file != "-h" && file != "--help" => {
            match forhdc_bench::fuzz::replay(std::path::Path::new(file)) {
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
                Ok(Err(err)) => {
                    println!("reproduced:\n{err}");
                    ExitCode::SUCCESS
                }
                Ok(Ok(())) => {
                    eprintln!("did not reproduce: the case now passes");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage_err("replay needs exactly one reproducer file"),
    }
}

fn usage_text() -> String {
    format!(
        "usage: repro <experiment|all> [--jobs N] [--shards N] [--no-cache] [--scale X] [--requests N] [--out DIR] [--trace DIR] [--check] [--max-retries N] [--timings]\n       repro fuzz [--iters N] [--seed S] [--out DIR]\n       repro replay FILE\n       repro --list\n\nexperiments: {}",
        experiments::ALL.join(" ")
    )
}

fn usage_err(err: &str) -> ExitCode {
    eprintln!("error: {err}\n\n{}", usage_text());
    ExitCode::from(2)
}
