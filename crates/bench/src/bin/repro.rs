//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro <experiment|all> [--scale X] [--requests N] [--out DIR]
//!
//!   experiment   one of: table1 fig1 fig2 ... fig12 table2
//!                ablation-{sched,segrepl,blkrepl,segsize,coalesce,periodic}
//!   --scale X    server-clone request scale (default 1.0)
//!   --requests N synthetic request count (default 10000)
//!   --out DIR    CSV output directory (default results/)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use forhdc_bench::{experiments, RunOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOptions::default();
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0.0 => v,
                    _ => return usage("--scale needs a positive number"),
                };
            }
            "--requests" => {
                i += 1;
                opts.synthetic_requests = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage("--requests needs a positive integer"),
                };
            }
            "--out" => {
                i += 1;
                out_dir = match args.get(i) {
                    Some(d) => PathBuf::from(d),
                    None => return usage("--out needs a directory"),
                };
            }
            "-h" | "--help" => return usage(""),
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        return usage("no experiment given");
    }
    let ids: Vec<&str> = if targets.iter().any(|t| t == "all") {
        experiments::ALL.to_vec()
    } else {
        let mut ids = Vec::new();
        for t in &targets {
            if experiments::ALL.contains(&t.as_str()) {
                ids.push(t.as_str());
            } else {
                return usage(&format!("unknown experiment '{t}'"));
            }
        }
        ids
    };
    for id in ids {
        let started = std::time::Instant::now();
        let table = experiments::run(id, opts);
        println!("{table}");
        println!("({} finished in {:.1}s)\n", id, started.elapsed().as_secs_f64());
        if let Err(e) = table.write_csv(&out_dir) {
            eprintln!("warning: could not write {}/{}.csv: {e}", out_dir.display(), id);
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro <experiment|all> [--scale X] [--requests N] [--out DIR]\n\nexperiments: {}",
        experiments::ALL.join(" ")
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
