//! Trace inspection: renders the JSONL traces a `repro --trace DIR`
//! run writes into human-readable diagnostics.
//!
//! ```text
//! trace <dir> [--top N]
//!
//!   dir      one experiment's trace directory (DIR/<experiment>/),
//!            holding one p<point>.jsonl file per curve point
//!   --top N  slowest requests to break down (default 5)
//! ```
//!
//! Prints three sections: the per-phase latency percentile table over
//! every point file, a per-disk utilization timeline from the point
//! with the most sampler coverage, and the N slowest requests with
//! their full span breakdowns.

use std::path::Path;
use std::process::ExitCode;

use forhdc_bench::tracefs;
use forhdc_trace::{parse_jsonl, slowest_requests, utilization_timeline, TraceEvent, TraceSummary};

/// Timeline width: one column per sampler bucket, capped to fit a
/// terminal next to the disk label.
const TIMELINE_COLS: usize = 24;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<String> = None;
    let mut top = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                i += 1;
                top = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage_err("--top needs a non-negative integer"),
                };
            }
            "-h" | "--help" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return usage_err(&format!("unexpected argument '{other}'")),
        }
        i += 1;
    }
    let Some(dir) = dir else {
        return usage_err("no trace directory given");
    };
    match report(Path::new(&dir), top) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report(dir: &Path, top: usize) -> Result<(), String> {
    let files = tracefs::point_files(dir)?;
    if files.is_empty() {
        return Err(format!("no .jsonl trace files in {}", dir.display()));
    }
    // (file stem, events) per point, in point order.
    let mut points: Vec<(String, Vec<TraceEvent>)> = Vec::with_capacity(files.len());
    let mut merged = TraceSummary::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let events = parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        merged.merge(&TraceSummary::from_events(&events));
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        points.push((stem, events));
    }
    println!(
        "trace: {} ({} files, {} events, {} requests)\n",
        dir.display(),
        points.len(),
        merged.events,
        merged.requests
    );

    println!("phase latency percentiles (ms)");
    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "p50", "p95", "p99", "max"
    );
    for p in merged.phase_percentiles() {
        println!(
            "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            p.phase,
            p.count,
            ms(p.p50_ns),
            ms(p.p95_ns),
            ms(p.p99_ns),
            ms(p.max_ns)
        );
    }

    // The point with the most sampler events carries the richest
    // timeline; short points may have none at all.
    let Some(best) = points.iter().max_by_key(|(_, evs)| {
        evs.iter()
            .filter(|e| matches!(e, TraceEvent::Sample { .. }))
            .count()
    }) else {
        return Err(format!("no trace points in {}", dir.display()));
    };
    let timeline = utilization_timeline(&best.1, TIMELINE_COLS);
    if timeline.is_empty() {
        println!("\nno sampler events (trace written without sampling?)");
    } else {
        // Per-disk injected-fault tallies (power losses are array-wide,
        // not chargeable to one disk, so they are excluded here).
        let mut disk_faults: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
        for ev in &best.1 {
            if let TraceEvent::Fault { disk, kind, .. } = ev {
                if *kind != forhdc_trace::FaultKind::PowerLoss {
                    *disk_faults.entry(*disk).or_insert(0) += 1;
                }
            }
        }
        println!("\ndisk utilization timeline ({}, 0–100%)", best.0);
        for (disk, series) in timeline {
            let bars: String = series.iter().map(|&pm| bar(pm)).collect();
            let mean: u64 =
                series.iter().map(|&v| v as u64).sum::<u64>() / series.len().max(1) as u64;
            let faults = disk_faults.get(&disk).copied().unwrap_or(0);
            println!(
                "  disk {disk:>2} |{bars}| mean {:>3}%  faults {faults:>4}",
                mean / 10
            );
        }
    }

    if top > 0 {
        // Rank across all points: slowest per point, then merged.
        let mut spans: Vec<(String, forhdc_trace::RequestSpan)> = Vec::new();
        for (stem, evs) in &points {
            for span in slowest_requests(evs, top) {
                spans.push((stem.clone(), span));
            }
        }
        spans.sort_by(|a, b| {
            b.1.response_ns
                .cmp(&a.1.response_ns)
                .then(a.0.cmp(&b.0))
                .then(a.1.req.cmp(&b.1.req))
        });
        spans.truncate(top);
        println!("\nslowest {} requests", spans.len());
        for (stem, span) in &spans {
            println!(
                "  {stem} req {:<6} response {:>9}  (issued at {})",
                span.req,
                ms(span.response_ns),
                ms(span.issued_ns)
            );
            for ev in &span.events {
                println!("    {}", describe(ev));
            }
        }
    }
    Ok(())
}

/// Nanoseconds rendered as fixed-point milliseconds (3 decimals), so
/// columns align and the output is byte-stable.
fn ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, ns % 1_000_000 / 1_000)
}

/// One utilization bucket as a bar glyph (per-mille → 9 levels).
fn bar(pm: u32) -> char {
    const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    GLYPHS[(pm.min(1000) as usize * (GLYPHS.len() - 1)).div_ceil(1000)]
}

/// One-line rendering of a span event for the slowest-request listing.
fn describe(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Issue {
            t,
            stream,
            start,
            nblocks,
            write,
            ..
        } => format!(
            "{} issue   stream {stream} {} block {start}+{nblocks}",
            ms(t),
            rw(write)
        ),
        TraceEvent::Probe { t, disk, result, .. } => {
            format!("{} probe   disk {disk} -> {}", ms(t), result.tag())
        }
        TraceEvent::Queue { t, disk, depth, .. } => {
            format!("{} queue   disk {disk} depth {depth}", ms(t))
        }
        TraceEvent::Media {
            t,
            disk,
            wait,
            seek,
            rotation,
            transfer,
            overhead,
            nblocks,
            read_ahead,
            write,
            ..
        } => format!(
            "{} media   disk {disk} {} {nblocks} blocks (+{read_ahead} ra) wait {} seek {} rot {} xfer {} ovh {}",
            ms(t),
            rw(write),
            ms(wait),
            ms(seek),
            ms(rotation),
            ms(transfer),
            ms(overhead)
        ),
        TraceEvent::Bus { t, wait, busy, bytes, .. } => {
            format!("{} bus     wait {} busy {} ({bytes} bytes)", ms(t), ms(wait), ms(busy))
        }
        TraceEvent::Complete { t, response, .. } => {
            format!("{} done    response {}", ms(t), ms(response))
        }
        TraceEvent::BufferLookup { t, block, write, hit } => format!(
            "{} buffer  {} block {block} {}",
            ms(t),
            rw(write),
            if hit { "hit" } else { "miss" }
        ),
        TraceEvent::Fault { t, disk, kind, .. } => {
            format!("{} fault   disk {disk} {}", ms(t), kind.tag())
        }
        TraceEvent::Retry { t, disk, attempt, delay, .. } => {
            format!(
                "{} retry   disk {disk} attempt {attempt} after {}",
                ms(t),
                ms(delay)
            )
        }
        TraceEvent::Timeout { t, .. } => format!("{} timeout request abandoned", ms(t)),
        TraceEvent::Sample { .. } => "sample".to_string(),
    }
}

fn rw(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

fn usage_text() -> &'static str {
    "usage: trace <dir> [--top N]\n\n  dir      one experiment's trace directory (e.g. traces/fig3)\n  --top N  slowest requests to break down (default 5)"
}

fn usage_err(err: &str) -> ExitCode {
    eprintln!("error: {err}\n\n{}", usage_text());
    ExitCode::from(2)
}
