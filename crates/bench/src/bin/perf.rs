//! The perf harness: a fixed set of hot-path microbenches plus one
//! end-to-end `fig3`-point simulation, timed with plain wall clocks and
//! emitted as machine-readable JSON (`BENCH_*.json`).
//!
//! ```text
//! perf [--fast] [--shards N] [--json PATH] [--baseline PATH] [--fail-below RATIO]
//! perf cmp OLD.json NEW.json [--fail-below RATIO]
//!
//!   --fast             CI smoke mode: one repetition, small batches
//!   --shards N         engine shards for the sharded e2e bench
//!                      (default 4; reported in the shards column)
//!   --json PATH        write the results as JSON to PATH
//!   --baseline PATH    read a previous --json output and report speedups
//!   --fail-below R     exit non-zero if any bench's speedup vs the
//!                      baseline falls below R (gross-regression gate)
//!
//!   cmp OLD NEW        machine-readable comparison of two BENCH files:
//!                      one `name<TAB>old_ns<TAB>new_ns<TAB>speedup` row
//!                      per bench present in both, no timing reruns.
//!                      With --fail-below R, exits non-zero if any
//!                      common bench's speedup falls below R.
//! ```
//!
//! Unlike the Criterion benches (which use the offline criterion stub's
//! fixed time budget), this harness runs a *fixed work quantum* per
//! bench and reports the best-of-R nanoseconds per operation, so two
//! runs on the same machine are directly comparable. The committed
//! `BENCH_PR2.json` at the repo root records the PR-over-PR trajectory.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use forhdc_bench::RunOptions;
use forhdc_cache::{
    BlockCache, BlockReplacement, ControllerCache, HdcRegion, SegmentCache, SegmentReplacement,
};
use forhdc_core::{System, SystemConfig};
use forhdc_host::BufferCache;
use forhdc_runner::point_seed;
use forhdc_sim::{LogicalBlock, PhysBlock, ReadWrite};
use forhdc_workload::SyntheticWorkload;

/// One bench result: best-of-R mean nanoseconds per operation.
#[derive(Debug, Clone)]
struct BenchResult {
    name: &'static str,
    ns_per_op: f64,
    ops: u64,
    /// Engine shards the bench ran with (1 = serial; only the e2e
    /// simulations can shard).
    shards: usize,
}

struct Harness {
    fast: bool,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Times `ops(n)` (which must perform `n` operations) over `reps`
    /// repetitions and records the best mean ns/op.
    fn bench<F: FnMut(u64) -> u64>(&mut self, name: &'static str, batch: u64, mut ops: F) {
        let (reps, batch) = if self.fast {
            (2, batch / 8 + 1)
        } else {
            (5, batch)
        };
        // Warm-up pass (untimed): page in code and data.
        std::hint::black_box(ops(batch.min(1_000)));
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(ops(batch));
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        println!("{name:<40} {best:>12.1} ns/op  ({batch} ops, shards 1)");
        self.results.push(BenchResult {
            name,
            ns_per_op: best,
            ops: batch,
            shards: 1,
        });
    }
}

fn bench_block_cache(h: &mut Harness, policy: BlockReplacement, name: &'static str) {
    h.bench(name, 200_000, |n| {
        let mut cache = BlockCache::new(1024, policy);
        for i in 0..n {
            cache.insert_run(PhysBlock::new(i * 8 % 16_384), 8, 4);
            cache.touch(PhysBlock::new(i * 8 % 16_384));
        }
        cache.resident_blocks() as u64
    });
}

fn bench_block_cache_touch_hot(h: &mut Harness) {
    // Pure touch over a resident working set: the per-I/O hit path.
    h.bench("block_cache/touch_hot", 2_000_000, |n| {
        let mut cache = BlockCache::new(1024, BlockReplacement::Mru);
        for i in 0..1024u64 {
            cache.insert_run(PhysBlock::new(i), 1, 1);
        }
        let mut hits = 0u64;
        for i in 0..n {
            hits += cache.touch(PhysBlock::new(i * 31 % 1_024)) as u64;
        }
        hits
    });
}

fn bench_buffer_cache(h: &mut Harness) {
    // Mixed hit/miss stream over a 16 K-block cache with a 24 K-block
    // footprint (two-thirds hit rate, like a warm host cache).
    h.bench("buffer_cache/access", 1_000_000, |n| {
        let mut bc = BufferCache::new(16_384);
        let mut hits = 0u64;
        for i in 0..n {
            let block = LogicalBlock::new(i * 7 % 24_576);
            hits += bc.access(block, ReadWrite::Read).is_hit() as u64;
        }
        hits
    });
}

fn bench_segment_cache(h: &mut Harness) {
    h.bench("segment_cache/insert_touch", 200_000, |n| {
        let mut cache = SegmentCache::new(27, 32, SegmentReplacement::Lru);
        for i in 0..n {
            cache.insert_run(PhysBlock::new(i * 32 % 65_536), 32, 4);
            cache.touch(PhysBlock::new(i * 32 % 65_536));
        }
        cache.resident_blocks() as u64
    });
    h.bench("segment_cache/touch_hot", 2_000_000, |n| {
        let mut cache = SegmentCache::new(27, 32, SegmentReplacement::Lru);
        for i in 0..27u64 {
            cache.insert_run(PhysBlock::new(i * 32), 32, 32);
        }
        let mut hits = 0u64;
        for i in 0..n {
            hits += cache.touch(PhysBlock::new(i * 13 % 864)) as u64;
        }
        hits
    });
}

fn bench_hdc(h: &mut Harness) {
    h.bench("hdc/write_flush_cycle", 20_000, |n| {
        let mut hdc = HdcRegion::new(512);
        for i in 0..512u64 {
            hdc.pin(PhysBlock::new(i)).unwrap();
        }
        let mut flushed = 0u64;
        for i in 0..n {
            // Dirty a small rotating subset, then flush: the periodic
            // sync pattern (most pinned blocks are clean each period).
            for j in 0..8u64 {
                hdc.write(PhysBlock::new((i * 8 + j) % 512));
            }
            flushed += hdc.flush().len() as u64;
        }
        flushed
    });
}

/// Times `reps` full runs of `cfg` over `wl` and records the best
/// per-request wall time under `name`.
fn bench_system(
    h: &mut Harness,
    name: &'static str,
    wl: &forhdc_workload::Workload,
    cfg: impl Fn() -> SystemConfig,
    shards: usize,
) {
    let requests = wl.trace.len();
    let reps = if h.fast { 1 } else { 3 };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let r = System::new(cfg(), wl).with_shards(shards).run();
        std::hint::black_box(r.io_time);
        best = best.min(t.elapsed().as_nanos() as f64 / requests as f64);
    }
    println!("{name:<40} {best:>12.1} ns/req  ({requests} reqs, shards {shards})");
    h.results.push(BenchResult {
        name,
        ns_per_op: best,
        ops: requests as u64,
        shards,
    });
}

fn bench_e2e(h: &mut Harness) {
    // One fig3 point (16-KByte files, 128 streams, FOR policy), exactly
    // as plan_fig3 builds it, at a reduced request count so the full
    // harness stays under a minute.
    // Same request count in both modes: per-request cost has a fixed
    // setup component, so shrinking the run would make fast-mode
    // numbers incomparable to a full-mode baseline.
    let opts = RunOptions::default();
    let requests = opts.synthetic_requests / 2;
    let seed = point_seed("fig3", 5); // row 5 = 16-KByte files
    let wl = SyntheticWorkload::builder()
        .requests(requests)
        .files(20_000)
        .file_blocks(4)
        .streams(128)
        .seed(seed)
        .build();
    bench_system(h, "e2e/fig3_point_for", &wl, SystemConfig::for_, 1);
}

fn bench_e2e_fig5(h: &mut Harness, shards: usize) {
    // One fig5 point (alpha 0.4, 8-disk array, FOR policy) at a reduced
    // request count: the multi-disk workload whose media completions
    // actually overlap, so the sharded engine forms real windows. Run
    // serial and sharded back to back over the same workload; the
    // reports are byte-identical, only the wall clock differs.
    let opts = RunOptions::default();
    let requests = opts.synthetic_requests / 2;
    let seed = point_seed("fig5", 2); // row 2 = Zipf alpha 0.4
    let wl = SyntheticWorkload::builder()
        .requests(requests)
        .files(20_000)
        .file_blocks(4)
        .streams(128)
        .zipf_alpha(0.4)
        .seed(seed)
        .build();
    bench_system(h, "e2e/fig5_point_for", &wl, SystemConfig::for_, 1);
    bench_system(h, "e2e/fig5_point_sharded", &wl, SystemConfig::for_, shards);
}

fn to_json(results: &[BenchResult], fast: bool, baseline: Option<&Vec<(String, f64)>>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    s.push_str("  \"benches\": {");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"ns_per_op\": {:.1}, \"ops\": {}, \"shards\": {}}}",
            r.name, r.ns_per_op, r.ops, r.shards
        ));
    }
    s.push_str("\n  }");
    if let Some(base) = baseline {
        s.push_str(",\n  \"baseline_ns_per_op\": {");
        for (i, (name, ns)) in base.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{name}\": {ns:.1}"));
        }
        s.push_str("\n  },\n  \"speedup\": {");
        let mut first = true;
        for r in results {
            if let Some((_, base_ns)) = base.iter().find(|(n, _)| n == r.name) {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\n    \"{}\": {:.2}",
                    r.name,
                    base_ns / r.ns_per_op
                ));
            }
        }
        s.push_str("\n  }");
    }
    s.push_str("\n}\n");
    s
}

/// Minimal extraction of `"name": {"ns_per_op": X, ...}` pairs from a
/// previous run's `benches` section (hand-rolled like the writer; no
/// serde — relies on the one-entry-per-line shape [`to_json`] emits).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_benches = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"benches\"") {
            in_benches = true;
            continue;
        }
        if !in_benches {
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        let Some(rest) = t.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(idx) = rest.find("\"ns_per_op\": ") else {
            continue;
        };
        let num: String = rest[idx + "\"ns_per_op\": ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("cmp") {
        return cmp_main(&args[1..]);
    }
    let mut fast = false;
    let mut shards = 4usize;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut fail_below: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--shards" => {
                i += 1;
                shards = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => return usage_err("--shards needs a positive integer"),
                };
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(PathBuf::from(p)),
                    None => return usage_err("--json needs a path"),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline_path = Some(PathBuf::from(p)),
                    None => return usage_err("--baseline needs a path"),
                }
            }
            "--fail-below" => {
                i += 1;
                fail_below = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0.0 => Some(v),
                    _ => return usage_err("--fail-below needs a positive ratio"),
                };
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_err(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if fail_below.is_some() && baseline_path.is_none() {
        return usage_err("--fail-below needs --baseline");
    }
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => {
                let parsed = parse_baseline(&text);
                if parsed.is_empty() {
                    eprintln!("error: no benches found in baseline {}", p.display());
                    return ExitCode::FAILURE;
                }
                Some(parsed)
            }
            Err(e) => {
                eprintln!("error: could not read baseline {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut h = Harness {
        fast,
        results: Vec::new(),
    };
    bench_block_cache(
        &mut h,
        BlockReplacement::Mru,
        "block_cache/mru_insert_touch",
    );
    bench_block_cache(
        &mut h,
        BlockReplacement::Lru,
        "block_cache/lru_insert_touch",
    );
    bench_block_cache_touch_hot(&mut h);
    bench_buffer_cache(&mut h);
    bench_segment_cache(&mut h);
    bench_hdc(&mut h);
    bench_e2e(&mut h);
    bench_e2e_fig5(&mut h, shards);

    let mut regressed = Vec::new();
    if let Some(base) = &baseline {
        println!("\nspeedup vs baseline:");
        for r in &h.results {
            if let Some((_, base_ns)) = base.iter().find(|(n, _)| n == r.name) {
                let speedup = base_ns / r.ns_per_op;
                println!("{:<40} {speedup:>11.2}x", r.name);
                if fail_below.is_some_and(|min| speedup < min) {
                    regressed.push((r.name, speedup));
                }
            }
        }
    }
    if let Some(path) = json_path {
        let json = to_json(&h.results, fast, baseline.as_ref());
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(min) = fail_below {
        if !regressed.is_empty() {
            eprintln!("error: speedup below the {min:.2}x floor:");
            for (name, speedup) in &regressed {
                eprintln!("  {name:<40} {speedup:>11.2}x");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `perf cmp OLD NEW [--fail-below R]`: compares two BENCH files
/// without rerunning anything. Prints one tab-separated row per bench
/// present in both files — `name old_ns new_ns speedup` — so CI and
/// scripts can gate on it without ad-hoc JSON surgery.
fn cmp_main(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut fail_below: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fail-below" => {
                i += 1;
                fail_below = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v > 0.0 => Some(v),
                    _ => return usage_err("--fail-below needs a positive ratio"),
                };
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [old_path, new_path] = paths[..] else {
        return usage_err("cmp needs exactly two BENCH files");
    };
    let mut sides = Vec::new();
    for p in [old_path, new_path] {
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let parsed = parse_baseline(&text);
                if parsed.is_empty() {
                    eprintln!("error: no benches found in {p}");
                    return ExitCode::FAILURE;
                }
                sides.push(parsed);
            }
            Err(e) => {
                eprintln!("error: could not read {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (old, new) = (&sides[0], &sides[1]);
    let mut regressed = false;
    for (name, old_ns) in old {
        let Some((_, new_ns)) = new.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let speedup = old_ns / new_ns;
        println!("{name}\t{old_ns:.1}\t{new_ns:.1}\t{speedup:.2}");
        if fail_below.is_some_and(|min| speedup < min) {
            regressed = true;
            eprintln!("error: {name} speedup {speedup:.2}x below the floor");
        }
    }
    if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: perf [--fast] [--shards N] [--json PATH] [--baseline PATH] [--fail-below RATIO]\n       perf cmp OLD.json NEW.json [--fail-below RATIO]";

fn usage_err(err: &str) -> ExitCode {
    eprintln!("error: {err}\n\n{USAGE}");
    ExitCode::from(2)
}
