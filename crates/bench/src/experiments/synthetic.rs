//! Figures 3–6: the controlled synthetic evaluation (§6.2).
//!
//! Each figure is a [`PlannedExperiment`]: one job per (sweep point,
//! configuration) pair, the row's workload generated at most once and
//! shared between that row's jobs. Workload seeds derive from
//! [`point_seed`] so they are stable under experiment reordering and
//! identical on the serial and parallel paths.

use forhdc_core::SystemConfig;
use forhdc_runner::{point_seed, JobSpec};
use forhdc_workload::SyntheticWorkload;

use crate::plan::{shared, sim_job, NamedConfig, PlannedExperiment};
use crate::table::{f3, Table};
use crate::RunOptions;

const FILES: usize = 20_000;
const HDC: u64 = 2 * 1024 * 1024;

fn synth_spec(
    id: &'static str,
    point: usize,
    label: String,
    opts: RunOptions,
    seed: u64,
    config: &str,
) -> JobSpec {
    JobSpec::new(id, point, label)
        .param("requests", opts.synthetic_requests)
        .param("files", FILES)
        .param("seed", seed)
        .param("config", config)
}

/// Figure 3: normalized I/O time as a function of the average file
/// size, 128 simultaneous streams. Series: Segm (the 1.0 baseline),
/// Block, No-RA, FOR.
pub fn plan_fig3(opts: RunOptions) -> PlannedExperiment {
    const FILE_BLOCKS: [u32; 8] = [1, 2, 4, 8, 12, 16, 24, 32];
    const CONFIGS: [NamedConfig; 4] = [
        ("segm", SystemConfig::segm),
        ("block", SystemConfig::block),
        ("no_ra", SystemConfig::no_ra),
        ("for", SystemConfig::for_),
    ];
    let mut jobs = Vec::new();
    for (row, &file_blocks) in FILE_BLOCKS.iter().enumerate() {
        let seed = point_seed("fig3", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(FILES)
                .file_blocks(file_blocks)
                .streams(128)
                .seed(seed)
                .build()
        });
        for (name, cfg) in CONFIGS {
            let spec = synth_spec(
                "fig3",
                jobs.len(),
                format!("file={}KB {name}", file_blocks * 4),
                opts,
                seed,
                name,
            )
            .param("file_blocks", file_blocks)
            .param("streams", 128);
            jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id: "fig3",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig3",
                "Normalized I/O time vs average file size (128 streams)",
                &["file_kb", "segm", "block", "no_ra", "for"],
            );
            for (row, &file_blocks) in FILE_BLOCKS.iter().enumerate() {
                let o = &out[row * 4..(row + 1) * 4];
                let segm = o[0].get("io_ns");
                t.push_row(vec![
                    (file_blocks * 4).to_string(),
                    f3(1.0),
                    f3(o[1].get("io_ns") / segm),
                    f3(o[2].get("io_ns") / segm),
                    f3(o[3].get("io_ns") / segm),
                ]);
            }
            t.note("paper shape: FOR <= all; ~40% gain at 16 KB; No-RA beats blind below ~48 KB, loses badly above");
            t
        }),
    }
}

/// Figure 4: normalized I/O time as a function of the number of
/// simultaneous streams, 16-KByte files. Series: Segm, Block, FOR.
pub fn plan_fig4(opts: RunOptions) -> PlannedExperiment {
    const STREAMS: [u32; 7] = [64, 128, 256, 384, 512, 768, 1024];
    const CONFIGS: [NamedConfig; 3] = [
        ("segm", SystemConfig::segm),
        ("block", SystemConfig::block),
        ("for", SystemConfig::for_),
    ];
    let mut jobs = Vec::new();
    for (row, &streams) in STREAMS.iter().enumerate() {
        let seed = point_seed("fig4", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(FILES)
                .file_blocks(4)
                .streams(streams)
                .seed(seed)
                .build()
        });
        for (name, cfg) in CONFIGS {
            let spec = synth_spec(
                "fig4",
                jobs.len(),
                format!("streams={streams} {name}"),
                opts,
                seed,
                name,
            )
            .param("file_blocks", 4)
            .param("streams", streams);
            jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id: "fig4",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig4",
                "Normalized I/O time vs simultaneous streams (16-KB files)",
                &["streams", "segm", "block", "for"],
            );
            for (row, &streams) in STREAMS.iter().enumerate() {
                let o = &out[row * 3..(row + 1) * 3];
                let segm = o[0].get("io_ns");
                t.push_row(vec![
                    streams.to_string(),
                    f3(1.0),
                    f3(o[1].get("io_ns") / segm),
                    f3(o[2].get("io_ns") / segm),
                ]);
            }
            t.note("paper shape: FOR gains grow with streams (39% at 64 -> 59% at 1024); Block ~= Segm until ~256, ~3% better at 1024");
            t
        }),
    }
}

/// Figure 5: normalized I/O time and HDC hit rate as a function of the
/// Zipf coefficient. HDC caches = 2 MB. Series: Segm, Segm+HDC, FOR,
/// FOR+HDC (+ hit rate column).
pub fn plan_fig5(opts: RunOptions) -> PlannedExperiment {
    const TENTHS: [u32; 6] = [0, 2, 4, 6, 8, 10];
    const CONFIGS: [NamedConfig; 4] = [
        ("segm", SystemConfig::segm),
        ("segm_hdc", || SystemConfig::segm().with_hdc(HDC)),
        ("for", SystemConfig::for_),
        ("for_hdc", || SystemConfig::for_().with_hdc(HDC)),
    ];
    let mut jobs = Vec::new();
    for (row, &tenth) in TENTHS.iter().enumerate() {
        let alpha = tenth as f64 / 10.0;
        let seed = point_seed("fig5", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(FILES)
                .file_blocks(4)
                .streams(128)
                .zipf_alpha(alpha)
                .seed(seed)
                .build()
        });
        for (name, cfg) in CONFIGS {
            let spec = synth_spec(
                "fig5",
                jobs.len(),
                format!("alpha={alpha:.1} {name}"),
                opts,
                seed,
                name,
            )
            .param("file_blocks", 4)
            .param("streams", 128)
            .param("zipf_alpha", alpha);
            jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id: "fig5",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig5",
                "Normalized I/O time vs access-frequency distribution (HDC 2 MB)",
                &["alpha", "segm", "segm_hdc", "for", "for_hdc", "hdc_hit_%"],
            );
            for (row, &tenth) in TENTHS.iter().enumerate() {
                let alpha = tenth as f64 / 10.0;
                let o = &out[row * 4..(row + 1) * 4];
                let segm = o[0].get("io_ns");
                t.push_row(vec![
                    format!("{alpha:.1}"),
                    f3(1.0),
                    f3(o[1].get("io_ns") / segm),
                    f3(o[2].get("io_ns") / segm),
                    f3(o[3].get("io_ns") / segm),
                    format!("{:.1}", 100.0 * o[3].get("hdc_hit_rate")),
                ]);
            }
            t.note("paper shape: HDC gains ~10% flat for alpha <= 0.6, rising to ~28% at alpha = 1; hit rate rises with alpha (56% at 1.0)");
            t
        }),
    }
}

/// Figure 6: normalized I/O time as a function of the percentage of
/// writes. HDC caches = 2 MB, Zipf α = 0.4.
pub fn plan_fig6(opts: RunOptions) -> PlannedExperiment {
    const WRITE_PCT: [u32; 7] = [0, 10, 20, 30, 40, 50, 60];
    const CONFIGS: [NamedConfig; 4] = [
        ("segm", SystemConfig::segm),
        ("segm_hdc", || SystemConfig::segm().with_hdc(HDC)),
        ("for", SystemConfig::for_),
        ("for_hdc", || SystemConfig::for_().with_hdc(HDC)),
    ];
    let mut jobs = Vec::new();
    for (row, &pct) in WRITE_PCT.iter().enumerate() {
        let seed = point_seed("fig6", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(FILES)
                .file_blocks(4)
                .streams(128)
                .write_fraction(pct as f64 / 100.0)
                .seed(seed)
                .build()
        });
        for (name, cfg) in CONFIGS {
            let spec = synth_spec(
                "fig6",
                jobs.len(),
                format!("writes={pct}% {name}"),
                opts,
                seed,
                name,
            )
            .param("file_blocks", 4)
            .param("streams", 128)
            .param("write_pct", pct);
            jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id: "fig6",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig6",
                "Normalized I/O time vs write percentage (HDC 2 MB, alpha 0.4)",
                &["write_%", "segm", "segm_hdc", "for", "for_hdc"],
            );
            for (row, &pct) in WRITE_PCT.iter().enumerate() {
                let o = &out[row * 4..(row + 1) * 4];
                let segm = o[0].get("io_ns");
                t.push_row(vec![
                    pct.to_string(),
                    f3(1.0),
                    f3(o[1].get("io_ns") / segm),
                    f3(o[2].get("io_ns") / segm),
                    f3(o[3].get("io_ns") / segm),
                ]);
            }
            t.note("paper shape: FOR gains decay with writes (39% -> 19% at 60%); HDC gains roughly constant");
            t
        }),
    }
}

/// Figure 3 on the serial path (same jobs, same assembly).
pub fn fig3(opts: RunOptions) -> Table {
    plan_fig3(opts).run_serial()
}

/// Figure 4 on the serial path.
pub fn fig4(opts: RunOptions) -> Table {
    plan_fig4(opts).run_serial()
}

/// Figure 5 on the serial path.
pub fn fig5(opts: RunOptions) -> Table {
    plan_fig5(opts).run_serial()
}

/// Figure 6 on the serial path.
pub fn fig6(opts: RunOptions) -> Table {
    plan_fig6(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions {
            scale: 0.02,
            synthetic_requests: 600,
            ..RunOptions::default()
        }
    }

    fn col(t: &Table, name: &str) -> Vec<f64> {
        let i = t.headers.iter().position(|h| h == name).expect("column");
        t.rows.iter().map(|r| r[i].parse().unwrap()).collect()
    }

    #[test]
    fn fig3_for_always_at_least_as_good() {
        let t = fig3(quick());
        for (f, s) in col(&t, "for").iter().zip(col(&t, "segm")) {
            assert!(*f <= s * 1.05, "FOR {f} vs Segm {s}");
        }
    }

    #[test]
    fn fig4_for_beats_segm_everywhere() {
        let t = fig4(quick());
        for f in col(&t, "for") {
            assert!(f < 1.0, "FOR normalized {f}");
        }
    }

    #[test]
    fn fig5_hit_rate_rises_with_alpha() {
        // Enough requests that the accessed footprint exceeds the HDC
        // capacity (otherwise every block is pinned and hits saturate).
        let t = fig5(RunOptions {
            scale: 0.02,
            synthetic_requests: 4_000,
            ..RunOptions::default()
        });
        let hits = col(&t, "hdc_hit_%");
        assert!(
            *hits.last().unwrap() > hits.first().unwrap() + 5.0,
            "{hits:?}"
        );
    }

    #[test]
    fn fig6_for_gain_decays_with_writes() {
        let t = fig6(quick());
        let fors = col(&t, "for");
        assert!(
            fors.last().unwrap() > fors.first().unwrap(),
            "FOR gain should shrink with writes: {fors:?}"
        );
    }
}
