//! Figures 3–6: the controlled synthetic evaluation (§6.2).

use forhdc_core::{Report, System, SystemConfig};
use forhdc_workload::{SyntheticWorkload, Workload};

use crate::table::{f3, Table};
use crate::RunOptions;

fn run(cfg: SystemConfig, wl: &Workload) -> Report {
    System::new(cfg, wl).run()
}

/// Figure 3: normalized I/O time as a function of the average file
/// size, 128 simultaneous streams. Series: Segm (the 1.0 baseline),
/// Block, No-RA, FOR.
pub fn fig3(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "fig3",
        "Normalized I/O time vs average file size (128 streams)",
        &["file_kb", "segm", "block", "no_ra", "for"],
    );
    for file_blocks in [1u32, 2, 4, 8, 12, 16, 24, 32] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(file_blocks)
            .streams(128)
            .seed(42)
            .build();
        let segm = run(SystemConfig::segm(), &wl);
        let row = vec![
            (file_blocks * 4).to_string(),
            f3(1.0),
            f3(run(SystemConfig::block(), &wl).normalized_io_time(&segm)),
            f3(run(SystemConfig::no_ra(), &wl).normalized_io_time(&segm)),
            f3(run(SystemConfig::for_(), &wl).normalized_io_time(&segm)),
        ];
        t.push_row(row);
    }
    t.note("paper shape: FOR <= all; ~40% gain at 16 KB; No-RA beats blind below ~48 KB, loses badly above");
    t
}

/// Figure 4: normalized I/O time as a function of the number of
/// simultaneous streams, 16-KByte files. Series: Segm, Block, FOR.
pub fn fig4(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "fig4",
        "Normalized I/O time vs simultaneous streams (16-KB files)",
        &["streams", "segm", "block", "for"],
    );
    for streams in [64u32, 128, 256, 384, 512, 768, 1024] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .streams(streams)
            .seed(42)
            .build();
        let segm = run(SystemConfig::segm(), &wl);
        t.push_row(vec![
            streams.to_string(),
            f3(1.0),
            f3(run(SystemConfig::block(), &wl).normalized_io_time(&segm)),
            f3(run(SystemConfig::for_(), &wl).normalized_io_time(&segm)),
        ]);
    }
    t.note("paper shape: FOR gains grow with streams (39% at 64 -> 59% at 1024); Block ~= Segm until ~256, ~3% better at 1024");
    t
}

/// Figure 5: normalized I/O time and HDC hit rate as a function of the
/// Zipf coefficient. HDC caches = 2 MB. Series: Segm, Segm+HDC, FOR,
/// FOR+HDC (+ hit rate column).
pub fn fig5(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "fig5",
        "Normalized I/O time vs access-frequency distribution (HDC 2 MB)",
        &["alpha", "segm", "segm_hdc", "for", "for_hdc", "hdc_hit_%"],
    );
    const HDC: u64 = 2 * 1024 * 1024;
    for tenth in [0u32, 2, 4, 6, 8, 10] {
        let alpha = tenth as f64 / 10.0;
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .streams(128)
            .zipf_alpha(alpha)
            .seed(42)
            .build();
        let segm = run(SystemConfig::segm(), &wl);
        let segm_hdc = run(SystemConfig::segm().with_hdc(HDC), &wl);
        let for_ = run(SystemConfig::for_(), &wl);
        let for_hdc = run(SystemConfig::for_().with_hdc(HDC), &wl);
        t.push_row(vec![
            format!("{alpha:.1}"),
            f3(1.0),
            f3(segm_hdc.normalized_io_time(&segm)),
            f3(for_.normalized_io_time(&segm)),
            f3(for_hdc.normalized_io_time(&segm)),
            format!("{:.1}", 100.0 * for_hdc.hdc_hit_rate()),
        ]);
    }
    t.note("paper shape: HDC gains ~10% flat for alpha <= 0.6, rising to ~28% at alpha = 1; hit rate rises with alpha (56% at 1.0)");
    t
}

/// Figure 6: normalized I/O time as a function of the percentage of
/// writes. HDC caches = 2 MB, Zipf α = 0.4.
pub fn fig6(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "fig6",
        "Normalized I/O time vs write percentage (HDC 2 MB, alpha 0.4)",
        &["write_%", "segm", "segm_hdc", "for", "for_hdc"],
    );
    const HDC: u64 = 2 * 1024 * 1024;
    for pct in [0u32, 10, 20, 30, 40, 50, 60] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .streams(128)
            .write_fraction(pct as f64 / 100.0)
            .seed(42)
            .build();
        let segm = run(SystemConfig::segm(), &wl);
        t.push_row(vec![
            pct.to_string(),
            f3(1.0),
            f3(run(SystemConfig::segm().with_hdc(HDC), &wl).normalized_io_time(&segm)),
            f3(run(SystemConfig::for_(), &wl).normalized_io_time(&segm)),
            f3(run(SystemConfig::for_().with_hdc(HDC), &wl).normalized_io_time(&segm)),
        ]);
    }
    t.note("paper shape: FOR gains decay with writes (39% -> 19% at 60%); HDC gains roughly constant");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions { scale: 0.02, synthetic_requests: 600 }
    }

    fn col(t: &Table, name: &str) -> Vec<f64> {
        let i = t.headers.iter().position(|h| h == name).expect("column");
        t.rows.iter().map(|r| r[i].parse().unwrap()).collect()
    }

    #[test]
    fn fig3_for_always_at_least_as_good() {
        let t = fig3(quick());
        for (f, s) in col(&t, "for").iter().zip(col(&t, "segm")) {
            assert!(*f <= s * 1.05, "FOR {f} vs Segm {s}");
        }
    }

    #[test]
    fn fig4_for_beats_segm_everywhere() {
        let t = fig4(quick());
        for f in col(&t, "for") {
            assert!(f < 1.0, "FOR normalized {f}");
        }
    }

    #[test]
    fn fig5_hit_rate_rises_with_alpha() {
        // Enough requests that the accessed footprint exceeds the HDC
        // capacity (otherwise every block is pinned and hits saturate).
        let t = fig5(RunOptions { scale: 0.02, synthetic_requests: 4_000 });
        let hits = col(&t, "hdc_hit_%");
        assert!(*hits.last().unwrap() > hits.first().unwrap() + 5.0, "{hits:?}");
    }

    #[test]
    fn fig6_for_gain_decays_with_writes() {
        let t = fig6(quick());
        let fors = col(&t, "for");
        assert!(
            fors.last().unwrap() > fors.first().unwrap(),
            "FOR gain should shrink with writes: {fors:?}"
        );
    }
}
