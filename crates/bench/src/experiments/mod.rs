//! One module per group of paper artifacts.

pub mod ablations;
pub mod micro;
pub mod servers;
pub mod synthetic;

use crate::Table;
use crate::RunOptions;

/// Every experiment the harness knows, in paper order.
pub const ALL: &[&str] = &[
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "table2", "ablation-sched", "ablation-segrepl",
    "ablation-blkrepl", "ablation-segsize", "ablation-coalesce", "ablation-periodic", "ablation-flush", "ablation-victim", "ablation-mirror", "ablation-zones", "ablation-coop", "model-check",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, opts: RunOptions) -> Table {
    match id {
        "table1" => micro::table1(),
        "fig1" => micro::fig1(),
        "fig2" => servers::fig2(opts),
        "fig3" => synthetic::fig3(opts),
        "fig4" => synthetic::fig4(opts),
        "fig5" => synthetic::fig5(opts),
        "fig6" => synthetic::fig6(opts),
        "fig7" => servers::striping_sweep(forhdc_workload::ServerKind::Web, "fig7", opts),
        "fig9" => servers::striping_sweep(forhdc_workload::ServerKind::Proxy, "fig9", opts),
        "fig11" => servers::striping_sweep(forhdc_workload::ServerKind::File, "fig11", opts),
        "fig8" => servers::hdc_sweep(forhdc_workload::ServerKind::Web, "fig8", opts),
        "fig10" => servers::hdc_sweep(forhdc_workload::ServerKind::Proxy, "fig10", opts),
        "fig12" => servers::hdc_sweep(forhdc_workload::ServerKind::File, "fig12", opts),
        "table2" => servers::table2(opts),
        "ablation-sched" => ablations::scheduler(opts),
        "ablation-segrepl" => ablations::segment_replacement(opts),
        "ablation-blkrepl" => ablations::block_replacement(opts),
        "ablation-segsize" => ablations::segment_size(opts),
        "ablation-coalesce" => ablations::coalescing(opts),
        "ablation-periodic" => ablations::periodic_planner(opts),
        "ablation-flush" => ablations::flush_period(opts),
        "ablation-victim" => ablations::victim(opts),
        "ablation-mirror" => ablations::mirroring(opts),
        "ablation-zones" => ablations::zoned(opts),
        "ablation-coop" => ablations::cooperative(opts),
        "model-check" => micro::model_check(opts),
        other => panic!("unknown experiment: {other}"),
    }
}
