//! One module per group of paper artifacts.

pub mod ablations;
pub mod faults;
pub mod micro;
pub mod mirror;
pub mod servers;
pub mod synthetic;

use forhdc_workload::ServerKind;

use crate::plan::PlannedExperiment;
use crate::RunOptions;
use crate::Table;

/// Every experiment the harness knows, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "ablation-sched",
    "ablation-segrepl",
    "ablation-blkrepl",
    "ablation-segsize",
    "ablation-coalesce",
    "ablation-periodic",
    "ablation-flush",
    "ablation-victim",
    "ablation-mirror",
    "ablation-zones",
    "ablation-coop",
    "model-check",
    "fig-faults",
    "fig-mirror",
];

/// Diagnostics runnable by explicit id but never part of `all`: they
/// exist to exercise the harness's failure path end to end
/// (`selftest-panic` proves a crashing job leaves a manifest failure
/// record and a non-zero exit while sibling jobs complete;
/// `selftest-violation` proves a planted invariant violation is
/// detected, shrunk to a reproducer under `results/repros/`, and
/// recorded the same way).
pub const HIDDEN: &[&str] = &["selftest-panic", "selftest-violation"];

/// The job-graph decomposition of `id`, when it has one.
///
/// Every experiment now decomposes into independent jobs the runner
/// can execute in parallel and cache; `None` is kept for forward
/// compatibility with ids that have nothing to decompose.
pub fn plan(id: &str, opts: RunOptions) -> Option<PlannedExperiment> {
    Some(match id {
        "table1" => micro::plan_table1(),
        "fig1" => micro::plan_fig1(),
        "fig2" => servers::plan_fig2(opts),
        "fig3" => synthetic::plan_fig3(opts),
        "fig4" => synthetic::plan_fig4(opts),
        "fig5" => synthetic::plan_fig5(opts),
        "fig6" => synthetic::plan_fig6(opts),
        "fig7" => servers::plan_striping_sweep(ServerKind::Web, "fig7", opts),
        "fig9" => servers::plan_striping_sweep(ServerKind::Proxy, "fig9", opts),
        "fig11" => servers::plan_striping_sweep(ServerKind::File, "fig11", opts),
        "fig8" => servers::plan_hdc_sweep(ServerKind::Web, "fig8", opts),
        "fig10" => servers::plan_hdc_sweep(ServerKind::Proxy, "fig10", opts),
        "fig12" => servers::plan_hdc_sweep(ServerKind::File, "fig12", opts),
        "table2" => servers::plan_table2(opts),
        "ablation-sched" => ablations::plan_scheduler(opts),
        "ablation-segrepl" => ablations::plan_segment_replacement(opts),
        "ablation-blkrepl" => ablations::plan_block_replacement(opts),
        "ablation-segsize" => ablations::plan_segment_size(opts),
        "ablation-coalesce" => ablations::plan_coalescing(opts),
        "ablation-periodic" => ablations::plan_periodic_planner(opts),
        "ablation-flush" => ablations::plan_flush_period(opts),
        "ablation-mirror" => ablations::plan_mirroring(opts),
        "ablation-zones" => ablations::plan_zoned(opts),
        "ablation-coop" => ablations::plan_cooperative(opts),
        "ablation-victim" => ablations::plan_victim(opts),
        "model-check" => micro::plan_model_check(opts),
        "fig-faults" => faults::plan_faults(opts),
        "fig-mirror" => mirror::plan_mirror(opts),
        "selftest-panic" => faults::plan_selftest_panic(),
        "selftest-violation" => {
            crate::fuzz::plan_selftest_violation(std::path::PathBuf::from("results/repros"))
        }
        _ => return None,
    })
}

/// Runs one experiment by id on the serial path. Planned experiments
/// execute the same jobs (in point order) and assembly as a parallel
/// run, so the output is identical either way.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, opts: RunOptions) -> Table {
    match plan(id, opts) {
        Some(p) => p.run_serial(),
        None => panic!("unknown experiment: {id}"),
    }
}
