//! `fig-mirror`: degraded-mode serving on a mirrored (RAID1/0) array.
//!
//! One read-mostly synthetic workload replayed over every
//! [`ReadSplit`] policy x rebuild-bandwidth-cap combination. Every
//! run carries the same replica failure story: member disk 1 drops
//! out 100 ms in (its reads fail over to disk 0 instead of erroring)
//! and is replaced at 400 ms, when — for the rebuild columns — a
//! chunked twin-to-member reconstruction starts as background media
//! traffic competing with the foreground reads. The `none` column is
//! the degraded baseline (failed member never reconstructed), the
//! `256KBps` column a tightly paced copy, and `unpaced` lets each
//! chunk start as soon as the previous one lands (the copy rate is
//! then limited only by contention with the foreground).
//!
//! The table reads across as the cost of reconstruction bandwidth:
//! per policy, total I/O time and p99 request latency under each
//! rebuild regime, plus the failover and copied-block tallies of the
//! paced run. Jobs are pure functions of their spec (seeded offline
//! window, deterministic rebuild), so parallel/sharded runs reassemble
//! byte-identically.

use forhdc_core::{
    FaultConfig, OfflineWindow, RebuildConfig, RecoveryPolicy, SeededFaults, System, SystemConfig,
};
use forhdc_runner::{point_seed, JobOutput, JobSpec, SimJob};
use forhdc_sim::{ReadSplit, SimDuration};
use forhdc_workload::SyntheticWorkload;

use crate::plan::{shared, PlannedExperiment, SharedWorkload};
use crate::table::{f1, Table};
use crate::RunOptions;

const FILES: usize = 20_000;
const HDC: u64 = 2 * 1024 * 1024;

/// Every read-splitting policy of the mirrored-array literature, in
/// column-stable order (labels: closest / rr / sq / primary).
const POLICIES: [ReadSplit; 4] = [
    ReadSplit::ClosestCopy,
    ReadSplit::RoundRobin,
    ReadSplit::ShortestQueue,
    ReadSplit::PrimaryOnly,
];

/// Rebuild regimes swept per policy: no reconstruction (degraded
/// baseline), a tight 256 KB/s cap that visibly throttles the copy,
/// and an unpaced (contention-limited) copy.
const REBUILDS: [(&str, Option<u64>); 3] = [
    ("none", None),
    ("256KBps", Some(256 << 10)),
    ("unpaced", Some(0)),
];

/// The replaced member and its outage. Reads aimed at it fail over to
/// its twin during the window; the reconstruction starts at the
/// window's end (the moment the replacement disk arrives).
const MIRROR_DISK: u16 = 1;
const OFFLINE_START_NS: u64 = 100_000_000;
const OFFLINE_END_NS: u64 = 400_000_000;

/// Used extent reconstructed, in blocks (chunked reads off the twin).
const REBUILD_BLOCKS: u64 = 8_192;
const REBUILD_CHUNK: u32 = 32;

/// The seeded fault schedule: only the replica outage, no media/bus
/// errors — failures must degrade service, never fail requests.
fn schedule(row: usize) -> FaultConfig {
    FaultConfig::new(point_seed("fig-mirror/schedule", row)).with_offline(OfflineWindow {
        disk: MIRROR_DISK,
        start_ns: OFFLINE_START_NS,
        end_ns: OFFLINE_END_NS,
    })
}

fn rebuild(rate: u64) -> RebuildConfig {
    RebuildConfig {
        disk: MIRROR_DISK,
        start: SimDuration::from_nanos(OFFLINE_END_NS),
        rate_bytes_per_sec: rate,
        chunk_blocks: REBUILD_CHUNK,
        total_blocks: REBUILD_BLOCKS,
    }
}

/// Retry/backoff defaults plus a 10 s request timeout, mirroring
/// `fig-faults`: a pathological schedule cannot wedge a run.
fn recovery() -> RecoveryPolicy {
    RecoveryPolicy {
        request_timeout: Some(SimDuration::from_secs(10)),
        ..RecoveryPolicy::default()
    }
}

/// Degraded-mode extraction: I/O time, tail latency, and the mirror
/// conservation tallies.
fn mirror_metrics(r: &forhdc_core::Report) -> JobOutput {
    JobOutput::new()
        .metric("io_ns", r.io_time.as_nanos() as f64)
        .metric("p99_ns", r.latency.quantile(0.99).as_nanos() as f64)
        .metric("requests", r.requests as f64)
        .metric("failed_requests", r.faults.failed_requests as f64)
        .metric("failover_reads", r.faults.failover_reads as f64)
        .metric("rebuilt_blocks", r.faults.rebuilt_blocks as f64)
        .metric("mirror_reads", r.mirror_reads as f64)
}

fn mirror_job(
    spec: JobSpec,
    wl: &SharedWorkload,
    policy: ReadSplit,
    rate: Option<u64>,
    fault_cfg: FaultConfig,
    shards: usize,
) -> SimJob {
    let wl = wl.clone();
    SimJob::new(spec, move || {
        let mut cfg = SystemConfig::for_()
            .with_hdc(HDC)
            .with_mirroring()
            .with_read_split(policy)
            .with_recovery(recovery());
        if let Some(rate) = rate {
            cfg = cfg.with_rebuild(rebuild(rate));
        }
        let faults = SeededFaults::new(fault_cfg.clone());
        mirror_metrics(
            &System::new_faulted(cfg, wl.get(), faults)
                .with_shards(shards)
                .run(),
        )
    })
}

/// `fig-mirror`: degraded-mode throughput and p99 during
/// reconstruction, read-split policy x rebuild bandwidth cap.
pub fn plan_mirror(opts: RunOptions) -> PlannedExperiment {
    let seed = point_seed("fig-mirror", 0);
    let wl = shared(move || {
        SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(FILES)
            .file_blocks(4)
            .streams(128)
            .write_fraction(0.1)
            .zipf_alpha(0.4)
            .seed(seed)
            .build()
    });
    let mut jobs = Vec::new();
    for policy in POLICIES {
        let fault_cfg = schedule(0);
        for (rb_label, rate) in REBUILDS {
            let spec = JobSpec::new(
                "fig-mirror",
                jobs.len(),
                format!("split={} rebuild={rb_label}", policy.label()),
            )
            .param("requests", opts.synthetic_requests)
            .param("files", FILES)
            .param("seed", seed)
            .param("split", policy.label())
            .param("rebuild", rb_label)
            .param("fault_seed", fault_cfg.seed);
            jobs.push(mirror_job(
                spec,
                &wl,
                policy,
                rate,
                fault_cfg.clone(),
                opts.shards.max(1),
            ));
        }
    }
    PlannedExperiment {
        id: "fig-mirror",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig-mirror",
                "Mirrored-array degraded mode: I/O time and p99 by read-split policy x rebuild cap (replica offline 100-400 ms, rebuild from 400 ms)",
                &[
                    "split",
                    "io_none_s",
                    "p99_none_ms",
                    "io_256KBps_s",
                    "p99_256KBps_ms",
                    "io_unpaced_s",
                    "p99_unpaced_ms",
                    "failover_reads",
                    "rebuilt_blocks",
                ],
            );
            let n = REBUILDS.len();
            for (row, policy) in POLICIES.iter().enumerate() {
                let o = &out[row * n..(row + 1) * n];
                let mut cells = vec![policy.label().to_string()];
                for point in o {
                    cells.push(f1(point.get("io_ns") / 1e9));
                    cells.push(f1(point.get("p99_ns") / 1e6));
                }
                // The conservation tallies of the paced run (column 1).
                cells.push(format!("{}", o[1].get("failover_reads") as u64));
                cells.push(format!("{}", o[1].get("rebuilt_blocks") as u64));
                t.push_row(cells);
            }
            t.note("FOR+HDC on 8 spindles mirrored into 4 pairs; every run survives the outage with zero failed requests, the rebuild competes with foreground reads for the member's heads");
            t
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_runner::Runner;

    fn quick() -> RunOptions {
        RunOptions {
            scale: 0.02,
            synthetic_requests: 600,
            ..RunOptions::default()
        }
    }

    #[test]
    fn fig_mirror_survives_the_outage_and_rebuilds() {
        let t = plan_mirror(RunOptions {
            scale: 0.02,
            synthetic_requests: 4_000,
            ..RunOptions::default()
        })
        .run_serial();
        assert_eq!(t.rows.len(), POLICIES.len());
        for row in &t.rows {
            let failovers: u64 = row[7].parse().unwrap();
            let rebuilt: u64 = row[8].parse().unwrap();
            assert!(
                failovers > 0,
                "the offline window must force failovers: {row:?}"
            );
            assert!(rebuilt > 0, "the paced rebuild must copy blocks: {row:?}");
            assert!(
                rebuilt <= REBUILD_BLOCKS,
                "rebuild overshot its target extent: {row:?}"
            );
        }
    }

    #[test]
    fn fig_mirror_parallel_matches_serial_byte_for_byte() {
        let serial = plan_mirror(quick()).run_serial();
        let runner = Runner::new(4).quiet(true);
        let (parallel, stats) = plan_mirror(quick()).run_with(&runner);
        assert!(stats.failures.is_empty());
        assert_eq!(serial.to_csv(), parallel.expect("table").to_csv());
    }

    #[test]
    fn fig_mirror_sharded_matches_serial_byte_for_byte() {
        let serial = plan_mirror(quick()).run_serial();
        let sharded = plan_mirror(RunOptions {
            shards: 4,
            ..quick()
        })
        .run_serial();
        assert_eq!(serial.to_csv(), sharded.to_csv());
    }
}
