//! Design-choice ablations beyond the paper's figures (DESIGN.md §8).

use forhdc_cache::{BlockReplacement, SegmentReplacement};
use forhdc_core::{plan_periodic, plan_top_misses, System, SystemConfig};
use forhdc_sim::{SchedulerKind, StripingMap};
use forhdc_workload::{ServerWorkloadSpec, SyntheticWorkload};

use crate::table::{f1, f3, Table};
use crate::RunOptions;

/// Request schedulers under the web clone: LOOK (the paper's choice)
/// against FCFS, SSTF and C-LOOK.
pub fn scheduler(opts: RunOptions) -> Table {
    let wl = ServerWorkloadSpec::web().scale(opts.scale).generate().workload;
    let mut t = Table::new(
        "ablation-sched",
        "Scheduler ablation (web clone, Segm, 64-KB unit)",
        &["scheduler", "io_time_s", "mean_response_ms"],
    );
    for (name, kind) in [
        ("LOOK", SchedulerKind::Look),
        ("FCFS", SchedulerKind::Fcfs),
        ("SSTF", SchedulerKind::Sstf),
        ("C-LOOK", SchedulerKind::Clook),
    ] {
        let r = System::new(
            SystemConfig::segm().with_scheduler(kind).with_striping_unit(64 * 1024),
            &wl,
        )
        .run();
        t.push_row(vec![
            name.to_string(),
            f1(r.io_time.as_secs_f64()),
            f3(r.mean_response.as_millis_f64()),
        ]);
    }
    t.note("expected: LOOK/C-LOOK/SSTF clearly beat FCFS; LOOK avoids SSTF's starvation bias");
    t
}

/// Segment-replacement policies (LRU vs FIFO/random/round-robin, after
/// Soloviev 94 / Ganger 95 / Shriver 97) under the synthetic workload.
pub fn segment_replacement(opts: RunOptions) -> Table {
    let wl = SyntheticWorkload::builder()
        .requests(opts.synthetic_requests)
        .files(20_000)
        .file_blocks(4)
        .streams(128)
        .seed(42)
        .build();
    let mut t = Table::new(
        "ablation-segrepl",
        "Segment replacement ablation (synthetic 16-KB files)",
        &["policy", "io_time_s", "cache_hit_%"],
    );
    for (name, pol) in [
        ("LRU", SegmentReplacement::Lru),
        ("FIFO", SegmentReplacement::Fifo),
        ("random", SegmentReplacement::Random),
        ("round-robin", SegmentReplacement::RoundRobin),
    ] {
        let r = System::new(
            SystemConfig::segm().with_replacement(BlockReplacement::Mru, pol),
            &wl,
        )
        .run();
        t.push_row(vec![
            name.to_string(),
            f1(r.io_time.as_secs_f64()),
            f1(100.0 * r.cache.extent_hit_rate()),
        ]);
    }
    t
}

/// Block-replacement for FOR: the paper's MRU against LRU.
pub fn block_replacement(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "ablation-blkrepl",
        "FOR block replacement ablation (synthetic)",
        &["file_kb", "mru_io_s", "lru_io_s", "mru_hit_%", "lru_hit_%"],
    );
    for file_blocks in [2u32, 4, 8] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(file_blocks)
            .streams(128)
            .seed(42)
            .build();
        let mru = System::new(
            SystemConfig::for_()
                .with_replacement(BlockReplacement::Mru, SegmentReplacement::Lru),
            &wl,
        )
        .run();
        let lru = System::new(
            SystemConfig::for_()
                .with_replacement(BlockReplacement::Lru, SegmentReplacement::Lru),
            &wl,
        )
        .run();
        t.push_row(vec![
            (file_blocks * 4).to_string(),
            f1(mru.io_time.as_secs_f64()),
            f1(lru.io_time.as_secs_f64()),
            f1(100.0 * mru.cache.extent_hit_rate()),
            f1(100.0 * lru.cache.extent_hit_rate()),
        ]);
    }
    t.note("the paper picks MRU for FOR's block pool (consumed blocks are dead at a controller cache)");
    t
}

/// Segment-size row of Table 1: 128/256/512-KB segments with 27/13/6
/// segments, under the synthetic workload.
pub fn segment_size(opts: RunOptions) -> Table {
    let wl = SyntheticWorkload::builder()
        .requests(opts.synthetic_requests)
        .files(20_000)
        .file_blocks(4)
        .streams(128)
        .seed(42)
        .build();
    let mut t = Table::new(
        "ablation-segsize",
        "Segment size ablation (Segm, synthetic 16-KB files)",
        &["segment_kb", "segments", "io_time_s", "ra_blocks_per_op"],
    );
    for seg_kb in [128u32, 256, 512] {
        let r = System::new(SystemConfig::segm().with_segment_bytes(seg_kb * 1024), &wl).run();
        let ra_per_op = if r.disk.media_ops == 0 {
            0.0
        } else {
            r.disk.read_ahead_blocks as f64 / r.disk.media_ops as f64
        };
        t.push_row(vec![
            seg_kb.to_string(),
            match seg_kb {
                128 => "27",
                256 => "13",
                _ => "6",
            }
            .to_string(),
            f1(r.io_time.as_secs_f64()),
            f1(ra_per_op),
        ]);
    }
    t.note("bigger segments read ahead more per miss — worse for small-file servers");
    t
}

/// Coalescing-probability sweep, including the paper's remark that
/// No-RA does not beat FOR even with perfect (100%) coalescing.
pub fn coalescing(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "ablation-coalesce",
        "Coalescing probability sweep (16-KB files, normalized to Segm at each point)",
        &["coalesce_%", "segm", "no_ra", "for"],
    );
    for pct in [0u32, 25, 50, 75, 87, 100] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .streams(128)
            .coalesce_prob(pct as f64 / 100.0)
            .seed(42)
            .build();
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let no_ra = System::new(SystemConfig::no_ra(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        t.push_row(vec![
            pct.to_string(),
            f3(1.0),
            f3(no_ra.normalized_io_time(&segm)),
            f3(for_.normalized_io_time(&segm)),
        ]);
    }
    t.note("paper: No-RA improves with coalescing but does not outperform FOR even at an unrealistic 100%");
    t
}

/// §5's cooperative-caching remark: per-disk top-K pinning vs a
/// global plan whose overflow lands in sibling controllers, under (a)
/// spatially balanced heat (the common case — cooperation is ~free) and
/// (b) heat concentrated on one disk (cooperation pins what the home
/// controller cannot hold).
pub fn cooperative(opts: RunOptions) -> Table {
    use forhdc_sim::LogicalBlock;
    use forhdc_workload::{Trace, TraceRequest, Workload};

    let mut t = Table::new(
        "ablation-coop",
        "Per-disk vs cooperative HDC planning (Segm, 1 MB HDC/disk)",
        &["heat", "per_disk_io_s", "coop_io_s", "coop_sibling_hits"],
    );
    const HDC: u64 = 1 << 20;
    // (a) balanced: the calibrated synthetic.
    let balanced = SyntheticWorkload::builder()
        .requests(opts.synthetic_requests)
        .files(20_000)
        .file_blocks(4)
        .zipf_alpha(0.8)
        .streams(128)
        .seed(42)
        .build();
    // (b) one-disk heat: hot blocks confined to disk 0's units.
    let hot_disk = {
        let layout = forhdc_layout::LayoutBuilder::new().build(&vec![4u32; 30_000]);
        let mut reqs = Vec::new();
        for _ in 0..8u64 {
            for i in 0..1_200u64 {
                let unit = (i / 32) * 8;
                reqs.push(TraceRequest {
                    start: LogicalBlock::new(unit * 32 + i % 32),
                    nblocks: 1,
                    kind: forhdc_sim::ReadWrite::Read,
                });
            }
        }
        for i in 0..3_000u64 {
            reqs.push(TraceRequest {
                start: LogicalBlock::new(40_000 + i * 29 % 70_000),
                nblocks: 1,
                kind: forhdc_sim::ReadWrite::Read,
            });
        }
        Workload { name: "hot-disk".into(), layout, trace: Trace::new(reqs), streams: 64 }
    };
    for (name, wl) in [("balanced", &balanced), ("one-disk", &hot_disk)] {
        let per_disk = System::new(SystemConfig::segm().with_hdc(HDC), wl).run();
        let coop =
            System::new(SystemConfig::segm().with_hdc(HDC).with_cooperative_hdc(), wl).run();
        t.push_row(vec![
            name.to_string(),
            f1(per_disk.io_time.as_secs_f64()),
            f1(coop.io_time.as_secs_f64()),
            coop.coop_hits.to_string(),
        ]);
    }
    t.note("the paper kept per-disk pinning for simplicity; cooperation only pays when the hot set is spatially concentrated beyond one controller's memory");
    t
}

/// Zoned recording as a sensitivity check: the paper simulates the
/// Ultrastar's *average* media rate; real zones make outer cylinders
/// ~22% faster. The comparison results must be insensitive to this
/// refinement.
pub fn zoned(opts: RunOptions) -> Table {
    let wl = SyntheticWorkload::builder()
        .requests(opts.synthetic_requests)
        .files(20_000)
        .file_blocks(4)
        .streams(128)
        .seed(42)
        .build();
    let mut t = Table::new(
        "ablation-zones",
        "Uniform vs zoned media rate (synthetic 16-KB files)",
        &["recording", "segm_io_s", "for_io_s", "for_gain_%"],
    );
    for (name, zoned) in [("uniform", false), ("zoned", true)] {
        let mk = |mut c: SystemConfig| {
            if zoned {
                c = c.with_zoned_recording();
            }
            System::new(c, &wl).run()
        };
        let segm = mk(SystemConfig::segm());
        let for_ = mk(SystemConfig::for_());
        t.push_row(vec![
            name.to_string(),
            f1(segm.io_time.as_secs_f64()),
            f1(for_.io_time.as_secs_f64()),
            f1(100.0 * (1.0 - for_.io_time.as_nanos() as f64 / segm.io_time.as_nanos() as f64)),
        ]);
    }
    t.note("our layouts start at cylinder 0 (outer = fast), so zoned runs are slightly faster in absolute terms; the FOR/Segm comparison is unchanged");
    t
}

/// §2.2's redundancy option: the same 8 spindles as RAID-0 (8-wide
/// striping) vs RAID-10 (4 mirrored pairs), under read-mostly and
/// write-heavy synthetics.
pub fn mirroring(opts: RunOptions) -> Table {
    let mut t = Table::new(
        "ablation-mirror",
        "RAID-0 vs RAID-10 on 8 spindles (Segm)",
        &["write_%", "raid0_io_s", "raid10_io_s", "raid10_penalty_%"],
    );
    for pct in [0u32, 20, 50] {
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .streams(128)
            .write_fraction(pct as f64 / 100.0)
            .seed(42)
            .build();
        let raid0 = System::new(SystemConfig::segm(), &wl).run();
        let raid10 = System::new(SystemConfig::segm().with_mirroring(), &wl).run();
        let penalty =
            (raid10.io_time.as_nanos() as f64 / raid0.io_time.as_nanos() as f64 - 1.0) * 100.0;
        t.push_row(vec![
            pct.to_string(),
            f1(raid0.io_time.as_secs_f64()),
            f1(raid10.io_time.as_secs_f64()),
            f1(penalty),
        ]);
    }
    t.note("mirroring halves the stripe width but serves reads from either member; the write penalty grows with the write fraction");
    t
}

/// §5's two example uses of HDC head to head on the same derived
/// workload: the paper's top-miss pinning (static, perfect knowledge)
/// against the array-wide victim cache (dynamic pin/unpin), plus the
/// no-HDC baseline.
pub fn victim(opts: RunOptions) -> Table {
    use forhdc_core::{build_victim_workload, HdcPlan, VictimConfig};
    use forhdc_host::pipeline::FileAccess;
    use forhdc_layout::{FileId, LayoutBuilder};
    use forhdc_sim::{ReadWrite, SimDuration, SimTime};
    use forhdc_workload::ZipfSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // An application stream whose working set overflows the host cache:
    // the regime where a victim cache earns its keep.
    let files = 30_000usize;
    let layout = LayoutBuilder::new().seed(21).build(&vec![4u32; files]);
    let zipf = ZipfSampler::new(files, 0.75);
    let mut rng = StdRng::seed_from_u64(22);
    let n = (60_000.0 * opts.scale.max(0.02)) as u64;
    let accesses: Vec<FileAccess> = (0..n.max(2_000))
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 100),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect();
    const HDC: u64 = 2 * 1024 * 1024;
    let striping = forhdc_sim::StripingMap::new(8, 32);
    let vw = build_victim_workload(
        &accesses,
        &layout,
        VictimConfig {
            buffer_blocks: 8_192,
            hdc_blocks_per_disk: (HDC / 4096) as u32,
            striping,
            streams: 64,
        },
    );
    let mut t = Table::new(
        "ablation-victim",
        "HDC uses: none vs top-miss pinning vs victim cache (derived workload)",
        &["mode", "io_time_s", "hdc_hit_%"],
    );
    let none = System::new(SystemConfig::segm(), &vw.workload).run();
    t.push_row(vec!["no-hdc".into(), f1(none.io_time.as_secs_f64()), f1(0.0)]);
    let top = System::new(SystemConfig::segm().with_hdc(HDC), &vw.workload).run();
    t.push_row(vec![
        "top-miss".into(),
        f1(top.io_time.as_secs_f64()),
        f1(100.0 * top.hdc_hit_rate()),
    ]);
    let vic = System::with_plan(
        SystemConfig::segm().with_hdc(HDC),
        &vw.workload,
        HdcPlan::empty(8),
    )
    .with_hdc_commands(vw.commands)
    .run();
    t.push_row(vec![
        "victim".into(),
        f1(vic.io_time.as_secs_f64()),
        f1(100.0 * vic.hdc_hit_rate()),
    ]);
    t.note(format!(
        "derivation: buffer hit {:.0}%, {} pins, {} unpins, {} write-backs",
        100.0 * vw.stats.buffer_hit_rate,
        vw.stats.pins,
        vw.stats.unpins,
        vw.stats.writebacks
    ));
    t.note("the victim cache adapts to the live miss stream; top-miss pinning needs (perfect) profile knowledge");
    t
}

/// §6.1's periodic-sync claim: "we have determined the effect of such
/// periodic syncs on overall throughput to be negligible (< 1%),
/// assuming periods of 30 seconds" — measured on the web clone.
pub fn flush_period(opts: RunOptions) -> Table {
    let wl = ServerWorkloadSpec::web().scale(opts.scale).generate().workload;
    let cfg = || {
        SystemConfig::segm()
            .with_hdc(2 * 1024 * 1024)
            .with_striping_unit(64 * 1024)
    };
    let mut t = Table::new(
        "ablation-flush",
        "Periodic flush_hdc() cost (web clone, Segm+HDC, 64-KB unit)",
        &["flush_period_s", "io_time_s", "flushed_blocks", "cost_%"],
    );
    let lazy = System::new(cfg(), &wl).run();
    t.push_row(vec![
        "end-of-run".into(),
        f1(lazy.io_time.as_secs_f64()),
        lazy.hdc.flushed.to_string(),
        f3(0.0),
    ]);
    for secs in [120u64, 30, 10] {
        let r = System::new(
            cfg().with_hdc_flush_period(forhdc_sim::SimDuration::from_secs(secs)),
            &wl,
        )
        .run();
        let cost = (r.io_time.as_nanos() as f64 / lazy.io_time.as_nanos() as f64 - 1.0) * 100.0;
        t.push_row(vec![
            secs.to_string(),
            f1(r.io_time.as_secs_f64()),
            r.hdc.flushed.to_string(),
            f3(cost),
        ]);
    }
    t.note("paper: 30-second periods cost < 1%");
    t
}

/// The §5 deployment story: HDC planned per period from the previous
/// period's history, against the §6.1 perfect-knowledge plan.
pub fn periodic_planner(opts: RunOptions) -> Table {
    let wl = ServerWorkloadSpec::web().scale(opts.scale).generate().workload;
    let cfg = SystemConfig::segm().with_hdc(2 * 1024 * 1024).with_striping_unit(64 * 1024);
    let striping = StripingMap::new(cfg.array.disks, cfg.array.striping_unit_blocks());
    let capacity = cfg.hdc_blocks();
    let mut t = Table::new(
        "ablation-periodic",
        "HDC planning: perfect knowledge vs history-based periods (web clone)",
        &["plan", "io_time_s", "hdc_hit_%"],
    );
    let base = System::new(SystemConfig::segm().with_striping_unit(64 * 1024), &wl).run();
    t.push_row(vec!["no-hdc".into(), f1(base.io_time.as_secs_f64()), f1(0.0)]);
    let perfect = System::new(cfg.clone(), &wl).run();
    t.push_row(vec![
        "perfect".into(),
        f1(perfect.io_time.as_secs_f64()),
        f1(100.0 * perfect.hdc_hit_rate()),
    ]);
    for periods in [2usize, 4, 8] {
        // Approximate the periodic deployment: plan from the first
        // (periods − 1)/periods of the trace's history, replay whole.
        let plans = plan_periodic(&wl.trace, &striping, capacity, periods);
        let last = plans.last().expect("at least one period").clone();
        let r = System::with_plan(cfg.clone(), &wl, last).run();
        t.push_row(vec![
            format!("history/{periods}"),
            f1(r.io_time.as_secs_f64()),
            f1(100.0 * r.hdc_hit_rate()),
        ]);
    }
    let _ = plan_top_misses(&wl.trace, &striping, capacity); // exercised by System::new above
    t.note("history-based plans approach the perfect-knowledge plan as history accumulates (stable popularity)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions { scale: 0.015, synthetic_requests: 500 }
    }

    #[test]
    fn look_beats_fcfs() {
        let t = scheduler(quick());
        let io = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[1].parse().unwrap()
        };
        assert!(io("LOOK") <= io("FCFS"), "LOOK {} vs FCFS {}", io("LOOK"), io("FCFS"));
    }

    #[test]
    fn segment_policies_all_run() {
        let t = segment_replacement(quick());
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn block_replacement_has_both_policies() {
        let t = block_replacement(quick());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let mru: f64 = row[1].parse().unwrap();
            let lru: f64 = row[2].parse().unwrap();
            assert!(mru > 0.0 && lru > 0.0);
        }
    }

    #[test]
    fn bigger_segments_read_ahead_more() {
        let t = segment_size(quick());
        let ra: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(ra[2] > ra[0], "512-KB segments should read ahead more: {ra:?}");
    }

    #[test]
    fn perfect_coalescing_does_not_save_no_ra() {
        let t = coalescing(quick());
        let last = t.rows.last().unwrap();
        let no_ra: f64 = last[2].parse().unwrap();
        let for_: f64 = last[3].parse().unwrap();
        assert!(for_ <= no_ra * 1.05, "FOR {for_} vs No-RA {no_ra} at 100% coalescing");
    }

    #[test]
    fn periodic_planner_improves_with_history() {
        let t = periodic_planner(quick());
        assert!(t.rows.len() >= 4);
        let hit = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2].parse().unwrap()
        };
        assert!(hit("perfect") >= hit("history/2") - 0.5);
    }
}
